//! `sys_smod_sweep`: the multi-session drain — one syscall-equivalent
//! that visits *every* ready session in a [`RingSet`].
//!
//! `sys_smod_call_batch` amortises fixed dispatch cost across one
//! session's batch; what remains is one trap and one session resolution
//! *per session* per drain round. The sweep hoists those too: a single
//! invocation claims the ring set's readiness bitmap, resolves each
//! ready session — session table lookup, ownership check, credential
//! prototype, module gateway, epoch fold — **once per sweep**, and runs
//! the same chunked pair-lock drain ([`Kernel::drain_session_rings`])
//! the batched path uses, so the epoch-re-read / credential-re-check /
//! `EIDRM` semantics are shared code, not a second copy.
//!
//! Cost model: the trap, stubs and context-switch pair are charged once
//! per sweep, credential/session resolution once per session, and per
//! entry only the shared-memory ring-slot hand-off —
//! [`crate::cost::CostModel::sweep_dispatch_ns`]. This is the LSM-style
//! amortisation argument taken one level further: per-hook fixed work is
//! hoisted first out of the call (PR 4's batch), then out of the session
//! (this sweep).
//!
//! Safety semantics per slot:
//!
//! * a slot whose session is gone, half-established, or registered under
//!   a different owner pid than the live session's client fails every
//!   queued entry with `EIDRM` — a stale or replayed slot can never
//!   dispatch into somebody else's session;
//! * a detach/remove racing an in-flight sweep is honoured at the next
//!   chunk boundary of that session's drain, failing the remainder with
//!   `EIDRM` exactly like the batched path;
//! * every ready slot is visited at most once per sweep and every ready
//!   slot *is* visited (the readiness words are claimed wholesale), so
//!   one hot ring can neither starve the others nor be drained past
//!   `session_budget` in a single sweep — leftovers re-flag the slot.

use crate::batch::{fail_all_eidrm, DrainScratch};
use crate::kernel::Kernel;
use crate::proc::Pid;
use crate::smod::{SessionId, SessionState};
use crate::SysResult;
use secmod_obs::Flavor;
use secmod_qos::SweepScheduler;
use secmod_ring::set::ClaimLedger;
use secmod_ring::{RingSet, RingSlotId, SessionRings};
use std::sync::Arc;

/// What one `sys_smod_sweep` invocation did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Slots claimed from the readiness bitmap (visited this sweep).
    pub sessions_ready: usize,
    /// Ready sessions that resolved to a live session and were drained
    /// to completion (no mid-drain teardown).
    pub sessions_swept: usize,
    /// Ready slots whose session was gone, not established, owned by a
    /// different pid, or torn down mid-drain; their queued entries
    /// completed with `EIDRM`.
    pub sessions_dead: usize,
    /// Submission entries consumed across all visited sessions.
    pub drained: usize,
    /// Entries that completed successfully (`errno == 0`).
    pub completed: usize,
    /// Entries that completed with an error.
    pub failed: usize,
    /// The amortised fixed cost charged to the sweeping caller:
    /// [`crate::cost::CostModel::sweep_dispatch_ns`] over the sessions
    /// that did checked work and the entries they checked (validation
    /// rejects and `EIDRM` fills are free, as everywhere else).
    pub fixed_cost_ns: u64,
}

/// Running totals across one sweep's slot visits, folded into the
/// report and the amortised cost charge at the end.
#[derive(Default)]
struct SweepTotals {
    report: SweepReport,
    entry_ns_total: u64,
    checked_total: usize,
    sessions_checked: usize,
}

/// What one slot's visit did (the per-slot slice of the totals, so the
/// QoS sweep can charge each tenant for exactly its own entries).
struct SlotDrain {
    remark: bool,
    drained: usize,
    completed: usize,
    failed: usize,
}

impl Kernel {
    /// The shared per-slot sweep body: resolve the slot's session once,
    /// drain up to `session_budget` entries (or fail everything queued
    /// with `EIDRM` for a dead/foreign slot), and fold the outcome into
    /// `totals`. Used verbatim by both the plain and the QoS sweep so
    /// the epoch / credential / `EIDRM` semantics stay one copy of code.
    fn sweep_visit(
        &self,
        set: &RingSet,
        slot: RingSlotId,
        rings: &Arc<SessionRings>,
        session_budget: usize,
        scratch: &mut DrainScratch,
        totals: &mut SweepTotals,
    ) -> SlotDrain {
        totals.report.sessions_ready += 1;
        // --- once-per-sweep resolution of this session ------------------
        let live = self
            .sessions
            .get(SessionId(rings.session))
            .filter(|s| s.client.0 == rings.owner)
            .filter(|s| s.state() == SessionState::Established);
        let session = match live {
            Some(session) => session,
            None => {
                // Dead / foreign slot: answer everything queued with
                // EIDRM. A full completion ring leaves the rest queued
                // and re-flags the slot for a later sweep (after the
                // producer reaps).
                totals.report.sessions_dead += 1;
                let failed = fail_all_eidrm(&rings.sq, &rings.cq);
                self.metrics.eidrm_failures.add(failed as u64);
                totals.report.drained += failed;
                totals.report.failed += failed;
                if failed > 0 {
                    set.mark_completed(slot);
                }
                return SlotDrain {
                    remark: !rings.sq.is_empty(),
                    drained: failed,
                    completed: 0,
                    failed,
                };
            }
        };
        let mut drain = self.resolve_session_drain(session);
        let outcome = self.drain_session_rings(
            &mut drain,
            &rings.sq,
            &rings.cq,
            rings.arena.as_ref(),
            session_budget,
            scratch,
            Flavor::Sweep,
        );
        // Every drained entry pushed a completion (success or errno):
        // flag the completion bitmap so a parked consumer (the async
        // reactor) learns about the responses without polling rings.
        if outcome.drained > 0 {
            set.mark_completed(slot);
        }
        totals.report.drained += outcome.drained;
        totals.report.completed += outcome.completed;
        totals.report.failed += outcome.failed;
        if outcome.aborted {
            totals.report.sessions_dead += 1;
        } else {
            totals.report.sessions_swept += 1;
        }
        totals.checked_total += outcome.checked;
        totals.entry_ns_total += outcome.entry_ns;
        totals.sessions_checked += usize::from(outcome.checked > 0);
        // Budget leftovers (or a cq-full stall) re-flag the slot so the
        // next sweep picks it straight back up.
        SlotDrain {
            remark: !rings.sq.is_empty(),
            drained: outcome.drained,
            completed: outcome.completed,
            failed: outcome.failed,
        }
    }

    /// The shared end-of-sweep accounting: trap counters, then either
    /// the amortised fixed cost (checked work happened) or the bare trap.
    fn finish_sweep(&self, caller: Pid, mut totals: SweepTotals) -> SweepReport {
        // One trap, however many sessions it visited — the pair of
        // counters behind `DispatchMetrics::sessions_per_trap`, the
        // paper's multi-session amortisation made observable.
        self.metrics.sweep_traps.incr();
        self.metrics
            .sweep_sessions
            .add(totals.report.sessions_ready as u64);
        if totals.checked_total > 0 {
            totals.report.fixed_cost_ns = self
                .cost
                .sweep_dispatch_ns(totals.sessions_checked, totals.checked_total);
            let fixed = totals.report.fixed_cost_ns;
            let _ = self.procs.with_mut(caller, |p| p.cpu_time_ns += fixed);
            self.clock
                .advance_striped(caller.0 as u64, fixed + totals.entry_ns_total);
            // One context-switch pair per *sweep*, no matter how many
            // sessions it visited — the multi-session amortisation.
            self.context_switch_n(caller, 2);
        } else {
            self.charge(caller, self.cost.syscall_trap_ns);
        }
        totals.report
    }
    /// Drain every ready session in `set`, up to `session_budget` entries
    /// per session, in one syscall-equivalent.
    ///
    /// `caller` is the sweeping drainer (any live process — typically a
    /// dedicated [`crate::plane::DispatchPlane`] drainer); it is charged
    /// the amortised fixed cost. Per-entry costs are charged to each
    /// session's own client, exactly as on the batched path. Takes
    /// `&self`: concurrent sweeps partition the ready set between
    /// themselves (the readiness words are claimed atomically), and
    /// producers may keep submitting while a sweep is in flight.
    pub fn sys_smod_sweep(
        &self,
        caller: Pid,
        set: &RingSet,
        session_budget: usize,
    ) -> SysResult<SweepReport> {
        self.procs.with(caller, |_| ())?; // the drainer must be a live process
        let mut totals = SweepTotals::default();
        let mut scratch = DrainScratch::new();
        set.sweep_ready(|slot, rings| {
            self.sweep_visit(set, slot, rings, session_budget, &mut scratch, &mut totals)
                .remark
        });
        Ok(self.finish_sweep(caller, totals))
    }

    /// The tenant-scheduled sweep: claim the ready set into the
    /// drainer's `ledger`, let `sched` plan which tenants' slots drain
    /// this round (and with what per-slot budget), drain the chosen
    /// slots, and release the deferred ones straight back to the bitmap.
    ///
    /// Per-slot semantics (session resolution, `EIDRM`, budget re-marks,
    /// cost accounting) are identical to [`Kernel::sys_smod_sweep`] —
    /// the same code runs. The differences are the scheduler sitting
    /// between claim and drain, per-tenant deficit charging, and the
    /// claims being recorded in `ledger` so the plane's health monitor
    /// can reclaim them if this drainer dies mid-sweep.
    pub fn sys_smod_sweep_qos(
        &self,
        caller: Pid,
        set: &RingSet,
        sched: &SweepScheduler,
        ledger: &ClaimLedger,
        session_budget: usize,
    ) -> SysResult<SweepReport> {
        self.procs.with(caller, |_| ())?;
        let mut candidates: Vec<(RingSlotId, u32)> = Vec::new();
        set.claim_ready(ledger, &mut candidates);
        let raw: Vec<(usize, u32)> = candidates.iter().map(|(s, t)| (s.0, *t)).collect();
        // The simulated clock positions the major frame, so
        // time-partitioned tests are as deterministic as everything else.
        let plan = sched.plan(&raw, self.clock.now_ns(), session_budget);

        let mut totals = SweepTotals::default();
        let mut scratch = DrainScratch::new();
        for &(slot, _tenant) in &plan.deferred {
            set.release_claimed(RingSlotId(slot), ledger);
        }
        for chosen in &plan.chosen {
            let lane = sched.metrics().lane(chosen.tenant);
            set.drain_claimed(RingSlotId(chosen.slot), ledger, |slot, rings| {
                let drain =
                    self.sweep_visit(set, slot, rings, chosen.budget, &mut scratch, &mut totals);
                sched.charge(chosen.tenant, drain.drained as u64);
                lane.completed.add(drain.completed as u64);
                lane.failed.add(drain.failed as u64);
                drain.remark
            });
        }
        Ok(self.finish_sweep(caller, totals))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::tests::{kernel_with_clients, req};
    use crate::batch::BATCH_CHUNK;
    use crate::errno::Errno;
    use secmod_ring::{RingPairConfig, RingSlotId, SMOD_BATCH_DEFAULT_BUDGET};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    /// Register `clients`' sessions in a fresh ring set (slot i ↔ client i).
    fn ring_set_for(
        k: &Kernel,
        clients: &[Pid],
        ring_capacity: usize,
    ) -> (RingSet, Vec<RingSlotId>) {
        let set = RingSet::with_capacity(clients.len());
        let slots = clients
            .iter()
            .map(|&c| {
                let session = k.session_of(c).unwrap();
                set.register(
                    session.id.0,
                    c.0,
                    RingPairConfig {
                        submission: ring_capacity,
                        completion: ring_capacity,
                    },
                )
                .unwrap()
            })
            .collect();
        (set, slots)
    }

    fn sweeper(k: &Kernel) -> Pid {
        k.spawn_process(
            "sweeper",
            crate::cred::Credential::root(),
            vec![0x90; 4096],
            2,
            2,
        )
        .unwrap()
    }

    #[test]
    fn sweep_drains_every_ready_session_once() {
        const SESSIONS: usize = 8;
        const PER_SESSION: u64 = 16;
        let (k, _m, clients, incr) = kernel_with_clients(None, SESSIONS);
        let (set, slots) = ring_set_for(&k, &clients, 64);
        let drainer = sweeper(&k);
        for (s, &client) in clients.iter().enumerate() {
            for i in 0..PER_SESSION {
                set.submit(slots[s], req(&k, client, incr, i, 100 * s as u64 + i))
                    .unwrap();
            }
        }
        let report = k
            .sys_smod_sweep(drainer, &set, SMOD_BATCH_DEFAULT_BUDGET)
            .unwrap();
        assert_eq!(report.sessions_ready, SESSIONS);
        assert_eq!(report.sessions_swept, SESSIONS);
        assert_eq!(report.sessions_dead, 0);
        assert_eq!(report.drained, SESSIONS * PER_SESSION as usize);
        assert_eq!(report.completed, SESSIONS * PER_SESSION as usize);
        assert_eq!(report.failed, 0);
        assert_eq!(
            report.fixed_cost_ns,
            k.cost
                .sweep_dispatch_ns(SESSIONS, SESSIONS * PER_SESSION as usize)
        );
        // Every session that received completions is flagged on the
        // completion bitmap, exactly once each.
        assert!(set.any_completed());
        let flagged = set.sweep_completed(|_, _| false);
        assert_eq!(flagged, SESSIONS, "each swept session flags completed");
        // Per-session completions: FIFO, correct values, no cross-session
        // leakage (user_data encodes the producing session).
        for (s, _) in clients.iter().enumerate() {
            let rings = set.get(slots[s]).unwrap();
            for i in 0..PER_SESSION {
                let resp = rings.cq.pop_spsc().unwrap();
                assert!(resp.is_ok());
                assert_eq!(resp.user_data, i, "session {s} reordered");
                assert_eq!(
                    u64::from_le_bytes(resp.into_ret().try_into().unwrap()),
                    100 * s as u64 + i + 1,
                    "session {s} got another session's result"
                );
            }
            assert!(rings.cq.pop_spsc().is_none());
        }
        assert!(!set.any_ready(), "fully drained slots stay unflagged");
    }

    #[test]
    fn every_ready_ring_is_visited_within_one_sweep() {
        // The starvation guarantee: even when every ring holds more work
        // than the per-session budget, a single sweep still visits all of
        // them — the hot first ring cannot monopolise the drainer.
        const SESSIONS: usize = 8;
        const QUEUED: u64 = 64;
        const BUDGET: usize = 16;
        let (k, _m, clients, incr) = kernel_with_clients(None, SESSIONS);
        let (set, slots) = ring_set_for(&k, &clients, QUEUED as usize);
        let drainer = sweeper(&k);
        for (s, &client) in clients.iter().enumerate() {
            for i in 0..QUEUED {
                set.submit(slots[s], req(&k, client, incr, i, i)).unwrap();
            }
        }
        let report = k.sys_smod_sweep(drainer, &set, BUDGET).unwrap();
        assert_eq!(report.sessions_ready, SESSIONS, "a ready ring was skipped");
        assert_eq!(report.drained, SESSIONS * BUDGET);
        for slot in &slots {
            let rings = set.get(*slot).unwrap();
            assert_eq!(
                rings.cq.len(),
                BUDGET,
                "every session advances by exactly its budget"
            );
            assert_eq!(rings.sq.len(), (QUEUED as usize) - BUDGET);
        }
        assert_eq!(
            set.ready_count(),
            SESSIONS,
            "slots with leftovers must be re-flagged"
        );
        // Sweeping to dryness visits everyone again until nothing is left.
        let mut guard = 0;
        while set.any_ready() {
            k.sys_smod_sweep(drainer, &set, BUDGET).unwrap();
            guard += 1;
            assert!(guard < 16, "sweep failed to converge");
        }
        for slot in &slots {
            assert!(set.get(*slot).unwrap().sq.is_empty());
        }
    }

    #[test]
    fn dead_and_foreign_slots_fail_with_eidrm() {
        let (k, _m, clients, incr) = kernel_with_clients(None, 3);
        let (set, slots) = ring_set_for(&k, &clients, 8);
        let drainer = sweeper(&k);
        // Slot 0: session detached before the sweep.
        for i in 0..4u64 {
            set.submit(slots[0], req(&k, clients[0], incr, i, i))
                .unwrap();
        }
        // Slot 1 stays live.
        for i in 0..4u64 {
            set.submit(slots[1], req(&k, clients[1], incr, i, i))
                .unwrap();
        }
        // Slot 2: registered under the wrong owner — a replayed slot.
        let foreign = {
            let session = k.session_of(clients[2]).unwrap();
            set.deregister(slots[2]).unwrap();
            set.register(session.id.0, clients[0].0, RingPairConfig::default())
                .unwrap()
        };
        for i in 0..4u64 {
            set.submit(foreign, req(&k, clients[2], incr, i, i))
                .unwrap();
        }
        k.smod_detach(clients[0], "pre-sweep detach").unwrap();

        let report = k
            .sys_smod_sweep(drainer, &set, SMOD_BATCH_DEFAULT_BUDGET)
            .unwrap();
        assert_eq!(report.sessions_ready, 3);
        assert_eq!(report.sessions_swept, 1);
        assert_eq!(report.sessions_dead, 2);
        assert_eq!(report.completed, 4);
        assert_eq!(report.failed, 8);
        for slot in [slots[0], foreign] {
            let rings = set.get(slot).unwrap();
            for _ in 0..4 {
                assert_eq!(rings.cq.pop_spsc().unwrap().errno, Errno::EIDRM.code());
            }
        }
        let live = set.get(slots[1]).unwrap();
        for _ in 0..4 {
            assert!(live.cq.pop_spsc().unwrap().is_ok());
        }
    }

    #[test]
    fn detach_racing_a_sweep_fails_the_remainder_with_eidrm() {
        // The sweep analogue of module_removed_mid_batch: while a sweep is
        // mid-drain (bodies sleeping behind the gate), one session
        // detaches. Its remaining entries must fail with EIDRM — and the
        // *other* session must be entirely unaffected.
        const ENTRIES: usize = 6 * BATCH_CHUNK;
        let gate = Arc::new(AtomicBool::new(false));
        let (k, _m, clients, incr) = kernel_with_clients(Some(Arc::clone(&gate)), 2);
        let (set, slots) = ring_set_for(&k, &clients, ENTRIES);
        let drainer = sweeper(&k);
        for (s, &client) in clients.iter().enumerate() {
            for i in 0..ENTRIES as u64 {
                set.submit(slots[s], req(&k, client, incr, i, i)).unwrap();
            }
        }

        let k = &k;
        let (victim, survivor) = (clients[0], clients[1]);
        let report = std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(5));
                k.smod_detach(victim, "mid-sweep teardown").unwrap();
                gate.store(true, Ordering::Release);
            });
            k.sys_smod_sweep(drainer, &set, ENTRIES).unwrap()
        });

        assert_eq!(report.drained, 2 * ENTRIES, "every entry must be answered");
        assert!(report.failed > 0, "the detached session must lose entries");

        // Victim: a prefix of successes, then EIDRM — never an Allow after
        // the detach.
        let victim_rings = set.get(slots[0]).unwrap();
        let mut seen_dead = false;
        let mut victim_ok = 0;
        for i in 0..ENTRIES {
            let resp = victim_rings.cq.pop_spsc().expect("victim completion");
            if resp.is_ok() {
                assert!(!seen_dead, "entry {i} succeeded after the detach");
                victim_ok += 1;
            } else {
                assert_eq!(resp.errno, Errno::EIDRM.code());
                seen_dead = true;
            }
        }
        assert!(seen_dead, "the detach landed after the sweep finished");
        // Survivor: every single entry completed normally.
        let survivor_rings = set.get(slots[1]).unwrap();
        for _ in 0..ENTRIES {
            let resp = survivor_rings.cq.pop_spsc().expect("survivor completion");
            assert!(resp.is_ok(), "the surviving session must be unaffected");
        }
        assert_eq!(report.completed, victim_ok + ENTRIES);
        assert_eq!(k.session_of(survivor).unwrap().calls(), ENTRIES as u64);
    }

    #[test]
    fn empty_sweep_charges_just_the_trap() {
        let (k, _m, clients, _incr) = kernel_with_clients(None, 2);
        let (set, _slots) = ring_set_for(&k, &clients, 8);
        let drainer = sweeper(&k);
        let before = k.clock.now_ns();
        let report = k.sys_smod_sweep(drainer, &set, 8).unwrap();
        assert_eq!(report, SweepReport::default());
        assert_eq!(k.clock.now_ns() - before, k.cost.syscall_trap_ns);
        // A vanished drainer cannot sweep.
        assert_eq!(
            k.sys_smod_sweep(Pid(999), &set, 8).unwrap_err(),
            Errno::ESRCH
        );
    }

    #[test]
    fn qos_sweep_with_one_tenant_matches_the_plain_sweep() {
        use secmod_qos::{QosPolicy, SweepScheduler, TenantSpec};
        const SESSIONS: usize = 4;
        const PER_SESSION: u64 = 16;
        let (k, _m, clients, incr) = kernel_with_clients(None, SESSIONS);
        let (set, slots) = ring_set_for(&k, &clients, 64);
        let drainer = sweeper(&k);
        for (s, &client) in clients.iter().enumerate() {
            for i in 0..PER_SESSION {
                set.submit(slots[s], req(&k, client, incr, i, 100 * s as u64 + i))
                    .unwrap();
            }
        }
        let sched = SweepScheduler::new(
            QosPolicy::weighted_fair([TenantSpec::new(0, 1)]).with_quantum(1024),
        );
        let ledger = set.claim_ledger();
        let report = k
            .sys_smod_sweep_qos(drainer, &set, &sched, &ledger, SMOD_BATCH_DEFAULT_BUDGET)
            .unwrap();
        assert_eq!(report.sessions_ready, SESSIONS);
        assert_eq!(report.completed, SESSIONS * PER_SESSION as usize);
        assert!(ledger.is_empty(), "every claim resolved");
        for (s, _) in clients.iter().enumerate() {
            let rings = set.get(slots[s]).unwrap();
            for i in 0..PER_SESSION {
                let resp = rings.cq.pop_spsc().unwrap();
                assert!(resp.is_ok());
                assert_eq!(resp.user_data, i, "session {s} reordered");
                assert_eq!(
                    u64::from_le_bytes(resp.into_ret().try_into().unwrap()),
                    100 * s as u64 + i + 1,
                );
            }
        }
        let lane = sched.metrics().lane(0);
        assert_eq!(lane.drained.get(), (SESSIONS as u64) * PER_SESSION);
        assert_eq!(lane.completed.get(), (SESSIONS as u64) * PER_SESSION);
    }

    #[test]
    fn qos_sweep_holds_the_victims_share_against_a_slot_flood() {
        use secmod_qos::{QosPolicy, SweepScheduler, TenantSpec};
        // Victim tenant 0: one session. Adversary tenant 1: every other
        // session, all flooded. Equal weights — slot-count round robin
        // would give the victim 1/13 of the service; DRR must hold ~1/2.
        const ADV_SESSIONS: usize = 12;
        const QUEUED: u64 = 64;
        let (k, _m, clients, incr) = kernel_with_clients(None, 1 + ADV_SESSIONS);
        let set = RingSet::with_capacity(clients.len());
        let slots: Vec<RingSlotId> = clients
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let session = k.session_of(c).unwrap();
                let tenant = u32::from(i > 0);
                set.register_for_tenant(
                    session.id.0,
                    c.0,
                    tenant,
                    RingPairConfig {
                        submission: QUEUED as usize,
                        completion: QUEUED as usize,
                    },
                )
                .unwrap()
            })
            .collect();
        for (s, &client) in clients.iter().enumerate() {
            for i in 0..QUEUED {
                set.submit(slots[s], req(&k, client, incr, i, i)).unwrap();
            }
        }
        let drainer = sweeper(&k);
        let sched = SweepScheduler::new(
            QosPolicy::weighted_fair([TenantSpec::new(0, 1), TenantSpec::new(1, 1)])
                .with_quantum(16),
        );
        let ledger = set.claim_ledger();
        // Sweep until the victim's backlog is gone, reaping completions
        // as we go so full completion rings never stall the drain.
        let victim_rings = set.get(slots[0]).unwrap();
        let mut guard = 0;
        while !victim_rings.sq.is_empty() {
            k.sys_smod_sweep_qos(drainer, &set, &sched, &ledger, 64)
                .unwrap();
            for slot in &slots {
                let rings = set.get(*slot).unwrap();
                while rings.cq.pop_spsc().is_some() {}
            }
            guard += 1;
            assert!(guard < 200, "victim backlog failed to drain");
        }
        let victim = sched.metrics().lane(0).drained.get();
        let adversary = sched.metrics().lane(1).drained.get();
        assert_eq!(victim, QUEUED);
        let share = victim as f64 / (victim + adversary) as f64;
        assert!(
            share >= 0.25,
            "victim got {share:.3} of service while backlogged \
             (victim {victim}, adversary {adversary}) — below half its fair share"
        );
        assert!(
            sched.metrics().lane(0).starvation.high_water() <= 2,
            "victim should never build a starvation streak"
        );
    }

    #[test]
    fn qos_sweep_recovers_a_dead_drainers_stranded_claims() {
        use secmod_qos::{QosPolicy, SweepScheduler, TenantSpec};
        const SESSIONS: usize = 4;
        const PER_SESSION: u64 = 8;
        let (k, _m, clients, incr) = kernel_with_clients(None, SESSIONS);
        let (set, slots) = ring_set_for(&k, &clients, 16);
        for (s, &client) in clients.iter().enumerate() {
            for i in 0..PER_SESSION {
                set.submit(slots[s], req(&k, client, incr, i, i)).unwrap();
            }
        }
        // Drainer A claims everything and dies before draining.
        let dead_ledger = set.claim_ledger();
        assert_eq!(set.claim_for_crash(&dead_ledger), SESSIONS);
        // Supervisor verdict: reclaim, then drainer B sweeps normally.
        assert_eq!(set.reclaim(&dead_ledger), SESSIONS);
        let drainer_b = sweeper(&k);
        let sched = SweepScheduler::new(
            QosPolicy::weighted_fair([TenantSpec::new(0, 1)]).with_quantum(1024),
        );
        let ledger_b = set.claim_ledger();
        let report = k
            .sys_smod_sweep_qos(drainer_b, &set, &sched, &ledger_b, 64)
            .unwrap();
        assert_eq!(
            report.completed,
            SESSIONS * PER_SESSION as usize,
            "every stranded entry completes"
        );
        for slot in &slots {
            let rings = set.get(*slot).unwrap();
            let mut seen = Vec::new();
            while let Some(resp) = rings.cq.pop_spsc() {
                assert!(resp.is_ok());
                seen.push(resp.user_data);
            }
            assert_eq!(
                seen,
                (0..PER_SESSION).collect::<Vec<_>>(),
                "exactly once, in order"
            );
        }
    }

    #[test]
    fn sweep_clock_cost_beats_per_session_batch_round_robin() {
        // The acceptance shape on the simulated clock: 64 sessions x batch
        // 32, one sweep vs 64 round-robined batched drains at equal total
        // entries — the sweep must come out >= 1.5x cheaper.
        const SESSIONS: usize = 64;
        const BATCH: usize = 32;

        let (rr, _m, rr_clients, incr) = kernel_with_clients(None, SESSIONS);
        let pairs: Vec<_> = (0..SESSIONS)
            .map(|_| {
                RingPairConfig {
                    submission: BATCH,
                    completion: BATCH,
                }
                .build()
            })
            .collect();
        for (s, &client) in rr_clients.iter().enumerate() {
            for i in 0..BATCH as u64 {
                pairs[s].0.push_spsc(req(&rr, client, incr, i, i)).unwrap();
            }
        }
        let t0 = rr.clock.now_ns();
        for (s, &client) in rr_clients.iter().enumerate() {
            let report = rr
                .sys_smod_call_batch(client, &pairs[s].0, &pairs[s].1, BATCH)
                .unwrap();
            assert_eq!(report.completed, BATCH);
        }
        let round_robin_ns = rr.clock.now_ns() - t0;

        let (sw, _m2, sw_clients, incr2) = kernel_with_clients(None, SESSIONS);
        assert_eq!(incr, incr2);
        let (set, slots) = ring_set_for(&sw, &sw_clients, BATCH);
        let drainer = sweeper(&sw);
        for (s, &client) in sw_clients.iter().enumerate() {
            for i in 0..BATCH as u64 {
                set.submit(slots[s], req(&sw, client, incr, i, i)).unwrap();
            }
        }
        let t0 = sw.clock.now_ns();
        let report = sw.sys_smod_sweep(drainer, &set, BATCH).unwrap();
        let sweep_ns = sw.clock.now_ns() - t0;
        assert_eq!(report.completed, SESSIONS * BATCH);

        let ratio = round_robin_ns as f64 / sweep_ns as f64;
        assert!(
            ratio >= 1.5,
            "sweep {sweep_ns} ns not >= 1.5x cheaper than round-robin {round_robin_ns} ns \
             (ratio {ratio:.2})"
        );
    }
}
