//! # secmod-kernel
//!
//! A deterministic, user-space simulation of the operating-system substrate
//! the SecModule paper modifies: an OpenBSD-flavoured kernel with a process
//! table, credentials, SYSV message queues, a syscall cost model, and — the
//! paper's contribution — the `smod_*` syscall family of Figure 4:
//!
//! ```text
//! 301 sys_smod_find(name, version)
//! 303 sys_smod_session_info(sinfo)        (handle only)
//! 304 sys_smod_handle_info(hinfo)         (client only)
//! 305 sys_smod_add(smodinfo)
//! 306 sys_smod_remove(m_id, credential, credential_size)
//! 307 sys_smod_call(framep, rtnaddr, m_id, funcID)
//! 320 sys_smod_start_session(descp)
//! ```
//!
//! The simulator is cycle-agnostic but *time-modelled*: every kernel
//! operation charges a configurable cost ([`cost::CostModel`]) to a
//! simulated clock, calibrated so that the default configuration reproduces
//! the magnitude of the paper's Figure 8 measurements (a 599 MHz Pentium
//! III running OpenBSD 3.6).  The `secmod-core` crate drives this kernel
//! for its simulated backend and uses real threads + real time for its
//! native backend.
//!
//! Security behaviours from the paper that the simulator enforces:
//!
//! * handles and clients of an smod pair never dump core
//!   ([`proc::ProcFlags::no_coredump`]),
//! * `ptrace` of any process associated with a handle is denied,
//! * module text is mapped only into the handle, never the client,
//! * credentials are re-verified on *every* `smod_call`,
//! * `getpid`/`wait`/signals refer to the client, not the handle,
//! * `execve` detaches the session and kills the handle; `fork` re-creates
//!   a fresh handle for the child.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod clock;
pub mod cost;
pub mod cred;
pub mod dispatch;
pub mod errno;
pub mod kernel;
pub mod msgqueue;
pub mod plane;
pub mod proc;
pub mod smod;
pub mod smodreg;
pub mod sweep;
pub mod table;
pub mod trace;

pub use batch::{BatchReport, BATCH_CHUNK};
pub use clock::SimClock;
pub use cost::CostModel;
pub use cred::Credential;
pub use dispatch::{DispatchCall, DispatchCaps, DispatchError, DispatchOutcome, Dispatcher};
pub use errno::Errno;
pub use kernel::Kernel;
pub use plane::{CrashSpec, DispatchPlane, PlaneConfig, PlaneHandle, PlaneStats, SubmitBatch};
pub use proc::{Pid, ProcFlags, ProcState, Process};
pub use smod::{Session, SessionId, SessionState, SessionTable, SmodCallArgs};
pub use smodreg::RegisteredModule;
pub use sweep::SweepReport;
pub use trace::{Event, Tracer};

/// Result alias for syscalls: either a value or an errno.
pub type SysResult<T> = std::result::Result<T, Errno>;
