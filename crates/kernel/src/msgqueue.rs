//! SYSV-style message queues.
//!
//! The paper uses the existing OpenBSD SYSV MSG interface for the second of
//! its three implementation goals: "keeping the client and handle
//! synchronized … The `msgsnd()` and `msgrcv()` functions already contain
//! efficient blocking and awakening that we desire for synchronization.  So
//! for the second goal, no changes were needed."

use crate::errno::Errno;
use crate::SysResult;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// A message queue identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MsgQueueId(pub u32);

/// A queued message.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Message type (must be positive, as in SYSV).
    pub mtype: i64,
    /// Payload bytes.
    pub data: Vec<u8>,
}

/// One queue.
#[derive(Debug, Default)]
struct Queue {
    messages: VecDeque<Message>,
    total_bytes: usize,
}

/// The kernel's set of message queues.
///
/// Interior-mutable: the queue map sits behind one mutex (queue operations
/// are short and the SMOD dispatch path touches per-session queues, not a
/// global hot queue), the operation counters are atomics.
#[derive(Debug, Default)]
pub struct MsgSubsystem {
    inner: Mutex<MsgInner>,
    sends: AtomicU64,
    receives: AtomicU64,
}

#[derive(Debug)]
struct MsgInner {
    queues: BTreeMap<MsgQueueId, Queue>,
    next_id: u32,
    /// Maximum bytes a single queue may hold (SYSV `msgmnb`).
    max_queue_bytes: usize,
}

impl Default for MsgInner {
    fn default() -> Self {
        MsgInner {
            queues: BTreeMap::new(),
            next_id: 1,
            max_queue_bytes: 16384,
        }
    }
}

impl MsgSubsystem {
    /// Create the subsystem with the traditional 16 KiB per-queue limit.
    pub fn new() -> MsgSubsystem {
        MsgSubsystem::default()
    }

    /// `msgget(IPC_PRIVATE)`: create a new queue.
    pub fn msgget(&self) -> MsgQueueId {
        let mut inner = self.inner.lock();
        let id = MsgQueueId(inner.next_id);
        inner.next_id += 1;
        inner.queues.insert(id, Queue::default());
        id
    }

    /// Remove a queue (`msgctl(IPC_RMID)`).
    pub fn remove(&self, id: MsgQueueId) -> SysResult<()> {
        self.inner
            .lock()
            .queues
            .remove(&id)
            .map(|_| ())
            .ok_or(Errno::EIDRM)
    }

    /// Does the queue exist?
    pub fn exists(&self, id: MsgQueueId) -> bool {
        self.inner.lock().queues.contains_key(&id)
    }

    /// Change the per-queue byte limit (SYSV `msgmnb`).
    pub fn set_max_queue_bytes(&self, max: usize) {
        self.inner.lock().max_queue_bytes = max;
    }

    /// `msgsnd`: append a message.  Fails with `EAGAIN` if the queue is
    /// full (the simulator never blocks the sender).
    pub fn msgsnd(&self, id: MsgQueueId, msg: Message) -> SysResult<()> {
        if msg.mtype <= 0 {
            return Err(Errno::EINVAL);
        }
        let mut inner = self.inner.lock();
        let max = inner.max_queue_bytes;
        let queue = inner.queues.get_mut(&id).ok_or(Errno::EIDRM)?;
        if queue.total_bytes + msg.data.len() > max {
            return Err(Errno::EAGAIN);
        }
        queue.total_bytes += msg.data.len();
        queue.messages.push_back(msg);
        self.sends.fetch_add(1, Relaxed);
        Ok(())
    }

    /// `msgrcv`: remove and return the first message of type `mtype`
    /// (or the first message of any type when `mtype == 0`).  Returns
    /// `EAGAIN` when no matching message is queued — the kernel proper turns
    /// that into blocking the caller.
    pub fn msgrcv(&self, id: MsgQueueId, mtype: i64) -> SysResult<Message> {
        let mut inner = self.inner.lock();
        let queue = inner.queues.get_mut(&id).ok_or(Errno::EIDRM)?;
        let pos = if mtype == 0 {
            if queue.messages.is_empty() {
                None
            } else {
                Some(0)
            }
        } else {
            queue.messages.iter().position(|m| m.mtype == mtype)
        };
        match pos {
            Some(i) => {
                let msg = queue.messages.remove(i).expect("index valid");
                queue.total_bytes -= msg.data.len();
                self.receives.fetch_add(1, Relaxed);
                Ok(msg)
            }
            None => Err(Errno::EAGAIN),
        }
    }

    /// Number of messages waiting in a queue.
    pub fn depth(&self, id: MsgQueueId) -> SysResult<usize> {
        self.inner
            .lock()
            .queues
            .get(&id)
            .map(|q| q.messages.len())
            .ok_or(Errno::EIDRM)
    }

    /// Total `msgsnd` operations performed.
    pub fn sends(&self) -> u64 {
        self.sends.load(Relaxed)
    }

    /// Total `msgrcv` operations performed.
    pub fn receives(&self) -> u64 {
        self.receives.load(Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(mtype: i64, data: &[u8]) -> Message {
        Message {
            mtype,
            data: data.to_vec(),
        }
    }

    #[test]
    fn create_send_receive() {
        let m = MsgSubsystem::new();
        let q = m.msgget();
        assert!(m.exists(q));
        assert_eq!(m.depth(q).unwrap(), 0);
        m.msgsnd(q, msg(1, b"hello")).unwrap();
        m.msgsnd(q, msg(2, b"world")).unwrap();
        assert_eq!(m.depth(q).unwrap(), 2);
        // Receive by type.
        let got = m.msgrcv(q, 2).unwrap();
        assert_eq!(got.data, b"world");
        // Receive any.
        let got = m.msgrcv(q, 0).unwrap();
        assert_eq!(got.data, b"hello");
        assert_eq!(m.msgrcv(q, 0).unwrap_err(), Errno::EAGAIN);
        assert_eq!(m.sends(), 2);
        assert_eq!(m.receives(), 2);
    }

    #[test]
    fn fifo_order_within_type() {
        let m = MsgSubsystem::new();
        let q = m.msgget();
        for i in 0..5u8 {
            m.msgsnd(q, msg(7, &[i])).unwrap();
        }
        for i in 0..5u8 {
            assert_eq!(m.msgrcv(q, 7).unwrap().data, vec![i]);
        }
    }

    #[test]
    fn invalid_type_and_missing_queue() {
        let m = MsgSubsystem::new();
        let q = m.msgget();
        assert_eq!(m.msgsnd(q, msg(0, b"x")).unwrap_err(), Errno::EINVAL);
        assert_eq!(m.msgsnd(q, msg(-1, b"x")).unwrap_err(), Errno::EINVAL);
        assert_eq!(
            m.msgsnd(MsgQueueId(999), msg(1, b"x")).unwrap_err(),
            Errno::EIDRM
        );
        assert_eq!(m.msgrcv(MsgQueueId(999), 0).unwrap_err(), Errno::EIDRM);
        assert_eq!(m.depth(MsgQueueId(999)).unwrap_err(), Errno::EIDRM);
    }

    #[test]
    fn queue_capacity_limit() {
        let m = MsgSubsystem::new();
        m.set_max_queue_bytes(10);
        let q = m.msgget();
        m.msgsnd(q, msg(1, &[0u8; 6])).unwrap();
        assert_eq!(m.msgsnd(q, msg(1, &[0u8; 6])).unwrap_err(), Errno::EAGAIN);
        // Draining frees space.
        m.msgrcv(q, 0).unwrap();
        m.msgsnd(q, msg(1, &[0u8; 6])).unwrap();
    }

    #[test]
    fn remove_queue() {
        let m = MsgSubsystem::new();
        let q = m.msgget();
        m.msgsnd(q, msg(1, b"x")).unwrap();
        m.remove(q).unwrap();
        assert!(!m.exists(q));
        assert_eq!(m.remove(q).unwrap_err(), Errno::EIDRM);
        assert_eq!(m.msgsnd(q, msg(1, b"x")).unwrap_err(), Errno::EIDRM);
    }
}
