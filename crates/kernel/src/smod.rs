//! The SecModule syscall family (paper Figure 4) and session management.

use crate::errno::Errno;
use crate::kernel::Kernel;
use crate::msgqueue::MsgQueueId;
use crate::proc::{Pid, ProcState, SmodLink};
use crate::smodreg::{FunctionTable, HandleCtx, RegisteredModule};
use crate::trace::Event;
use crate::SysResult;
use secmod_module::{ModuleId, SmodPackage};
use secmod_policy::{Environment, PolicyEngine};
use secmod_vm::VmSpace;
use std::sync::Arc;

/// A SecModule session identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u32);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sess{}", self.0)
    }
}

/// The handshake state of a session (Figure 1 steps 2–4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionState {
    /// `sys_smod_start_session` completed: the handle exists but has not
    /// yet reported in.
    Created,
    /// `sys_smod_session_info` completed: the address spaces are shared and
    /// the handle is waiting for work.
    HandleReady,
    /// `sys_smod_handle_info` completed: calls may be dispatched.
    Established,
}

/// An active client/handle session.
#[derive(Clone, Debug)]
pub struct Session {
    /// The session id.
    pub id: SessionId,
    /// The client process.
    pub client: Pid,
    /// The handle co-process.
    pub handle: Pid,
    /// The module this session grants access to.
    pub module: ModuleId,
    /// Message queue used for client → handle call delivery.
    pub call_queue: MsgQueueId,
    /// Message queue used for handle → client replies.
    pub reply_queue: MsgQueueId,
    /// Handshake state.
    pub state: SessionState,
    /// Number of calls dispatched over this session.
    pub calls: u64,
}

/// Arguments to `sys_smod_call` (paper: `sys_smod_call(framep, rtnaddr,
/// m_id, funcID)`; the argument words themselves live on the shared stack
/// and are passed here as marshalled bytes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmodCallArgs {
    /// The module being called.
    pub m_id: ModuleId,
    /// The function id within the module's stub table.
    pub func_id: u32,
    /// The client's frame pointer at the call site (bookkeeping only).
    pub frame_pointer: u64,
    /// The client's return address (bookkeeping only).
    pub return_address: u64,
    /// Marshalled argument bytes (what the client stub placed on the shared
    /// stack).
    pub args: Vec<u8>,
}

/// How the module key reaches the kernel at registration time (§4.4).
#[derive(Clone, Debug)]
pub enum ModuleKeyDelivery {
    /// Creator and host are the same principal: raw key material.
    Raw {
        /// The AES key bytes.
        key: Vec<u8>,
        /// The CTR nonce used when sealing.
        nonce: [u8; 8],
    },
    /// Multi-user case: the key is wrapped with the host system's RSA
    /// public key.
    Wrapped {
        /// RSA-wrapped key blob.
        blob: Vec<u8>,
        /// The CTR nonce used when sealing.
        nonce: [u8; 8],
    },
    /// The package is not encrypted (unmap-based protection only).
    None,
}

impl Kernel {
    // ----------------------------------------------------------------
    // Registration (305 sys_smod_add, 306 sys_smod_remove, 301 sys_smod_find)
    // ----------------------------------------------------------------

    /// `sys_smod_add`: register a sealed module with the kernel.
    ///
    /// The kernel imports the module key into its key store (it never again
    /// leaves kernel space), verifies the package MAC, unseals the text and
    /// checks the plaintext fingerprint, and stores the module together with
    /// its access policy and function bodies.
    pub fn sys_smod_add(
        &mut self,
        registered_by: Pid,
        package: SmodPackage,
        key_delivery: ModuleKeyDelivery,
        mac_key: &[u8],
        policy: PolicyEngine,
        functions: FunctionTable,
    ) -> SysResult<ModuleId> {
        let trap = self.cost.syscall_trap_ns;
        self.charge(registered_by, trap);
        let uid = self.procs.get(registered_by)?.cred.uid;

        package.verify_mac(mac_key).map_err(|_| Errno::EACCES)?;

        let label = format!("{}-{}", package.image.name, package.image.version);
        let key = match key_delivery {
            ModuleKeyDelivery::Raw { key, nonce } => self
                .keystore
                .import_raw(&label, &key, nonce)
                .map_err(|_| Errno::EINVAL)?,
            ModuleKeyDelivery::Wrapped { blob, nonce } => self
                .keystore
                .import_wrapped(&label, &blob, nonce)
                .map_err(|_| Errno::EACCES)?,
            ModuleKeyDelivery::None => {
                if package.encrypted {
                    return Err(Errno::EINVAL);
                }
                // A key is still generated for MAC-style bookkeeping.
                self.keystore
                    .generate(&label, 16)
                    .map_err(|_| Errno::EINVAL)?
            }
        };

        let encryptor = self.keystore.encryptor(key).map_err(|_| Errno::EINVAL)?;
        let plaintext = package.unseal(&encryptor).map_err(|_| Errno::EACCES)?;

        let id = self.registry.allocate_id();
        let name = package.image.name.clone();
        self.registry.insert(RegisteredModule {
            id,
            package,
            plaintext,
            key,
            policy,
            functions,
            registered_by_uid: uid,
            sessions_started: 0,
            calls_dispatched: 0,
        });
        self.tracer
            .record(Event::ModuleRegistered { module: id, name });
        Ok(id)
    }

    /// `sys_smod_remove`: deregister a module.  Only the registering uid (or
    /// root) may remove it, and not while sessions are active.
    pub fn sys_smod_remove(&mut self, caller: Pid, m_id: ModuleId) -> SysResult<()> {
        let trap = self.cost.syscall_trap_ns;
        self.charge(caller, trap);
        let uid = self.procs.get(caller)?.cred.uid;
        {
            let module = self.registry.get(m_id)?;
            if uid != 0 && uid != module.registered_by_uid {
                return Err(Errno::EPERM);
            }
        }
        if self.sessions.values().any(|s| s.module == m_id) {
            return Err(Errno::EBUSY);
        }
        let removed = self.registry.remove(m_id)?;
        let _ = self.keystore.revoke(removed.key);
        self.smod_epoch += 1;
        self.tracer.record(Event::ModuleRemoved { module: m_id });
        Ok(())
    }

    /// `sys_smod_find(name, version)`: look up a registered module.
    /// A version of 0 means "latest".
    pub fn sys_smod_find(&mut self, caller: Pid, name: &str, version: u32) -> SysResult<ModuleId> {
        let trap = self.cost.syscall_trap_ns;
        self.charge(caller, trap);
        if !self.procs.exists(caller) {
            return Err(Errno::ESRCH);
        }
        let id = self.registry.find(name, version)?;
        self.tracer.record(Event::ModuleFound {
            client: caller,
            module: id,
        });
        Ok(id)
    }

    // ----------------------------------------------------------------
    // Session establishment (320, 303, 304)
    // ----------------------------------------------------------------

    /// `sys_smod_start_session`: the kernel verifies the client's
    /// credentials against the module policy, "forcibly forks" the handle
    /// co-process (which alone receives the module text and a small secret
    /// heap/stack segment), and links the pair.
    pub fn sys_smod_start_session(
        &mut self,
        client: Pid,
        m_id: ModuleId,
    ) -> SysResult<(SessionId, Pid)> {
        let cost = self.cost.syscall_trap_ns + self.cost.fork_ns;
        self.charge(client, cost);

        if self.procs.get(client)?.smod.is_some() {
            // One session per client in this prototype (the paper's model:
            // the handle is started per client request).
            return Err(Errno::EBUSY);
        }

        // Credential / policy check for session establishment.
        let (module_name, module_version, policy_complexity) = {
            let module = self.registry.get(m_id)?;
            (
                module.package.image.name.clone(),
                module.package.image.version.0,
                module.policy.total_complexity(),
            )
        };
        // A session may be established if the credential authorises the
        // session itself or *any* exported function — individual calls are
        // still checked one by one in sys_smod_call.
        let allowed = {
            let client_proc = self.procs.get(client)?;
            let principal = client_proc.cred.principal_for(&module_name);
            let module = self.registry.get(m_id)?;
            match principal {
                None => false,
                Some(p) => {
                    let mut candidates: Vec<String> = vec!["__start_session__".to_string()];
                    candidates.extend(
                        module
                            .package
                            .stub_table
                            .stubs
                            .iter()
                            .map(|s| s.symbol.clone()),
                    );
                    candidates.iter().any(|function| {
                        let env = Environment::for_smod_call(
                            &client_proc.name,
                            &module_name,
                            module_version,
                            function,
                            client_proc.cred.uid as i64,
                        );
                        module.policy.is_allowed(std::slice::from_ref(&p), &env)
                    })
                }
            }
        };
        let policy_cost =
            self.cost.policy_per_node_ns * policy_complexity as u64 + self.cost.credential_check_ns;
        self.charge(client, policy_cost);
        if !allowed {
            return Err(Errno::EACCES);
        }

        // Build the handle's address space: module text only in the handle.
        let (handle_vm, handle_name) = {
            let module = self.registry.get(m_id)?;
            let text = module.plaintext.text.data.clone();
            let client_proc = self.procs.get(client)?;
            let name = format!("smod-handle[{}:{}]", module_name, client_proc.pid);
            let vm =
                VmSpace::new_user(&name, self.layout, Arc::new(text), 1, 1).map_err(Errno::from)?;
            (vm, name)
        };
        let client_cred = self.procs.get(client)?.cred.clone();
        let handle = self.procs.allocate_pid();
        let mut handle_proc =
            crate::proc::Process::new(handle, client, &handle_name, client_cred, handle_vm);
        handle_proc.flags.no_coredump = true;
        handle_proc.flags.no_ptrace = true;
        handle_proc.flags.smod_handle = true;
        self.procs.insert(handle_proc);

        // Create the synchronisation queues (SYSV MSG, §4.1 "second goal").
        let call_queue = self.msgs.msgget();
        let reply_queue = self.msgs.msgget();

        let session = SessionId(self.next_session);
        self.next_session += 1;
        self.sessions.insert(
            session,
            Session {
                id: session,
                client,
                handle,
                module: m_id,
                call_queue,
                reply_queue,
                state: SessionState::Created,
                calls: 0,
            },
        );

        // Link the pair and apply the client-side restrictions.
        {
            let p = self.procs.get_mut(client)?;
            p.flags.smod_client = true;
            p.flags.no_coredump = true;
            p.flags.no_ptrace = true;
            p.smod = Some(SmodLink {
                session,
                peer: handle,
                module: m_id,
            });
        }
        {
            let h = self.procs.get_mut(handle)?;
            h.smod = Some(SmodLink {
                session,
                peer: client,
                module: m_id,
            });
        }
        self.registry.get_mut(m_id)?.sessions_started += 1;
        self.tracer.record(Event::SessionStarted {
            session,
            client,
            handle,
            module: m_id,
        });
        Ok((session, handle))
    }

    /// `sys_smod_session_info`: called *by the handle* (Figure 1 step 3).
    /// The kernel forcibly unmaps the handle's data/heap/stack and shares
    /// the client's pages into the same address range
    /// (`uvmspace_force_share`), then maps the handle's secret stack/heap.
    pub fn sys_smod_session_info(&mut self, handle: Pid) -> SysResult<()> {
        let trap = self.cost.syscall_trap_ns;
        self.charge(handle, trap);
        let link = self.procs.get(handle)?.smod.ok_or(Errno::EINVAL)?;
        let session_id = link.session;
        let (client, state) = {
            let s = self.sessions.get(&session_id).ok_or(Errno::EINVAL)?;
            if s.handle != handle {
                return Err(Errno::EPERM);
            }
            (s.client, s.state)
        };
        if state != SessionState::Created {
            return Err(Errno::EINVAL);
        }

        let share_range = self.layout.share_region();
        let shared_entries = {
            let (handle_proc, client_proc) = self.procs.get_pair_mut(handle, client)?;
            let shared = handle_proc
                .vm
                .force_share_from(&mut client_proc.vm, share_range)
                .map_err(Errno::from)?;
            handle_proc.vm.map_secret_region().map_err(Errno::from)?;
            shared
        };
        let share_cost = self.cost.force_share_per_entry_ns * shared_entries as u64;
        self.charge(handle, share_cost);

        self.sessions
            .get_mut(&session_id)
            .expect("session exists")
            .state = SessionState::HandleReady;
        self.tracer.record(Event::HandleReady {
            session: session_id,
            shared_entries,
        });
        Ok(())
    }

    /// `sys_smod_handle_info`: called *by the client* to conclude the
    /// handshake (Figure 1 step 4).
    pub fn sys_smod_handle_info(&mut self, client: Pid) -> SysResult<()> {
        let trap = self.cost.syscall_trap_ns;
        self.charge(client, trap);
        let link = self.procs.get(client)?.smod.ok_or(Errno::EINVAL)?;
        let session_id = link.session;
        let s = self.sessions.get_mut(&session_id).ok_or(Errno::EINVAL)?;
        if s.client != client {
            return Err(Errno::EPERM);
        }
        if s.state != SessionState::HandleReady {
            return Err(Errno::EINVAL);
        }
        s.state = SessionState::Established;
        self.tracer.record(Event::HandshakeComplete {
            session: session_id,
        });
        Ok(())
    }

    // ----------------------------------------------------------------
    // Dispatch (307 sys_smod_call)
    // ----------------------------------------------------------------

    /// `sys_smod_call`: the kernel-mediated indirect dispatch of Figure 3.
    ///
    /// The kernel verifies that the caller really is the client of an
    /// established session for `m_id`, re-checks the credentials against
    /// the module policy for the named function, relays the call to the
    /// handle (message send, context switch), runs the function body with
    /// access to the shared address space, and relays the result back.
    pub fn sys_smod_call(&mut self, caller: Pid, call: SmodCallArgs) -> SysResult<Vec<u8>> {
        // --- validation -------------------------------------------------
        let link = self.procs.get(caller)?.smod.ok_or(Errno::EPERM)?;
        let session_id = link.session;
        let (client, handle, session_module, state) = {
            let s = self.sessions.get(&session_id).ok_or(Errno::EPERM)?;
            (s.client, s.handle, s.module, s.state)
        };
        // Only the client process bound to the session may call through it —
        // this is the "handle must be valid only for a specific process"
        // requirement (question 2 in §1).
        if caller != client {
            return Err(Errno::EPERM);
        }
        if state != SessionState::Established {
            return Err(Errno::EINVAL);
        }
        if call.m_id != session_module {
            return Err(Errno::EACCES);
        }

        // --- per-call credential / policy check -------------------------
        let (symbol, policy_complexity, allowed) = {
            let module = self.registry.get(call.m_id)?;
            let stub = module
                .package
                .stub_table
                .by_id(call.func_id)
                .ok_or(Errno::ENOENT)?;
            let symbol = stub.symbol.clone();
            let client_proc = self.procs.get(client)?;
            let principal = client_proc.cred.principal_for(&module.package.image.name);
            let env = Environment::for_smod_call(
                &client_proc.name,
                &module.package.image.name,
                module.package.image.version.0,
                &symbol,
                client_proc.cred.uid as i64,
            );
            let allowed = match principal {
                Some(p) => module.policy.is_allowed(&[p], &env),
                None => false,
            };
            (symbol, module.policy.total_complexity(), allowed)
        };

        let overhead = self.cost.smod_call_overhead(call.args.len())
            + self.cost.policy_per_node_ns * policy_complexity as u64;
        self.charge(caller, overhead);
        self.context_switch();
        self.context_switch();

        self.tracer.record(Event::SmodCall {
            session: session_id,
            func_id: call.func_id,
            symbol: symbol.clone(),
            allowed,
        });
        if !allowed {
            return Err(Errno::EACCES);
        }

        // --- execute the function body in the handle ---------------------
        let body = {
            let module = self.registry.get(call.m_id)?;
            module.functions.get(call.func_id).ok_or(Errno::ENOSYS)?
        };
        let (result, extra_ns) = {
            let (handle_proc, client_proc) = self.procs.get_pair_mut(handle, client)?;
            let mut ctx = HandleCtx {
                handle_vm: &mut handle_proc.vm,
                client_vm: &client_proc.vm,
                client_pid: client,
                extra_ns: 0,
            };
            let result = body(&mut ctx, &call.args);
            (result, ctx.extra_ns)
        };
        self.charge(handle, extra_ns);

        // --- bookkeeping --------------------------------------------------
        self.sessions
            .get_mut(&session_id)
            .expect("session exists")
            .calls += 1;
        self.registry.get_mut(call.m_id)?.calls_dispatched += 1;
        result
    }

    // ----------------------------------------------------------------
    // Session teardown and the special functions of §4.3
    // ----------------------------------------------------------------

    /// Detach the SecModule session of a *client* process: kill the handle,
    /// remove the queues and the session, clear the flags.
    pub fn smod_detach(&mut self, client: Pid, reason: &str) -> SysResult<()> {
        let link = self.procs.get(client)?.smod.ok_or(Errno::EINVAL)?;
        let session_id = link.session;
        let session = self.sessions.remove(&session_id).ok_or(Errno::EINVAL)?;

        // Kill the handle.
        if let Ok(h) = self.procs.get_mut(session.handle) {
            h.state = ProcState::Zombie(0);
            h.smod = None;
        }
        // Clear the client.
        if let Ok(c) = self.procs.get_mut(client) {
            c.smod = None;
            c.flags.smod_client = false;
        }
        let _ = self.msgs.remove(session.call_queue);
        let _ = self.msgs.remove(session.reply_queue);
        self.smod_epoch += 1;
        self.tracer.record(Event::SessionDetached {
            session: session_id,
            reason: reason.to_string(),
        });
        Ok(())
    }

    /// Detach a session given *either* member of the pair.
    pub fn smod_detach_either(&mut self, pid: Pid, reason: &str) -> SysResult<()> {
        let link = self.procs.get(pid)?.smod.ok_or(Errno::EINVAL)?;
        let client = if self.procs.get(pid)?.flags.smod_handle {
            link.peer
        } else {
            pid
        };
        self.smod_detach(client, reason)
    }

    /// The paper's `fork()` special handling (§4.3): "the ideal action is to
    /// duplicate the child process twice, and force the first child to be
    /// the handle for the second."  Here: fork the client, then establish a
    /// brand-new session (and handle) for the child against the same module.
    /// "Multiple clients should not share the handle."
    pub fn sys_smod_fork(&mut self, client: Pid) -> SysResult<(Pid, SessionId, Pid)> {
        let link = self.procs.get(client)?.smod.ok_or(Errno::EINVAL)?;
        let module = link.module;
        let child = self.sys_fork(client)?;
        // The child gets its own handle and session.
        let (session, handle) = self.sys_smod_start_session(child, module)?;
        self.sys_smod_session_info(handle)?;
        self.sys_smod_handle_info(child)?;
        Ok((child, session, handle))
    }

    /// The session a client currently holds, if any.
    pub fn session_of(&self, pid: Pid) -> Option<&Session> {
        let link = self.procs.get(pid).ok().and_then(|p| p.smod)?;
        self.sessions.get(&link.session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::cred::Credential;
    use secmod_module::builder::ModuleBuilder;
    use secmod_module::StubTable;
    use secmod_policy::assertion::{Assertion, LicenseeExpr};
    use secmod_policy::Principal;
    use secmod_vm::Vaddr;

    const ALICE_KEY: &[u8] = b"alice-credential-key";

    /// Build and register the paper's libc-like module with an
    /// "alice is always allowed" policy, returning (kernel, module id).
    fn kernel_with_module() -> (Kernel, ModuleId) {
        let mut k = Kernel::new(CostModel::default());
        let registrar = k
            .spawn_process("registrar", Credential::root(), vec![0x90; 4096], 2, 2)
            .unwrap();

        let image = ModuleBuilder::libc_like();
        let key = b"0123456789abcdef".to_vec();
        let nonce = [7u8; 8];
        let enc = secmod_crypto::SelectiveEncryptor::new(&key, nonce).unwrap();
        let package = SmodPackage::seal(&image, &enc, b"toolchain-mac-key").unwrap();

        let mut policy = PolicyEngine::new();
        let alice = Principal::from_key("uid1000", ALICE_KEY);
        policy
            .add_assertion(Assertion::policy(LicenseeExpr::Single(alice), "").unwrap())
            .unwrap();

        let stub_table = StubTable::generate(&image);
        let mut functions = FunctionTable::new();
        // testincr: read a u64 argument, return it + 1.
        let incr_id = stub_table.by_name("testincr").unwrap().func_id;
        functions.register(incr_id, |_ctx, args| {
            let v = u64::from_le_bytes(args[..8].try_into().map_err(|_| Errno::EINVAL)?);
            Ok((v + 1).to_le_bytes().to_vec())
        });
        // getpid over SecModule: returns the client pid, charges a trivial
        // syscall's worth of work.
        let getpid_id = stub_table.by_name("getpid").unwrap().func_id;
        functions.register(getpid_id, |ctx, _args| {
            ctx.charge_ns(108);
            Ok((ctx.client_pid.0 as u64).to_le_bytes().to_vec())
        });
        // strlen: read a NUL-terminated string from shared memory.
        let strlen_id = stub_table.by_name("strlen").unwrap().func_id;
        functions.register(strlen_id, |ctx, args| {
            let addr = Vaddr(u64::from_le_bytes(
                args[..8].try_into().map_err(|_| Errno::EINVAL)?,
            ));
            let mut len = 0u64;
            loop {
                let byte = ctx.read(Vaddr(addr.0 + len), 1)?;
                if byte[0] == 0 {
                    break;
                }
                len += 1;
            }
            Ok(len.to_le_bytes().to_vec())
        });

        let m_id = k
            .sys_smod_add(
                registrar,
                package,
                ModuleKeyDelivery::Raw { key, nonce },
                b"toolchain-mac-key",
                policy,
                functions,
            )
            .unwrap();
        (k, m_id)
    }

    fn spawn_alice(k: &mut Kernel) -> Pid {
        k.spawn_process(
            "client",
            Credential::user(1000, 100).with_smod_credential("libc", ALICE_KEY),
            vec![0x90; 4096],
            4,
            4,
        )
        .unwrap()
    }

    fn establish(k: &mut Kernel, client: Pid, m_id: ModuleId) -> (SessionId, Pid) {
        let (session, handle) = k.sys_smod_start_session(client, m_id).unwrap();
        k.sys_smod_session_info(handle).unwrap();
        k.sys_smod_handle_info(client).unwrap();
        (session, handle)
    }

    fn testincr_id(k: &Kernel, m_id: ModuleId) -> u32 {
        k.registry
            .get(m_id)
            .unwrap()
            .package
            .stub_table
            .by_name("testincr")
            .unwrap()
            .func_id
    }

    fn call(
        k: &mut Kernel,
        client: Pid,
        m_id: ModuleId,
        func_id: u32,
        args: Vec<u8>,
    ) -> SysResult<Vec<u8>> {
        k.sys_smod_call(
            client,
            SmodCallArgs {
                m_id,
                func_id,
                frame_pointer: 0xBFFF_0000,
                return_address: 0x0000_1234,
                args,
            },
        )
    }

    #[test]
    fn registration_and_find() {
        let (mut k, m_id) = kernel_with_module();
        let client = spawn_alice(&mut k);
        assert_eq!(k.sys_smod_find(client, "libc", 36).unwrap(), m_id);
        assert_eq!(k.sys_smod_find(client, "libc", 0).unwrap(), m_id);
        assert_eq!(
            k.sys_smod_find(client, "libc", 9).unwrap_err(),
            Errno::ENOENT
        );
        assert_eq!(
            k.sys_smod_find(client, "libz", 0).unwrap_err(),
            Errno::ENOENT
        );
    }

    #[test]
    fn add_rejects_bad_mac_and_bad_key() {
        let mut k = Kernel::new(CostModel::default());
        let registrar = k
            .spawn_process("r", Credential::root(), vec![0x90; 4096], 2, 2)
            .unwrap();
        let image = ModuleBuilder::libc_like();
        let key = b"0123456789abcdef".to_vec();
        let nonce = [7u8; 8];
        let enc = secmod_crypto::SelectiveEncryptor::new(&key, nonce).unwrap();
        let package = SmodPackage::seal(&image, &enc, b"mac-key").unwrap();

        // Wrong MAC key.
        assert_eq!(
            k.sys_smod_add(
                registrar,
                package.clone(),
                ModuleKeyDelivery::Raw {
                    key: key.clone(),
                    nonce
                },
                b"wrong-mac",
                PolicyEngine::new(),
                FunctionTable::new(),
            )
            .unwrap_err(),
            Errno::EACCES
        );
        // Wrong module key: unsealing produces the wrong fingerprint.
        assert_eq!(
            k.sys_smod_add(
                registrar,
                package.clone(),
                ModuleKeyDelivery::Raw {
                    key: b"ffffffffffffffff".to_vec(),
                    nonce
                },
                b"mac-key",
                PolicyEngine::new(),
                FunctionTable::new(),
            )
            .unwrap_err(),
            Errno::EACCES
        );
        // Declaring an encrypted package as unencrypted is invalid.
        assert_eq!(
            k.sys_smod_add(
                registrar,
                package,
                ModuleKeyDelivery::None,
                b"mac-key",
                PolicyEngine::new(),
                FunctionTable::new(),
            )
            .unwrap_err(),
            Errno::EINVAL
        );
    }

    #[test]
    fn full_handshake_and_call() {
        let (mut k, m_id) = kernel_with_module();
        let client = spawn_alice(&mut k);
        let (session, handle) = establish(&mut k, client, m_id);

        // The pair is linked both ways.
        assert_eq!(k.procs.get(client).unwrap().smod.unwrap().peer, handle);
        assert_eq!(k.procs.get(handle).unwrap().smod.unwrap().peer, client);
        assert_eq!(k.session_of(client).unwrap().id, session);

        // testincr(41) == 42.
        let func = testincr_id(&k, m_id);
        let reply = call(&mut k, client, m_id, func, 41u64.to_le_bytes().to_vec()).unwrap();
        assert_eq!(u64::from_le_bytes(reply.try_into().unwrap()), 42);
        assert_eq!(k.session_of(client).unwrap().calls, 1);
        assert_eq!(k.registry.get(m_id).unwrap().calls_dispatched, 1);
    }

    #[test]
    fn handshake_order_is_enforced() {
        let (mut k, m_id) = kernel_with_module();
        let client = spawn_alice(&mut k);
        let (_, handle) = k.sys_smod_start_session(client, m_id).unwrap();
        // Client cannot conclude before the handle reported ready.
        assert_eq!(k.sys_smod_handle_info(client).unwrap_err(), Errno::EINVAL);
        // Client cannot impersonate the handle.
        assert_eq!(k.sys_smod_session_info(client).unwrap_err(), Errno::EPERM);
        // Calls are rejected before the handshake completes.
        let func = testincr_id(&k, m_id);
        assert_eq!(
            call(&mut k, client, m_id, func, 1u64.to_le_bytes().to_vec()).unwrap_err(),
            Errno::EINVAL
        );
        // Correct order works.
        k.sys_smod_session_info(handle).unwrap();
        k.sys_smod_handle_info(client).unwrap();
        // Repeating a handshake step fails.
        assert_eq!(k.sys_smod_session_info(handle).unwrap_err(), Errno::EINVAL);
        assert_eq!(k.sys_smod_handle_info(client).unwrap_err(), Errno::EINVAL);
    }

    #[test]
    fn credential_failure_denies_session_and_calls() {
        let (mut k, m_id) = kernel_with_module();
        // mallory has no credential for libc.
        let mallory = k
            .spawn_process(
                "mallory",
                Credential::user(666, 666),
                vec![0x90; 4096],
                4,
                4,
            )
            .unwrap();
        assert_eq!(
            k.sys_smod_start_session(mallory, m_id).unwrap_err(),
            Errno::EACCES
        );
        // carol presents the wrong key material.
        let carol = k
            .spawn_process(
                "carol",
                Credential::user(1000, 100).with_smod_credential("libc", b"not-alices-key"),
                vec![0x90; 4096],
                4,
                4,
            )
            .unwrap();
        assert_eq!(
            k.sys_smod_start_session(carol, m_id).unwrap_err(),
            Errno::EACCES
        );
    }

    #[test]
    fn stolen_session_cannot_be_used_by_another_process() {
        let (mut k, m_id) = kernel_with_module();
        let client = spawn_alice(&mut k);
        establish(&mut k, client, m_id);
        // A different process — even with the same credentials — cannot call
        // through the client's session.
        let thief = spawn_alice(&mut k);
        let func = testincr_id(&k, m_id);
        assert_eq!(
            call(&mut k, thief, m_id, func, 1u64.to_le_bytes().to_vec()).unwrap_err(),
            Errno::EPERM
        );
    }

    #[test]
    fn module_text_is_only_mapped_in_the_handle() {
        let (mut k, m_id) = kernel_with_module();
        let client = spawn_alice(&mut k);
        let (_, handle) = establish(&mut k, client, m_id);

        let text_base = k.layout.text_base;
        // The handle's text at text_base is the module's plaintext text.
        let module_text = k.registry.get(m_id).unwrap().plaintext.text.data.clone();
        let handle_text = k
            .read_user_memory(handle, Vaddr(text_base), 32.min(module_text.len()))
            .unwrap();
        assert_eq!(&handle_text[..], &module_text[..handle_text.len()]);
        // The client's own text is its program image, not the module.
        let client_text = k.read_user_memory(client, Vaddr(text_base), 32).unwrap();
        assert_eq!(client_text, vec![0x90u8; 32]);
        assert_ne!(handle_text, client_text);
    }

    #[test]
    fn shared_memory_lets_the_handle_work_on_client_data() {
        let (mut k, m_id) = kernel_with_module();
        let client = spawn_alice(&mut k);
        establish(&mut k, client, m_id);

        // Client writes a C string into its heap; SMOD strlen sees it
        // through the shared pages.
        let addr = Vaddr(k.layout.data_base + 64);
        k.write_user_memory(client, addr, b"hello, secmodule\0")
            .unwrap();
        let strlen_id = k
            .registry
            .get(m_id)
            .unwrap()
            .package
            .stub_table
            .by_name("strlen")
            .unwrap()
            .func_id;
        let reply = call(
            &mut k,
            client,
            m_id,
            strlen_id,
            addr.0.to_le_bytes().to_vec(),
        )
        .unwrap();
        assert_eq!(u64::from_le_bytes(reply.try_into().unwrap()), 16);
    }

    #[test]
    fn smod_getpid_reports_the_client_pid() {
        let (mut k, m_id) = kernel_with_module();
        let client = spawn_alice(&mut k);
        let (_, handle) = establish(&mut k, client, m_id);
        let getpid_id = k
            .registry
            .get(m_id)
            .unwrap()
            .package
            .stub_table
            .by_name("getpid")
            .unwrap()
            .func_id;
        let reply = call(&mut k, client, m_id, getpid_id, vec![]).unwrap();
        assert_eq!(
            u64::from_le_bytes(reply.try_into().unwrap()),
            client.0 as u64
        );
        // And the native getpid syscall from the handle also reports the client.
        assert_eq!(k.sys_getpid(handle).unwrap(), client);
    }

    #[test]
    fn ptrace_and_coredumps_are_restricted_for_the_pair() {
        let (mut k, m_id) = kernel_with_module();
        let client = spawn_alice(&mut k);
        let (_, handle) = establish(&mut k, client, m_id);
        let debugger = k
            .spawn_process("gdb", Credential::root(), vec![0x90; 4096], 2, 2)
            .unwrap();
        assert_eq!(
            k.sys_ptrace_attach(debugger, handle).unwrap_err(),
            Errno::EPERM
        );
        assert_eq!(
            k.sys_ptrace_attach(debugger, client).unwrap_err(),
            Errno::EPERM
        );
        // Crashing the handle never produces a core image.
        assert!(!k.crash_process(handle).unwrap());
        assert!(k
            .tracer
            .events()
            .iter()
            .any(|e| matches!(e, Event::CoreDumpSuppressed { .. })));
    }

    #[test]
    fn exit_kills_the_handle_and_removes_the_session() {
        let (mut k, m_id) = kernel_with_module();
        let client = spawn_alice(&mut k);
        let (_, handle) = establish(&mut k, client, m_id);
        k.sys_exit(client, 0).unwrap();
        assert!(!k.procs.get(handle).unwrap().is_alive());
        assert!(k.sessions.is_empty());
        assert!(k
            .tracer
            .events()
            .iter()
            .any(|e| matches!(e, Event::SessionDetached { .. })));
    }

    #[test]
    fn execve_detaches_and_allows_a_fresh_session() {
        let (mut k, m_id) = kernel_with_module();
        let client = spawn_alice(&mut k);
        let (_, handle) = establish(&mut k, client, m_id);
        k.sys_execve(client, "newprog", vec![0xCC; 4096]).unwrap();
        assert!(!k.procs.get(handle).unwrap().is_alive());
        assert!(k.sessions.is_empty());
        // The new image can set up a new session (its crt0 would do this).
        let (session2, handle2) = k.sys_smod_start_session(client, m_id).unwrap();
        k.sys_smod_session_info(handle2).unwrap();
        k.sys_smod_handle_info(client).unwrap();
        assert_eq!(k.session_of(client).unwrap().id, session2);
    }

    #[test]
    fn smod_fork_gives_the_child_its_own_handle() {
        let (mut k, m_id) = kernel_with_module();
        let client = spawn_alice(&mut k);
        let (session, handle) = establish(&mut k, client, m_id);
        let (child, child_session, child_handle) = k.sys_smod_fork(client).unwrap();
        assert_ne!(child_session, session);
        assert_ne!(child_handle, handle);
        // Both clients can call independently.
        let func = testincr_id(&k, m_id);
        let r1 = call(&mut k, client, m_id, func, 10u64.to_le_bytes().to_vec()).unwrap();
        let r2 = call(&mut k, child, m_id, func, 20u64.to_le_bytes().to_vec()).unwrap();
        assert_eq!(u64::from_le_bytes(r1.try_into().unwrap()), 11);
        assert_eq!(u64::from_le_bytes(r2.try_into().unwrap()), 21);
    }

    #[test]
    fn remove_requires_owner_and_no_sessions() {
        let (mut k, m_id) = kernel_with_module();
        let client = spawn_alice(&mut k);
        // Non-owner cannot remove.
        assert_eq!(k.sys_smod_remove(client, m_id).unwrap_err(), Errno::EPERM);
        // Owner cannot remove while a session is active.
        let registrar = Pid(1);
        establish(&mut k, client, m_id);
        assert_eq!(
            k.sys_smod_remove(registrar, m_id).unwrap_err(),
            Errno::EBUSY
        );
        // After the client exits, removal succeeds.
        k.sys_exit(client, 0).unwrap();
        k.sys_smod_remove(registrar, m_id).unwrap();
        assert_eq!(
            k.sys_smod_find(client, "libc", 0).unwrap_err(),
            Errno::ENOENT
        );
    }

    #[test]
    fn smod_epoch_bumps_on_detach_and_remove() {
        let (mut k, m_id) = kernel_with_module();
        let client = spawn_alice(&mut k);
        assert_eq!(k.smod_epoch(), 0);
        establish(&mut k, client, m_id);
        // Establishing alone does not invalidate anything.
        assert_eq!(k.smod_epoch(), 0);
        k.smod_detach(client, "test").unwrap();
        assert_eq!(k.smod_epoch(), 1);
        k.sys_smod_remove(Pid(1), m_id).unwrap();
        assert_eq!(k.smod_epoch(), 2);
        // A failed removal must not bump.
        assert_eq!(k.sys_smod_remove(Pid(1), m_id).unwrap_err(), Errno::ENOENT);
        assert_eq!(k.smod_epoch(), 2);
    }

    #[test]
    fn double_session_per_client_is_rejected() {
        let (mut k, m_id) = kernel_with_module();
        let client = spawn_alice(&mut k);
        establish(&mut k, client, m_id);
        assert_eq!(
            k.sys_smod_start_session(client, m_id).unwrap_err(),
            Errno::EBUSY
        );
    }

    #[test]
    fn wrong_module_or_function_is_rejected() {
        let (mut k, m_id) = kernel_with_module();
        let client = spawn_alice(&mut k);
        establish(&mut k, client, m_id);
        let func = testincr_id(&k, m_id);
        // Unknown function id.
        assert_eq!(
            call(&mut k, client, m_id, 9999, vec![]).unwrap_err(),
            Errno::ENOENT
        );
        // Module id not matching the session.
        assert_eq!(
            call(&mut k, client, ModuleId(999), func, vec![]).unwrap_err(),
            Errno::EACCES
        );
    }

    #[test]
    fn simulated_cost_reproduces_figure8_magnitudes() {
        let (mut k, m_id) = kernel_with_module();
        let client = spawn_alice(&mut k);
        establish(&mut k, client, m_id);
        let func = testincr_id(&k, m_id);

        // Native getpid cost.
        let t0 = k.clock.now_ns();
        k.sys_getpid(client).unwrap();
        let getpid_ns = k.clock.now_ns() - t0;

        // SMOD(testincr) cost.
        let t1 = k.clock.now_ns();
        call(&mut k, client, m_id, func, 5u64.to_le_bytes().to_vec()).unwrap();
        let smod_ns = k.clock.now_ns() - t1;

        let ratio = smod_ns as f64 / getpid_ns as f64;
        assert!(
            (0.4..1.2).contains(&(getpid_ns as f64 / 1000.0)),
            "getpid {getpid_ns} ns"
        );
        assert!(
            (4.0..12.0).contains(&(smod_ns as f64 / 1000.0)),
            "smod {smod_ns} ns"
        );
        assert!(ratio > 5.0 && ratio < 20.0, "ratio {ratio}");
    }

    #[test]
    fn figure1_event_sequence_is_recorded() {
        let (mut k, m_id) = kernel_with_module();
        let client = spawn_alice(&mut k);
        k.sys_smod_find(client, "libc", 0).unwrap();
        let (_, handle) = k.sys_smod_start_session(client, m_id).unwrap();
        k.sys_smod_session_info(handle).unwrap();
        k.sys_smod_handle_info(client).unwrap();
        let func = testincr_id(&k, m_id);
        call(&mut k, client, m_id, func, 1u64.to_le_bytes().to_vec()).unwrap();

        let kinds: Vec<&'static str> = k
            .tracer
            .events()
            .iter()
            .map(|e| match e {
                Event::ModuleRegistered { .. } => "registered",
                Event::ModuleFound { .. } => "found",
                Event::SessionStarted { .. } => "start_session",
                Event::HandleReady { .. } => "session_info",
                Event::HandshakeComplete { .. } => "handle_info",
                Event::SmodCall { .. } => "smod_call",
                _ => "other",
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                "registered",
                "found",
                "start_session",
                "session_info",
                "handle_info",
                "smod_call"
            ]
        );
    }
}
