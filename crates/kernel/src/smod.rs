//! The SecModule syscall family (paper Figure 4) and session management.
//!
//! The dispatch path (`sys_smod_call`) takes `&self` and is driven from
//! many threads at once. Its per-call credential/policy check goes through
//! the module's embedded [`secmod_policy::Gateway`]: on the hot path the
//! decision is one sharded-cache lookup (the kernel folds its `smod_epoch`
//! into the gateway first, so a detach/remove that completed before the
//! call began makes every older cached decision unreachable); only a miss
//! falls back to the full `PolicyEngine` fixpoint, and the cost model
//! charges the cached vs uncached cost accordingly.

use crate::errno::Errno;
use crate::kernel::Kernel;
use crate::msgqueue::MsgQueueId;
use crate::proc::{Pid, ProcState, Process, SmodLink};
use crate::smodreg::{FunctionTable, HandleCtx, RegisteredModule};
use crate::table::ProcRef;
use crate::trace::Event;
use crate::SysResult;
use parking_lot::RwLock;
use secmod_module::{ModuleId, SmodPackage};
use secmod_obs::Flavor;
use secmod_policy::{PolicyEngine, Principal};
use secmod_vm::VmSpace;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering::Relaxed, Ordering::SeqCst};
use std::sync::Arc;

/// A SecModule session identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u32);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sess{}", self.0)
    }
}

/// The handshake state of a session (Figure 1 steps 2–4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionState {
    /// `sys_smod_start_session` completed: the handle exists but has not
    /// yet reported in.
    Created,
    /// `sys_smod_session_info` completed: the address spaces are shared and
    /// the handle is waiting for work.
    HandleReady,
    /// `sys_smod_handle_info` completed: calls may be dispatched.
    Established,
}

impl SessionState {
    fn from_u8(v: u8) -> SessionState {
        match v {
            0 => SessionState::Created,
            1 => SessionState::HandleReady,
            _ => SessionState::Established,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            SessionState::Created => 0,
            SessionState::HandleReady => 1,
            SessionState::Established => 2,
        }
    }
}

/// The memoised per-session [`secmod_policy::AccessRequest`] prototype:
/// the owned pieces
/// of the per-call credential question, pinned at session establishment so
/// `sys_smod_call` (and the batched path) builds its request by borrowing
/// instead of cloning the client name and principal on every dispatch.
///
/// Memoisation does **not** weaken the paper's "credentials are
/// re-verified on every call": each dispatch still consults the live
/// credential, but only to compare `(uid, principal fingerprint)` against
/// this prototype — an allocation-free u64 comparison. Only when the live
/// credential no longer matches (revocation, key swap) does the dispatch
/// fall back to re-deriving the request from the process, which then
/// denies or re-evaluates exactly as the un-memoised path did. The name
/// component can only change through `sys_execve`, which detaches the
/// session first.
#[derive(Debug)]
pub(crate) struct CallProto {
    /// The client process name (the request's `app_domain`).
    pub(crate) client_name: String,
    /// The principal the client's credential identifies for this module
    /// (`None` when the credential carries no material for it — every
    /// check then denies, as the uncached path always has).
    pub(crate) principal: Option<Principal>,
    /// `principal`'s 64-bit fingerprint, compared against the live
    /// credential on every dispatch.
    pub(crate) principal_fp: Option<u64>,
    /// The client uid.
    pub(crate) uid: u32,
}

impl CallProto {
    /// Does the live credential still present the identity this prototype
    /// was memoised from?
    pub(crate) fn matches(&self, cred: &crate::cred::Credential, module: &str) -> bool {
        cred.uid == self.uid && cred.principal_fp64(module) == self.principal_fp
    }
}

/// An active client/handle session. Shared (`Arc`) between the session
/// table and in-flight dispatches; the handshake state and call counter
/// are atomics so the dispatch path never takes a session lock. The
/// session also pins the registered module and both processes' lock
/// handles, so a dispatch resolves everything it needs with a single
/// sharded map lookup (the caller's link) plus one session lookup — no
/// registry traffic on the hot path.
#[derive(Debug)]
pub struct Session {
    /// The session id.
    pub id: SessionId,
    /// The client process.
    pub client: Pid,
    /// The handle co-process.
    pub handle: Pid,
    /// The module this session grants access to.
    pub module: ModuleId,
    /// Message queue used for client → handle call delivery.
    pub call_queue: MsgQueueId,
    /// Message queue used for handle → client replies.
    pub reply_queue: MsgQueueId,
    state: AtomicU8,
    calls: AtomicU64,
    /// The registered module (shared with the registry): dispatch goes
    /// straight to its gateway and function table.
    module_ref: Arc<RegisteredModule>,
    /// Memoised per-call access-request prototype (no per-dispatch clones).
    pub(crate) proto: CallProto,
    /// The client process's lock handle.
    client_ref: ProcRef,
    /// The handle process's lock handle.
    handle_ref: ProcRef,
}

impl Session {
    /// Handshake state.
    pub fn state(&self) -> SessionState {
        SessionState::from_u8(self.state.load(SeqCst))
    }

    /// Number of calls dispatched over this session.
    pub fn calls(&self) -> u64 {
        self.calls.load(Relaxed)
    }

    /// The registered module this session dispatches into.
    pub fn module_ref(&self) -> &Arc<RegisteredModule> {
        &self.module_ref
    }

    /// Advance the handshake if it is exactly at `from`; returns whether
    /// the transition happened (false ⇒ out-of-order handshake step).
    fn transition(&self, from: SessionState, to: SessionState) -> bool {
        self.state
            .compare_exchange(from.as_u8(), to.as_u8(), SeqCst, SeqCst)
            .is_ok()
    }

    pub(crate) fn note_call(&self) {
        self.calls.fetch_add(1, Relaxed);
    }

    /// Record `n` dispatched calls at once (the batched path counts per
    /// chunk instead of per entry).
    pub(crate) fn note_calls(&self, n: u64) {
        self.calls.fetch_add(n, Relaxed);
    }

    /// Lock the client/handle pair (pid-ordered) and run `f(handle,
    /// client)`.
    pub(crate) fn with_pair<R>(
        &self,
        f: impl FnOnce(&mut Process, &mut Process) -> R,
    ) -> SysResult<R> {
        crate::table::lock_pair_ordered(
            self.handle,
            &self.handle_ref,
            self.client,
            &self.client_ref,
            f,
        )
    }
}

const SESSION_SHARDS: usize = 16;

/// The kernel's table of active sessions: sharded `RwLock`s around shared
/// [`Session`]s. Dispatch reads clone the `Arc` and drop the shard lock;
/// only session establishment and teardown take a write lock, and
/// concurrent dispatches on different sessions touch different shard lock
/// words.
#[derive(Debug)]
pub struct SessionTable {
    shards: [RwLock<BTreeMap<SessionId, Arc<Session>>>; SESSION_SHARDS],
}

impl Default for SessionTable {
    fn default() -> Self {
        SessionTable {
            shards: std::array::from_fn(|_| RwLock::new(BTreeMap::new())),
        }
    }
}

impl SessionTable {
    /// Create an empty table.
    pub fn new() -> SessionTable {
        SessionTable::default()
    }

    fn shard(&self, id: SessionId) -> &RwLock<BTreeMap<SessionId, Arc<Session>>> {
        &self.shards[crate::clock::stripe_index(id.0 as u64, SESSION_SHARDS)]
    }

    /// Look up a session.
    pub fn get(&self, id: SessionId) -> Option<Arc<Session>> {
        self.shard(id).read().get(&id).cloned()
    }

    /// Number of active sessions.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Are there no active sessions?
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Is any active session bound to `module`?
    pub fn any_for_module(&self, module: ModuleId) -> bool {
        self.shards
            .iter()
            .any(|s| s.read().values().any(|session| session.module == module))
    }

    /// Snapshot of the active sessions (ascending session id).
    pub fn snapshot(&self) -> Vec<Arc<Session>> {
        let mut all: Vec<Arc<Session>> = self
            .shards
            .iter()
            .flat_map(|s| s.read().values().cloned().collect::<Vec<_>>())
            .collect();
        all.sort_unstable_by_key(|s| s.id);
        all
    }

    fn insert(&self, session: Arc<Session>) {
        self.shard(session.id).write().insert(session.id, session);
    }

    fn remove(&self, id: SessionId) -> Option<Arc<Session>> {
        self.shard(id).write().remove(&id)
    }
}

/// Arguments to `sys_smod_call` (paper: `sys_smod_call(framep, rtnaddr,
/// m_id, funcID)`; the argument words themselves live on the shared stack
/// and are passed here as marshalled bytes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmodCallArgs {
    /// The module being called.
    pub m_id: ModuleId,
    /// The function id within the module's stub table.
    pub func_id: u32,
    /// The client's frame pointer at the call site (bookkeeping only).
    pub frame_pointer: u64,
    /// The client's return address (bookkeeping only).
    pub return_address: u64,
    /// Marshalled argument bytes (what the client stub placed on the shared
    /// stack).
    pub args: Vec<u8>,
}

/// How the module key reaches the kernel at registration time (§4.4).
#[derive(Clone, Debug)]
pub enum ModuleKeyDelivery {
    /// Creator and host are the same principal: raw key material.
    Raw {
        /// The AES key bytes.
        key: Vec<u8>,
        /// The CTR nonce used when sealing.
        nonce: [u8; 8],
    },
    /// Multi-user case: the key is wrapped with the host system's RSA
    /// public key.
    Wrapped {
        /// RSA-wrapped key blob.
        blob: Vec<u8>,
        /// The CTR nonce used when sealing.
        nonce: [u8; 8],
    },
    /// The package is not encrypted (unmap-based protection only).
    None,
}

impl Kernel {
    // ----------------------------------------------------------------
    // Registration (305 sys_smod_add, 306 sys_smod_remove, 301 sys_smod_find)
    // ----------------------------------------------------------------

    /// `sys_smod_add`: register a sealed module with the kernel.
    ///
    /// The kernel imports the module key into its key store (it never again
    /// leaves kernel space), verifies the package MAC, unseals the text and
    /// checks the plaintext fingerprint, and stores the module together with
    /// its access policy — fronted by a shared, decision-caching
    /// [`secmod_policy::Gateway`] sized by [`Kernel::gate_config`] — and
    /// function bodies.
    pub fn sys_smod_add(
        &self,
        registered_by: Pid,
        package: SmodPackage,
        key_delivery: ModuleKeyDelivery,
        mac_key: &[u8],
        policy: PolicyEngine,
        functions: FunctionTable,
    ) -> SysResult<ModuleId> {
        let trap = self.cost.syscall_trap_ns;
        self.charge(registered_by, trap);
        let uid = self.procs.with(registered_by, |p| p.cred.uid)?;

        package.verify_mac(mac_key).map_err(|_| Errno::EACCES)?;

        let label = format!("{}-{}", package.image.name, package.image.version);
        let key = match key_delivery {
            ModuleKeyDelivery::Raw { key, nonce } => self
                .keystore
                .import_raw(&label, &key, nonce)
                .map_err(|_| Errno::EINVAL)?,
            ModuleKeyDelivery::Wrapped { blob, nonce } => self
                .keystore
                .import_wrapped(&label, &blob, nonce)
                .map_err(|_| Errno::EACCES)?,
            ModuleKeyDelivery::None => {
                if package.encrypted {
                    return Err(Errno::EINVAL);
                }
                // A key is still generated for MAC-style bookkeeping.
                self.keystore
                    .generate(&label, 16)
                    .map_err(|_| Errno::EINVAL)?
            }
        };

        let encryptor = self.keystore.encryptor(key).map_err(|_| Errno::EINVAL)?;
        let plaintext = package.unseal(&encryptor).map_err(|_| Errno::EACCES)?;

        let id = self.registry.allocate_id();
        let name = package.image.name.clone();
        self.registry.insert(RegisteredModule::new(
            id,
            package,
            plaintext,
            key,
            secmod_policy::Gateway::new(policy, self.gate_config),
            functions,
            uid,
        ));
        self.tracer
            .record(Event::ModuleRegistered { module: id, name });
        Ok(id)
    }

    /// `sys_smod_remove`: deregister a module.  Only the registering uid (or
    /// root) may remove it, and not while sessions are active.
    pub fn sys_smod_remove(&self, caller: Pid, m_id: ModuleId) -> SysResult<()> {
        let trap = self.cost.syscall_trap_ns;
        self.charge(caller, trap);
        let uid = self.procs.with(caller, |p| p.cred.uid)?;
        {
            let module = self.registry.get(m_id)?;
            if uid != 0 && uid != module.registered_by_uid {
                return Err(Errno::EPERM);
            }
        }
        // The session check runs under the registry write lock so it
        // cannot race an in-flight sys_smod_start_session, which publishes
        // its session under the registry *read* lock (see
        // `SmodRegistry::remove_if`).
        let removed = self
            .registry
            .remove_if(m_id, || !self.sessions.any_for_module(m_id))?;
        let _ = self.keystore.revoke(removed.key);
        self.smod_epoch.fetch_add(1, SeqCst);
        self.tracer.record(Event::ModuleRemoved { module: m_id });
        Ok(())
    }

    /// `sys_smod_find(name, version)`: look up a registered module.
    /// A version of 0 means "latest".
    pub fn sys_smod_find(&self, caller: Pid, name: &str, version: u32) -> SysResult<ModuleId> {
        let trap = self.cost.syscall_trap_ns;
        self.charge(caller, trap);
        if !self.procs.exists(caller) {
            return Err(Errno::ESRCH);
        }
        let id = self.registry.find(name, version)?;
        self.tracer.record(Event::ModuleFound {
            client: caller,
            module: id,
        });
        Ok(id)
    }

    // ----------------------------------------------------------------
    // Session establishment (320, 303, 304)
    // ----------------------------------------------------------------

    /// `sys_smod_start_session`: the kernel verifies the client's
    /// credentials against the module policy (through the module's shared
    /// gateway, so repeated session churn against the same module hits the
    /// decision cache), "forcibly forks" the handle co-process (which alone
    /// receives the module text and a small secret heap/stack segment), and
    /// links the pair.
    pub fn sys_smod_start_session(
        &self,
        client: Pid,
        m_id: ModuleId,
    ) -> SysResult<(SessionId, Pid)> {
        let cost = self.cost.syscall_trap_ns + self.cost.fork_ns;
        self.charge(client, cost);

        if self.procs.with(client, |p| p.smod.is_some())? {
            // One session per client in this prototype (the paper's model:
            // the handle is started per client request).
            return Err(Errno::EBUSY);
        }

        let module = self.registry.get(m_id)?;
        let module_name = module.package.image.name.clone();

        // Credential / policy check for session establishment. A session
        // may be established if the credential authorises the session
        // itself or *any* exported function — individual calls are still
        // checked one by one in sys_smod_call. Each candidate question
        // goes through the gateway, so a cycling client re-establishing a
        // session answers from cache.
        let (client_name, client_cred) = self
            .procs
            .with(client, |p| (p.name.clone(), p.cred.clone()))?;
        module.gateway.observe_kernel_epoch(self.smod_epoch());
        let mut all_cached = true;
        let principal = client_cred.principal_for(&module_name);
        // No credential for this module denies outright, without touching
        // the gateway (and therefore at the cached-decision price).
        let allowed = principal.is_some()
            && std::iter::once("__start_session__")
                .chain(
                    module
                        .package
                        .stub_table
                        .stubs
                        .iter()
                        .map(|s| s.symbol.as_str()),
                )
                .any(|function| {
                    let (allowed, tier) = module.check_operation(
                        &client_name,
                        principal.as_ref(),
                        client_cred.uid,
                        function,
                    );
                    all_cached &= tier.is_cached();
                    allowed
                });
        let policy_cost = if all_cached {
            self.cost.cached_decision_ns + self.cost.credential_check_ns
        } else {
            self.cost.policy_per_node_ns * module.policy_complexity as u64
                + self.cost.credential_check_ns
        };
        self.charge(client, policy_cost);
        if !allowed {
            return Err(Errno::EACCES);
        }

        // Build the handle's address space: module text only in the handle.
        let handle_name = format!("smod-handle[{}:{}]", module_name, client);
        let handle_vm = VmSpace::new_user(
            &handle_name,
            self.layout,
            Arc::new(module.plaintext.text.data.clone()),
            1,
            1,
        )
        .map_err(Errno::from)?;
        let handle = self.procs.allocate_pid();
        let mut handle_proc =
            crate::proc::Process::new(handle, client, &handle_name, client_cred.clone(), handle_vm);
        handle_proc.flags.no_coredump = true;
        handle_proc.flags.no_ptrace = true;
        handle_proc.flags.smod_handle = true;
        self.procs.insert(handle_proc);

        // Create the synchronisation queues (SYSV MSG, §4.1 "second goal").
        let call_queue = self.msgs.msgget();
        let reply_queue = self.msgs.msgget();

        let session = SessionId(self.next_session.fetch_add(1, Relaxed));
        let session_entry = Arc::new(Session {
            id: session,
            client,
            handle,
            module: m_id,
            call_queue,
            reply_queue,
            state: AtomicU8::new(SessionState::Created.as_u8()),
            calls: AtomicU64::new(0),
            module_ref: Arc::clone(&module),
            proto: CallProto {
                principal_fp: principal.as_ref().map(Principal::fingerprint),
                principal,
                client_name,
                uid: client_cred.uid,
            },
            client_ref: self.procs.get(client)?,
            handle_ref: self.procs.get(handle)?,
        });
        // Publish the session under the registry read lock, re-checking
        // that the module is still registered: a concurrent
        // sys_smod_remove holds the registry *write* lock across its
        // no-active-sessions check, so it either sees this session (and
        // returns EBUSY) or has already removed the module (and this
        // re-check fails) — a session can never be established against a
        // removed module.
        let published = self
            .registry
            .if_present(m_id, || self.sessions.insert(session_entry));
        if published.is_err() {
            self.procs.remove(handle);
            let _ = self.msgs.remove(call_queue);
            let _ = self.msgs.remove(reply_queue);
            return Err(Errno::ENOENT);
        }

        // Link the pair and apply the client-side restrictions. The link is
        // a check-and-set under the client's lock so two racing
        // start_sessions for one client cannot both succeed.
        let linked = self.procs.with_mut(client, |p| {
            if p.smod.is_some() {
                return false;
            }
            p.flags.smod_client = true;
            p.flags.no_coredump = true;
            p.flags.no_ptrace = true;
            p.smod = Some(SmodLink {
                session,
                peer: handle,
                module: m_id,
            });
            true
        })?;
        if !linked {
            // Lost the race: tear the half-built session down again.
            self.sessions.remove(session);
            self.procs.remove(handle);
            let _ = self.msgs.remove(call_queue);
            let _ = self.msgs.remove(reply_queue);
            return Err(Errno::EBUSY);
        }
        self.procs.with_mut(handle, |h| {
            h.smod = Some(SmodLink {
                session,
                peer: client,
                module: m_id,
            });
        })?;
        module.note_session_started(client.0 as u64);
        self.tracer.record(Event::SessionStarted {
            session,
            client,
            handle,
            module: m_id,
        });
        Ok((session, handle))
    }

    /// `sys_smod_session_info`: called *by the handle* (Figure 1 step 3).
    /// The kernel forcibly unmaps the handle's data/heap/stack and shares
    /// the client's pages into the same address range
    /// (`uvmspace_force_share`), then maps the handle's secret stack/heap.
    pub fn sys_smod_session_info(&self, handle: Pid) -> SysResult<()> {
        let trap = self.cost.syscall_trap_ns;
        self.charge(handle, trap);
        let link = self.procs.with(handle, |p| p.smod)?.ok_or(Errno::EINVAL)?;
        let session = self.sessions.get(link.session).ok_or(Errno::EINVAL)?;
        if session.handle != handle {
            return Err(Errno::EPERM);
        }
        if !session.transition(SessionState::Created, SessionState::HandleReady) {
            return Err(Errno::EINVAL);
        }

        let share_range = self.layout.share_region();
        let shared_entries =
            self.procs
                .with_pair_mut(handle, session.client, |handle_proc, client_proc| {
                    let shared = handle_proc
                        .vm
                        .force_share_from(&mut client_proc.vm, share_range)
                        .map_err(Errno::from)?;
                    handle_proc.vm.map_secret_region().map_err(Errno::from)?;
                    Ok::<usize, Errno>(shared)
                })??;
        let share_cost = self.cost.force_share_per_entry_ns * shared_entries as u64;
        self.charge(handle, share_cost);

        self.tracer.record(Event::HandleReady {
            session: session.id,
            shared_entries,
        });
        Ok(())
    }

    /// `sys_smod_handle_info`: called *by the client* to conclude the
    /// handshake (Figure 1 step 4).
    pub fn sys_smod_handle_info(&self, client: Pid) -> SysResult<()> {
        let trap = self.cost.syscall_trap_ns;
        self.charge(client, trap);
        let link = self.procs.with(client, |p| p.smod)?.ok_or(Errno::EINVAL)?;
        let session = self.sessions.get(link.session).ok_or(Errno::EINVAL)?;
        if session.client != client {
            return Err(Errno::EPERM);
        }
        if !session.transition(SessionState::HandleReady, SessionState::Established) {
            return Err(Errno::EINVAL);
        }
        self.tracer.record(Event::HandshakeComplete {
            session: session.id,
        });
        Ok(())
    }

    // ----------------------------------------------------------------
    // Dispatch (307 sys_smod_call)
    // ----------------------------------------------------------------

    /// `sys_smod_call`: the kernel-mediated indirect dispatch of Figure 3.
    ///
    /// The kernel verifies that the caller really is the client of an
    /// established session for `m_id`, re-checks the credentials against
    /// the module policy for the named function — through the module's
    /// shared gateway, so the hot path is one decision-cache lookup and
    /// only a miss runs the full policy fixpoint — relays the call to the
    /// handle (message send, context switch), runs the function body with
    /// access to the shared address space, and relays the result back.
    ///
    /// Takes `&self`: any number of threads may dispatch concurrently;
    /// calls on different sessions only share read locks and the module's
    /// sharded decision cache.
    pub fn sys_smod_call(&self, caller: Pid, call: SmodCallArgs) -> SysResult<Vec<u8>> {
        // --- validation -------------------------------------------------
        let link = self.procs.with(caller, |p| p.smod)?.ok_or(Errno::EPERM)?;
        let session = self.sessions.get(link.session).ok_or(Errno::EPERM)?;
        // Only the client process bound to the session may call through it —
        // this is the "handle must be valid only for a specific process"
        // requirement (question 2 in §1).
        if caller != session.client {
            return Err(Errno::EPERM);
        }
        if session.state() != SessionState::Established {
            return Err(Errno::EINVAL);
        }
        if call.m_id != session.module {
            return Err(Errno::EACCES);
        }

        // --- per-call credential / policy check -------------------------
        // The decision comes from the module's shared gateway: the kernel
        // epoch is folded in first (cheap monotone atomic max), so any
        // detach/remove that completed before this call started has already
        // invalidated every older cached decision. The module comes from
        // the session itself — zero registry traffic per call.
        let module = session.module_ref();
        let stub = module
            .package
            .stub_table
            .by_id(call.func_id)
            .ok_or(Errno::ENOENT)?;
        // The live credential is consulted on every call, but only to
        // compare `(uid, principal fingerprint)` against the session's
        // memoised prototype — the request itself is assembled by
        // *borrowing* from the prototype, so the hot path does no
        // client-name/principal clones. A mismatch (credential revoked or
        // swapped mid-session) takes the slow path: re-derive the request
        // from the live credential, exactly as the un-memoised path did.
        module.gateway.observe_kernel_epoch(self.smod_epoch());
        let proto = &session.proto;
        let module_name = &module.package.image.name;
        let cred_matches = self
            .procs
            .with(session.client, |p| proto.matches(&p.cred, module_name))?;
        let (allowed, tier) = if cred_matches {
            module.check_operation(
                &proto.client_name,
                proto.principal.as_ref(),
                proto.uid,
                &stub.symbol,
            )
        } else {
            let (client_name, principal, uid) = self.procs.with(session.client, |p| {
                (
                    p.name.clone(),
                    p.cred.principal_for(module_name),
                    p.cred.uid,
                )
            })?;
            module.check_operation(&client_name, principal.as_ref(), uid, &stub.symbol)
        };

        // The single-call path traps per call anyway, so per-call counter
        // increments are the natural flush point (the batched drains tally
        // locally and flush once per drain instead).
        let cached = tier.is_cached();
        if cached {
            self.metrics.gate_hits.incr();
        } else {
            self.metrics.gate_misses.incr();
        }

        let policy_cost = if cached {
            self.cost.cached_decision_ns
        } else {
            self.cost.policy_per_node_ns * module.policy_complexity as u64
        };
        let overhead = self.cost.smod_call_overhead(call.args.len()) + policy_cost;
        self.context_switch_n(caller, 2);

        if self.tracer.enabled() {
            self.tracer.record(Event::SmodCall {
                session: session.id,
                func_id: call.func_id,
                symbol: stub.symbol.clone(),
                allowed,
            });
        }
        if !allowed {
            self.charge(caller, overhead);
            self.metrics.record_latency(Flavor::Syscall, overhead);
            return Err(Errno::EACCES);
        }

        // --- execute the function body in the handle ---------------------
        // The session pins both processes' lock handles, so the pair is
        // locked (pid-ordered) without touching the process map; the
        // caller's overhead and the handle's extra time are charged under
        // the locks already held.
        let body = module.functions.get(call.func_id).ok_or(Errno::ENOSYS)?;
        let (result, extra_ns) = session.with_pair(|handle_proc, client_proc| {
            client_proc.cpu_time_ns += overhead;
            let mut ctx = HandleCtx {
                handle_vm: &mut handle_proc.vm,
                client_vm: &client_proc.vm,
                client_pid: session.client,
                extra_ns: 0,
            };
            let result = body(&mut ctx, &call.args);
            handle_proc.cpu_time_ns += ctx.extra_ns;
            (result, ctx.extra_ns)
        })?;
        self.clock
            .advance_striped(caller.0 as u64, overhead + extra_ns);
        self.metrics
            .record_latency(Flavor::Syscall, overhead + extra_ns);

        // --- bookkeeping --------------------------------------------------
        session.note_call();
        module.note_call_dispatched(caller.0 as u64);
        result
    }

    // ----------------------------------------------------------------
    // Session teardown and the special functions of §4.3
    // ----------------------------------------------------------------

    /// Detach the SecModule session of a *client* process: kill the handle,
    /// remove the queues and the session, clear the flags.
    pub fn smod_detach(&self, client: Pid, reason: &str) -> SysResult<()> {
        let link = self.procs.with(client, |p| p.smod)?.ok_or(Errno::EINVAL)?;
        let session = self.sessions.remove(link.session).ok_or(Errno::EINVAL)?;

        // Kill the handle.
        let _ = self.procs.with_mut(session.handle, |h| {
            h.state = ProcState::Zombie(0);
            h.smod = None;
        });
        // Clear the client.
        let _ = self.procs.with_mut(client, |c| {
            c.smod = None;
            c.flags.smod_client = false;
        });
        let _ = self.msgs.remove(session.call_queue);
        let _ = self.msgs.remove(session.reply_queue);
        self.smod_epoch.fetch_add(1, SeqCst);
        self.tracer.record(Event::SessionDetached {
            session: session.id,
            reason: reason.to_string(),
        });
        Ok(())
    }

    /// Detach a session given *either* member of the pair.
    pub fn smod_detach_either(&self, pid: Pid, reason: &str) -> SysResult<()> {
        let link = self.procs.with(pid, |p| p.smod)?.ok_or(Errno::EINVAL)?;
        let client = if self.procs.with(pid, |p| p.flags.smod_handle)? {
            link.peer
        } else {
            pid
        };
        self.smod_detach(client, reason)
    }

    /// The paper's `fork()` special handling (§4.3): "the ideal action is to
    /// duplicate the child process twice, and force the first child to be
    /// the handle for the second."  Here: fork the client, then establish a
    /// brand-new session (and handle) for the child against the same module.
    /// "Multiple clients should not share the handle."
    pub fn sys_smod_fork(&self, client: Pid) -> SysResult<(Pid, SessionId, Pid)> {
        let link = self.procs.with(client, |p| p.smod)?.ok_or(Errno::EINVAL)?;
        let module = link.module;
        let child = self.sys_fork(client)?;
        // The child gets its own handle and session.
        let (session, handle) = self.sys_smod_start_session(child, module)?;
        self.sys_smod_session_info(handle)?;
        self.sys_smod_handle_info(child)?;
        Ok((child, session, handle))
    }

    /// The session a client currently holds, if any.
    pub fn session_of(&self, pid: Pid) -> Option<Arc<Session>> {
        let link = self.procs.with(pid, |p| p.smod).ok()??;
        self.sessions.get(link.session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::cred::Credential;
    use secmod_module::builder::ModuleBuilder;
    use secmod_module::StubTable;
    use secmod_policy::assertion::{Assertion, LicenseeExpr};
    use secmod_policy::Principal;
    use secmod_vm::Vaddr;

    const ALICE_KEY: &[u8] = b"alice-credential-key";

    /// Build and register the paper's libc-like module with an
    /// "alice is always allowed" policy, returning (kernel, module id).
    fn kernel_with_module() -> (Kernel, ModuleId) {
        let k = Kernel::new(CostModel::default());
        let registrar = k
            .spawn_process("registrar", Credential::root(), vec![0x90; 4096], 2, 2)
            .unwrap();

        let image = ModuleBuilder::libc_like();
        let key = b"0123456789abcdef".to_vec();
        let nonce = [7u8; 8];
        let enc = secmod_crypto::SelectiveEncryptor::new(&key, nonce).unwrap();
        let package = SmodPackage::seal(&image, &enc, b"toolchain-mac-key").unwrap();

        let mut policy = PolicyEngine::new();
        let alice = Principal::from_key("uid1000", ALICE_KEY);
        policy
            .add_assertion(Assertion::policy(LicenseeExpr::Single(alice), "").unwrap())
            .unwrap();

        let stub_table = StubTable::generate(&image);
        let mut functions = FunctionTable::new();
        // testincr: read a u64 argument, return it + 1.
        let incr_id = stub_table.by_name("testincr").unwrap().func_id;
        functions.register(incr_id, |_ctx, args| {
            let v = u64::from_le_bytes(args[..8].try_into().map_err(|_| Errno::EINVAL)?);
            Ok((v + 1).to_le_bytes().to_vec())
        });
        // getpid over SecModule: returns the client pid, charges a trivial
        // syscall's worth of work.
        let getpid_id = stub_table.by_name("getpid").unwrap().func_id;
        functions.register(getpid_id, |ctx, _args| {
            ctx.charge_ns(108);
            Ok((ctx.client_pid.0 as u64).to_le_bytes().to_vec())
        });
        // strlen: read a NUL-terminated string from shared memory.
        let strlen_id = stub_table.by_name("strlen").unwrap().func_id;
        functions.register(strlen_id, |ctx, args| {
            let addr = Vaddr(u64::from_le_bytes(
                args[..8].try_into().map_err(|_| Errno::EINVAL)?,
            ));
            let mut len = 0u64;
            loop {
                let byte = ctx.read(Vaddr(addr.0 + len), 1)?;
                if byte[0] == 0 {
                    break;
                }
                len += 1;
            }
            Ok(len.to_le_bytes().to_vec())
        });

        let m_id = k
            .sys_smod_add(
                registrar,
                package,
                ModuleKeyDelivery::Raw { key, nonce },
                b"toolchain-mac-key",
                policy,
                functions,
            )
            .unwrap();
        (k, m_id)
    }

    fn spawn_alice(k: &Kernel) -> Pid {
        k.spawn_process(
            "client",
            Credential::user(1000, 100).with_smod_credential("libc", ALICE_KEY),
            vec![0x90; 4096],
            4,
            4,
        )
        .unwrap()
    }

    fn establish(k: &Kernel, client: Pid, m_id: ModuleId) -> (SessionId, Pid) {
        let (session, handle) = k.sys_smod_start_session(client, m_id).unwrap();
        k.sys_smod_session_info(handle).unwrap();
        k.sys_smod_handle_info(client).unwrap();
        (session, handle)
    }

    fn testincr_id(k: &Kernel, m_id: ModuleId) -> u32 {
        k.registry
            .get(m_id)
            .unwrap()
            .package
            .stub_table
            .by_name("testincr")
            .unwrap()
            .func_id
    }

    fn call(
        k: &Kernel,
        client: Pid,
        m_id: ModuleId,
        func_id: u32,
        args: Vec<u8>,
    ) -> SysResult<Vec<u8>> {
        k.sys_smod_call(
            client,
            SmodCallArgs {
                m_id,
                func_id,
                frame_pointer: 0xBFFF_0000,
                return_address: 0x0000_1234,
                args,
            },
        )
    }

    #[test]
    fn registration_and_find() {
        let (k, m_id) = kernel_with_module();
        let client = spawn_alice(&k);
        assert_eq!(k.sys_smod_find(client, "libc", 36).unwrap(), m_id);
        assert_eq!(k.sys_smod_find(client, "libc", 0).unwrap(), m_id);
        assert_eq!(
            k.sys_smod_find(client, "libc", 9).unwrap_err(),
            Errno::ENOENT
        );
        assert_eq!(
            k.sys_smod_find(client, "libz", 0).unwrap_err(),
            Errno::ENOENT
        );
    }

    #[test]
    fn add_rejects_bad_mac_and_bad_key() {
        let k = Kernel::new(CostModel::default());
        let registrar = k
            .spawn_process("r", Credential::root(), vec![0x90; 4096], 2, 2)
            .unwrap();
        let image = ModuleBuilder::libc_like();
        let key = b"0123456789abcdef".to_vec();
        let nonce = [7u8; 8];
        let enc = secmod_crypto::SelectiveEncryptor::new(&key, nonce).unwrap();
        let package = SmodPackage::seal(&image, &enc, b"mac-key").unwrap();

        // Wrong MAC key.
        assert_eq!(
            k.sys_smod_add(
                registrar,
                package.clone(),
                ModuleKeyDelivery::Raw {
                    key: key.clone(),
                    nonce
                },
                b"wrong-mac",
                PolicyEngine::new(),
                FunctionTable::new(),
            )
            .unwrap_err(),
            Errno::EACCES
        );
        // Wrong module key: unsealing produces the wrong fingerprint.
        assert_eq!(
            k.sys_smod_add(
                registrar,
                package.clone(),
                ModuleKeyDelivery::Raw {
                    key: b"ffffffffffffffff".to_vec(),
                    nonce
                },
                b"mac-key",
                PolicyEngine::new(),
                FunctionTable::new(),
            )
            .unwrap_err(),
            Errno::EACCES
        );
        // Declaring an encrypted package as unencrypted is invalid.
        assert_eq!(
            k.sys_smod_add(
                registrar,
                package,
                ModuleKeyDelivery::None,
                b"mac-key",
                PolicyEngine::new(),
                FunctionTable::new(),
            )
            .unwrap_err(),
            Errno::EINVAL
        );
    }

    #[test]
    fn full_handshake_and_call() {
        let (k, m_id) = kernel_with_module();
        let client = spawn_alice(&k);
        let (session, handle) = establish(&k, client, m_id);

        // The pair is linked both ways.
        assert_eq!(
            k.procs.with(client, |p| p.smod.unwrap().peer).unwrap(),
            handle
        );
        assert_eq!(
            k.procs.with(handle, |p| p.smod.unwrap().peer).unwrap(),
            client
        );
        assert_eq!(k.session_of(client).unwrap().id, session);

        // testincr(41) == 42.
        let func = testincr_id(&k, m_id);
        let reply = call(&k, client, m_id, func, 41u64.to_le_bytes().to_vec()).unwrap();
        assert_eq!(u64::from_le_bytes(reply.try_into().unwrap()), 42);
        assert_eq!(k.session_of(client).unwrap().calls(), 1);
        assert_eq!(k.registry.get(m_id).unwrap().calls_dispatched(), 1);
    }

    #[test]
    fn handshake_order_is_enforced() {
        let (k, m_id) = kernel_with_module();
        let client = spawn_alice(&k);
        let (_, handle) = k.sys_smod_start_session(client, m_id).unwrap();
        // Client cannot conclude before the handle reported ready.
        assert_eq!(k.sys_smod_handle_info(client).unwrap_err(), Errno::EINVAL);
        // Client cannot impersonate the handle.
        assert_eq!(k.sys_smod_session_info(client).unwrap_err(), Errno::EPERM);
        // Calls are rejected before the handshake completes.
        let func = testincr_id(&k, m_id);
        assert_eq!(
            call(&k, client, m_id, func, 1u64.to_le_bytes().to_vec()).unwrap_err(),
            Errno::EINVAL
        );
        // Correct order works.
        k.sys_smod_session_info(handle).unwrap();
        k.sys_smod_handle_info(client).unwrap();
        // Repeating a handshake step fails.
        assert_eq!(k.sys_smod_session_info(handle).unwrap_err(), Errno::EINVAL);
        assert_eq!(k.sys_smod_handle_info(client).unwrap_err(), Errno::EINVAL);
    }

    #[test]
    fn credential_failure_denies_session_and_calls() {
        let (k, m_id) = kernel_with_module();
        // mallory has no credential for libc.
        let mallory = k
            .spawn_process(
                "mallory",
                Credential::user(666, 666),
                vec![0x90; 4096],
                4,
                4,
            )
            .unwrap();
        assert_eq!(
            k.sys_smod_start_session(mallory, m_id).unwrap_err(),
            Errno::EACCES
        );
        // carol presents the wrong key material.
        let carol = k
            .spawn_process(
                "carol",
                Credential::user(1000, 100).with_smod_credential("libc", b"not-alices-key"),
                vec![0x90; 4096],
                4,
                4,
            )
            .unwrap();
        assert_eq!(
            k.sys_smod_start_session(carol, m_id).unwrap_err(),
            Errno::EACCES
        );
    }

    #[test]
    fn stolen_session_cannot_be_used_by_another_process() {
        let (k, m_id) = kernel_with_module();
        let client = spawn_alice(&k);
        establish(&k, client, m_id);
        // A different process — even with the same credentials — cannot call
        // through the client's session.
        let thief = spawn_alice(&k);
        let func = testincr_id(&k, m_id);
        assert_eq!(
            call(&k, thief, m_id, func, 1u64.to_le_bytes().to_vec()).unwrap_err(),
            Errno::EPERM
        );
    }

    #[test]
    fn module_text_is_only_mapped_in_the_handle() {
        let (k, m_id) = kernel_with_module();
        let client = spawn_alice(&k);
        let (_, handle) = establish(&k, client, m_id);

        let text_base = k.layout.text_base;
        // The handle's text at text_base is the module's plaintext text.
        let module_text = k.registry.get(m_id).unwrap().plaintext.text.data.clone();
        let handle_text = k
            .read_user_memory(handle, Vaddr(text_base), 32.min(module_text.len()))
            .unwrap();
        assert_eq!(&handle_text[..], &module_text[..handle_text.len()]);
        // The client's own text is its program image, not the module.
        let client_text = k.read_user_memory(client, Vaddr(text_base), 32).unwrap();
        assert_eq!(client_text, vec![0x90u8; 32]);
        assert_ne!(handle_text, client_text);
    }

    #[test]
    fn shared_memory_lets_the_handle_work_on_client_data() {
        let (k, m_id) = kernel_with_module();
        let client = spawn_alice(&k);
        establish(&k, client, m_id);

        // Client writes a C string into its heap; SMOD strlen sees it
        // through the shared pages.
        let addr = Vaddr(k.layout.data_base + 64);
        k.write_user_memory(client, addr, b"hello, secmodule\0")
            .unwrap();
        let strlen_id = k
            .registry
            .get(m_id)
            .unwrap()
            .package
            .stub_table
            .by_name("strlen")
            .unwrap()
            .func_id;
        let reply = call(&k, client, m_id, strlen_id, addr.0.to_le_bytes().to_vec()).unwrap();
        assert_eq!(u64::from_le_bytes(reply.try_into().unwrap()), 16);
    }

    #[test]
    fn smod_getpid_reports_the_client_pid() {
        let (k, m_id) = kernel_with_module();
        let client = spawn_alice(&k);
        let (_, handle) = establish(&k, client, m_id);
        let getpid_id = k
            .registry
            .get(m_id)
            .unwrap()
            .package
            .stub_table
            .by_name("getpid")
            .unwrap()
            .func_id;
        let reply = call(&k, client, m_id, getpid_id, vec![]).unwrap();
        assert_eq!(
            u64::from_le_bytes(reply.try_into().unwrap()),
            client.0 as u64
        );
        // And the native getpid syscall from the handle also reports the client.
        assert_eq!(k.sys_getpid(handle).unwrap(), client);
    }

    #[test]
    fn ptrace_and_coredumps_are_restricted_for_the_pair() {
        let (k, m_id) = kernel_with_module();
        let client = spawn_alice(&k);
        let (_, handle) = establish(&k, client, m_id);
        let debugger = k
            .spawn_process("gdb", Credential::root(), vec![0x90; 4096], 2, 2)
            .unwrap();
        assert_eq!(
            k.sys_ptrace_attach(debugger, handle).unwrap_err(),
            Errno::EPERM
        );
        assert_eq!(
            k.sys_ptrace_attach(debugger, client).unwrap_err(),
            Errno::EPERM
        );
        // Crashing the handle never produces a core image.
        assert!(!k.crash_process(handle).unwrap());
        assert!(k
            .tracer
            .events()
            .iter()
            .any(|e| matches!(e, Event::CoreDumpSuppressed { .. })));
    }

    #[test]
    fn exit_kills_the_handle_and_removes_the_session() {
        let (k, m_id) = kernel_with_module();
        let client = spawn_alice(&k);
        let (_, handle) = establish(&k, client, m_id);
        k.sys_exit(client, 0).unwrap();
        assert!(!k.procs.with(handle, |p| p.is_alive()).unwrap());
        assert!(k.sessions.is_empty());
        assert!(k
            .tracer
            .events()
            .iter()
            .any(|e| matches!(e, Event::SessionDetached { .. })));
    }

    #[test]
    fn execve_detaches_and_allows_a_fresh_session() {
        let (k, m_id) = kernel_with_module();
        let client = spawn_alice(&k);
        let (_, handle) = establish(&k, client, m_id);
        k.sys_execve(client, "newprog", vec![0xCC; 4096]).unwrap();
        assert!(!k.procs.with(handle, |p| p.is_alive()).unwrap());
        assert!(k.sessions.is_empty());
        // The new image can set up a new session (its crt0 would do this).
        let (session2, handle2) = k.sys_smod_start_session(client, m_id).unwrap();
        k.sys_smod_session_info(handle2).unwrap();
        k.sys_smod_handle_info(client).unwrap();
        assert_eq!(k.session_of(client).unwrap().id, session2);
    }

    #[test]
    fn smod_fork_gives_the_child_its_own_handle() {
        let (k, m_id) = kernel_with_module();
        let client = spawn_alice(&k);
        let (session, handle) = establish(&k, client, m_id);
        let (child, child_session, child_handle) = k.sys_smod_fork(client).unwrap();
        assert_ne!(child_session, session);
        assert_ne!(child_handle, handle);
        // Both clients can call independently.
        let func = testincr_id(&k, m_id);
        let r1 = call(&k, client, m_id, func, 10u64.to_le_bytes().to_vec()).unwrap();
        let r2 = call(&k, child, m_id, func, 20u64.to_le_bytes().to_vec()).unwrap();
        assert_eq!(u64::from_le_bytes(r1.try_into().unwrap()), 11);
        assert_eq!(u64::from_le_bytes(r2.try_into().unwrap()), 21);
    }

    #[test]
    fn remove_requires_owner_and_no_sessions() {
        let (k, m_id) = kernel_with_module();
        let client = spawn_alice(&k);
        // Non-owner cannot remove.
        assert_eq!(k.sys_smod_remove(client, m_id).unwrap_err(), Errno::EPERM);
        // Owner cannot remove while a session is active.
        let registrar = Pid(1);
        establish(&k, client, m_id);
        assert_eq!(
            k.sys_smod_remove(registrar, m_id).unwrap_err(),
            Errno::EBUSY
        );
        // After the client exits, removal succeeds.
        k.sys_exit(client, 0).unwrap();
        k.sys_smod_remove(registrar, m_id).unwrap();
        assert_eq!(
            k.sys_smod_find(client, "libc", 0).unwrap_err(),
            Errno::ENOENT
        );
    }

    #[test]
    fn smod_epoch_bumps_on_detach_and_remove() {
        let (k, m_id) = kernel_with_module();
        let client = spawn_alice(&k);
        assert_eq!(k.smod_epoch(), 0);
        establish(&k, client, m_id);
        // Establishing alone does not invalidate anything.
        assert_eq!(k.smod_epoch(), 0);
        k.smod_detach(client, "test").unwrap();
        assert_eq!(k.smod_epoch(), 1);
        k.sys_smod_remove(Pid(1), m_id).unwrap();
        assert_eq!(k.smod_epoch(), 2);
        // A failed removal must not bump.
        assert_eq!(k.sys_smod_remove(Pid(1), m_id).unwrap_err(), Errno::ENOENT);
        assert_eq!(k.smod_epoch(), 2);
    }

    #[test]
    fn double_session_per_client_is_rejected() {
        let (k, m_id) = kernel_with_module();
        let client = spawn_alice(&k);
        establish(&k, client, m_id);
        assert_eq!(
            k.sys_smod_start_session(client, m_id).unwrap_err(),
            Errno::EBUSY
        );
    }

    #[test]
    fn wrong_module_or_function_is_rejected() {
        let (k, m_id) = kernel_with_module();
        let client = spawn_alice(&k);
        establish(&k, client, m_id);
        let func = testincr_id(&k, m_id);
        // Unknown function id.
        assert_eq!(
            call(&k, client, m_id, 9999, vec![]).unwrap_err(),
            Errno::ENOENT
        );
        // Module id not matching the session.
        assert_eq!(
            call(&k, client, ModuleId(999), func, vec![]).unwrap_err(),
            Errno::EACCES
        );
    }

    #[test]
    fn per_call_check_hits_the_module_gateway_cache() {
        let (k, m_id) = kernel_with_module();
        let client = spawn_alice(&k);
        establish(&k, client, m_id);
        let func = testincr_id(&k, m_id);

        // First call misses (plus the session-establishment lookups);
        // repeated calls of the same function are pure cache hits — served
        // from the thread-local L0 tier, so the *sharded* cache sees only
        // the one insert while the kernel's gate counters see every hit.
        let before = k.registry.get(m_id).unwrap().gateway.cache_stats();
        let (hits0, misses0) = (k.metrics.gate_hits.get(), k.metrics.gate_misses.get());
        for i in 0..50u64 {
            call(&k, client, m_id, func, i.to_le_bytes().to_vec()).unwrap();
        }
        let after = k.registry.get(m_id).unwrap().gateway.cache_stats();
        assert!(
            k.metrics.gate_hits.get() >= hits0 + 49,
            "cached dispatch must hit: {before:?} -> {after:?}"
        );
        assert_eq!(
            k.metrics.gate_misses.get(),
            misses0 + 1,
            "only the first call may miss"
        );
        assert_eq!(
            after.misses,
            before.misses + 1,
            "only the first call may reach the sharded tier's engine path"
        );

        // And the cached calls are cheaper on the simulated clock than the
        // uncached first one.
        let t0 = k.clock.now_ns();
        call(&k, client, m_id, func, 1u64.to_le_bytes().to_vec()).unwrap();
        let cached_ns = k.clock.now_ns() - t0;
        let uncached_equiv = k.cost.smod_call_overhead(8)
            + k.cost.policy_per_node_ns
                * k.registry.get(m_id).unwrap().policy_complexity.max(1) as u64;
        assert!(
            cached_ns < uncached_equiv + 2 * k.cost.context_switch_ns,
            "cached call {cached_ns} ns not cheaper than uncached model"
        );
    }

    #[test]
    fn concurrent_dispatch_from_many_threads() {
        let (k, m_id) = kernel_with_module();
        let func = testincr_id(&k, m_id);
        let clients: Vec<Pid> = (0..4)
            .map(|_| {
                let c = spawn_alice(&k);
                establish(&k, c, m_id);
                c
            })
            .collect();
        let k = &k;
        std::thread::scope(|s| {
            for &c in &clients {
                s.spawn(move || {
                    for i in 0..500u64 {
                        let r = call(k, c, m_id, func, i.to_le_bytes().to_vec()).unwrap();
                        assert_eq!(u64::from_le_bytes(r.try_into().unwrap()), i + 1);
                    }
                });
            }
        });
        assert_eq!(k.registry.get(m_id).unwrap().calls_dispatched(), 4 * 500);
        for &c in &clients {
            assert_eq!(k.session_of(c).unwrap().calls(), 500);
        }
    }

    #[test]
    fn simulated_cost_reproduces_figure8_magnitudes() {
        let (k, m_id) = kernel_with_module();
        let client = spawn_alice(&k);
        establish(&k, client, m_id);
        let func = testincr_id(&k, m_id);

        // Native getpid cost.
        let t0 = k.clock.now_ns();
        k.sys_getpid(client).unwrap();
        let getpid_ns = k.clock.now_ns() - t0;

        // SMOD(testincr) cost.
        let t1 = k.clock.now_ns();
        call(&k, client, m_id, func, 5u64.to_le_bytes().to_vec()).unwrap();
        let smod_ns = k.clock.now_ns() - t1;

        let ratio = smod_ns as f64 / getpid_ns as f64;
        assert!(
            (0.4..1.2).contains(&(getpid_ns as f64 / 1000.0)),
            "getpid {getpid_ns} ns"
        );
        assert!(
            (4.0..12.0).contains(&(smod_ns as f64 / 1000.0)),
            "smod {smod_ns} ns"
        );
        assert!(ratio > 5.0 && ratio < 20.0, "ratio {ratio}");
    }

    #[test]
    fn figure1_event_sequence_is_recorded() {
        let (k, m_id) = kernel_with_module();
        let client = spawn_alice(&k);
        k.sys_smod_find(client, "libc", 0).unwrap();
        let (_, handle) = k.sys_smod_start_session(client, m_id).unwrap();
        k.sys_smod_session_info(handle).unwrap();
        k.sys_smod_handle_info(client).unwrap();
        let func = testincr_id(&k, m_id);
        call(&k, client, m_id, func, 1u64.to_le_bytes().to_vec()).unwrap();

        let kinds: Vec<&'static str> = k
            .tracer
            .events()
            .iter()
            .map(|e| match e {
                Event::ModuleRegistered { .. } => "registered",
                Event::ModuleFound { .. } => "found",
                Event::SessionStarted { .. } => "start_session",
                Event::HandleReady { .. } => "session_info",
                Event::HandshakeComplete { .. } => "handle_info",
                Event::SmodCall { .. } => "smod_call",
                _ => "other",
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                "registered",
                "found",
                "start_session",
                "session_info",
                "handle_info",
                "smod_call"
            ]
        );
    }
}
