//! [`DispatchPlane`]: dedicated drainer threads over a shared
//! [`RingSet`] — producers never trap at all.
//!
//! The sweep (`sys_smod_sweep`) lets one drainer serve many sessions per
//! syscall-equivalent; the plane supplies the drainers. It owns a
//! [`RingSet`], spawns a configurable number of OS threads (each backed
//! by a kernel process so sweep costs are attributed somewhere real),
//! and parks them when the set is idle. A producer attaches its
//! established session ([`DispatchPlane::attach`]), receives a
//! [`PlaneHandle`], and from then on interacts with the kernel **only
//! through memory**: `submit` pushes into the session's submission ring,
//! flags the readiness bit and unparks a drainer; `reap` pops
//! completions. The drainer threads do all the trapping, amortised
//! across every attached session.
//!
//! ```text
//!   producer threads                 dispatch plane
//!   ────────────────                 ──────────────
//!   handle.submit(...) ─┐
//!   handle.submit(...) ─┼─► RingSet ──ready bits──► drainer 0 ─┐ sys_smod_sweep
//!   handle.submit(...) ─┘   (SQ/CQ       ▲          drainer 1 ─┘ (resolve each
//!          ▲               per session)  │park/unpark             session once)
//!          └────────── handle.reap() ◄───┴──────────── completions
//! ```
//!
//! Parking uses the classic permit protocol (`std::thread::park` +
//! `unpark`): a producer unparks the drainers *after* flagging
//! readiness, a drainer re-checks the set *after* waking, and the park
//! itself has a timeout so a lost race costs one timeout tick, never a
//! hang. Shutdown flags every slot once more and lets each drainer sweep
//! the set dry before joining.

use crate::cred::Credential;
use crate::errno::Errno;
use crate::kernel::Kernel;
use crate::proc::Pid;
use crate::smod::SessionState;
use crate::sweep::SweepReport;
use crate::SysResult;
use parking_lot::RwLock;
use secmod_ring::{
    RingPairConfig, RingSet, RingSlotId, SessionRings, SmodCallReq, SmodCallResp,
    SMOD_BATCH_DEFAULT_BUDGET,
};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Sizing and behaviour of a [`DispatchPlane`].
#[derive(Clone, Copy, Debug)]
pub struct PlaneConfig {
    /// Dedicated drainer OS threads (min 1).
    pub drainers: usize,
    /// Maximum attached sessions (ring-set capacity).
    pub slots: usize,
    /// Ring pair sizing for each attached session.
    pub ring: RingPairConfig,
    /// Entries drained per session per sweep (the anti-starvation
    /// budget).
    pub session_budget: usize,
    /// How long an idle drainer parks before re-checking the set (the
    /// backstop for a lost unpark race; producers normally wake drainers
    /// long before this expires).
    pub park_timeout: Duration,
}

impl Default for PlaneConfig {
    fn default() -> Self {
        PlaneConfig {
            drainers: 2,
            slots: 64,
            ring: RingPairConfig::default(),
            session_budget: SMOD_BATCH_DEFAULT_BUDGET,
            park_timeout: Duration::from_millis(1),
        }
    }
}

/// Aggregate work done by the plane's drainers (summed at shutdown).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlaneStats {
    /// Total `sys_smod_sweep` invocations across all drainers.
    pub sweeps: u64,
    /// Sweeps that found at least one ready session.
    pub productive_sweeps: u64,
    /// Entries drained.
    pub drained: u64,
    /// Entries completed successfully.
    pub completed: u64,
    /// Entries completed with an error.
    pub failed: u64,
}

impl PlaneStats {
    fn absorb(&mut self, report: &SweepReport) {
        self.sweeps += 1;
        self.productive_sweeps += u64::from(report.sessions_ready > 0);
        self.drained += report.drained as u64;
        self.completed += report.completed as u64;
        self.failed += report.failed as u64;
    }
}

struct PlaneShared {
    kernel: Arc<Kernel>,
    set: RingSet,
    stop: AtomicBool,
    /// Drainer thread handles for unparking (filled once at start).
    sleepers: RwLock<Vec<std::thread::Thread>>,
    /// How many drainers are (about to be) parked. Producers skip the
    /// unpark entirely while every drainer is busy sweeping — the hot
    /// path's wake is then a single relaxed load, not a futex op per
    /// submission. A drainer increments *before* its final readiness
    /// check and decrements after waking, so a producer that observes 0
    /// either raced a drainer that will still see its readiness bit, or
    /// one that is already sweeping.
    idle: AtomicUsize,
}

impl PlaneShared {
    /// Wake the drainers if any might be parked (unpark on a running
    /// thread is a stored permit, so overshooting is safe, just not
    /// free).
    fn wake(&self) {
        if self.idle.load(Ordering::Acquire) == 0 {
            return;
        }
        for t in self.sleepers.read().iter() {
            t.unpark();
        }
    }
}

/// A running dispatch plane. Dropping it without calling
/// [`DispatchPlane::shutdown`] also stops and joins the drainers.
pub struct DispatchPlane {
    shared: Arc<PlaneShared>,
    session_budget: usize,
    ring: RingPairConfig,
    drainers: Vec<JoinHandle<PlaneStats>>,
}

impl std::fmt::Debug for DispatchPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DispatchPlane")
            .field("drainers", &self.drainers.len())
            .field("attached", &self.shared.set.len())
            .finish()
    }
}

impl DispatchPlane {
    /// Start a plane over `kernel`: spawn `cfg.drainers` drainer threads,
    /// each backed by a root-credentialled kernel process named
    /// `plane-drainer<i>` that the sweep's amortised fixed cost is
    /// charged to.
    pub fn start(kernel: Arc<Kernel>, cfg: PlaneConfig) -> SysResult<DispatchPlane> {
        let shared = Arc::new(PlaneShared {
            kernel: Arc::clone(&kernel),
            set: RingSet::with_capacity(cfg.slots),
            stop: AtomicBool::new(false),
            sleepers: RwLock::new(Vec::new()),
            idle: AtomicUsize::new(0),
        });
        let mut drainers = Vec::new();
        for i in 0..cfg.drainers.max(1) {
            let pid = kernel.spawn_process(
                &format!("plane-drainer{i}"),
                Credential::root(),
                vec![0x90; 4096],
                2,
                2,
            )?;
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("smod-drainer{i}"))
                .spawn(move || drainer_loop(&shared, pid, cfg.session_budget, cfg.park_timeout))
                .expect("spawn plane drainer thread");
            drainers.push(handle);
        }
        *shared.sleepers.write() = drainers.iter().map(|h| h.thread().clone()).collect();
        Ok(DispatchPlane {
            shared,
            session_budget: cfg.session_budget,
            ring: cfg.ring,
            drainers,
        })
    }

    /// Attach a client's established session: register its ring pair in
    /// the plane's set and hand back the producer-side [`PlaneHandle`].
    /// `EPERM` without a session, `EINVAL` before the handshake
    /// completes, `ENOMEM` when every slot is taken.
    pub fn attach(&self, client: Pid) -> SysResult<PlaneHandle> {
        let session = self.shared.kernel.session_of(client).ok_or(Errno::EPERM)?;
        if session.state() != SessionState::Established {
            return Err(Errno::EINVAL);
        }
        let slot = self
            .shared
            .set
            .register(session.id.0, client.0, self.ring)
            .ok_or(Errno::ENOMEM)?;
        let rings = self.shared.set.get(slot).expect("freshly registered slot");
        Ok(PlaneHandle {
            shared: Arc::clone(&self.shared),
            slot,
            rings,
        })
    }

    /// Entries drained per session per sweep.
    pub fn session_budget(&self) -> usize {
        self.session_budget
    }

    /// Currently attached sessions.
    pub fn attached(&self) -> usize {
        self.shared.set.len()
    }

    /// Stop the drainers (after one final forced sweep of every attached
    /// slot), join them, and return their aggregate stats.
    pub fn shutdown(mut self) -> PlaneStats {
        self.stop_and_join()
    }

    fn stop_and_join(&mut self) -> PlaneStats {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.set.mark_all_ready();
        self.shared.wake();
        let mut stats = PlaneStats::default();
        for handle in self.drainers.drain(..) {
            let s = handle.join().expect("plane drainer panicked");
            stats.sweeps += s.sweeps;
            stats.productive_sweeps += s.productive_sweeps;
            stats.drained += s.drained;
            stats.completed += s.completed;
            stats.failed += s.failed;
        }
        stats
    }
}

impl Drop for DispatchPlane {
    fn drop(&mut self) {
        if !self.drainers.is_empty() {
            self.stop_and_join();
        }
    }
}

fn drainer_loop(
    shared: &PlaneShared,
    pid: Pid,
    session_budget: usize,
    park_timeout: Duration,
) -> PlaneStats {
    let mut stats = PlaneStats::default();
    // Sweep until stopped; `Err` means the drainer's own process vanished
    // (kernel torn down around the plane) — nothing left to do either way.
    while let Ok(report) = shared
        .kernel
        .sys_smod_sweep(pid, &shared.set, session_budget)
    {
        stats.absorb(&report);
        // Progress = entries answered. A sweep that visited slots but
        // drained nothing (e.g. a producer stopped reaping and its full
        // completion ring keeps its slot perpetually "ready") must fall
        // through to the park below — spinning on a no-progress sweep
        // would peg a core without serving anyone.
        if report.drained > 0 {
            continue;
        }
        // Post-stop, a no-progress sweep means the set is as dry as it
        // can get (the shutdown path force-flagged every slot first):
        // exit even if unserviceable ready bits remain.
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        // Announce the park *before* parking: a producer that submits
        // after reading idle == 0 raced a drainer still mid-sweep; one
        // that reads idle > 0 unparks us (stored permit — a park after
        // the unpark returns immediately). The timeout backstops the
        // remaining window and paces retries on unserviceable slots.
        shared.idle.fetch_add(1, Ordering::AcqRel);
        std::thread::park_timeout(park_timeout);
        shared.idle.fetch_sub(1, Ordering::AcqRel);
    }
    stats
}

/// A producer's attachment to the plane: submit and reap without ever
/// trapping. Dropping the handle detaches the slot from the set (any
/// unreaped completions are dropped with the rings once the last `Arc`
/// goes away).
pub struct PlaneHandle {
    shared: Arc<PlaneShared>,
    slot: RingSlotId,
    rings: Arc<SessionRings>,
}

impl std::fmt::Debug for PlaneHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlaneHandle")
            .field("slot", &self.slot)
            .field("session", &self.rings.session)
            .finish()
    }
}

impl PlaneHandle {
    /// Submit one call: push into the submission ring (the session id is
    /// filled in from the attachment), flag readiness, and wake a
    /// drainer. Returns the request back when the ring is full — the
    /// drainers are already flagged, so the producer can reap, yield and
    /// retry.
    pub fn submit(&self, proc_id: u32, user_data: u64, args: Vec<u8>) -> Result<(), SmodCallReq> {
        let outcome = self.rings.sq.push(SmodCallReq {
            session: self.rings.session,
            proc_id,
            user_data,
            args,
        });
        self.shared.set.mark_ready(self.slot);
        self.shared.wake();
        outcome
    }

    /// Pop one completion, if any.
    pub fn reap(&self) -> Option<SmodCallResp> {
        self.rings.cq.pop()
    }

    /// Entries currently queued for dispatch (approximate).
    pub fn pending(&self) -> usize {
        self.rings.sq.len()
    }
}

impl Drop for PlaneHandle {
    fn drop(&mut self) {
        self.shared.set.deregister(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::tests::kernel_with_clients;

    fn plane_fixture(
        n_clients: usize,
        drainers: usize,
    ) -> (Arc<Kernel>, DispatchPlane, Vec<Pid>, u32) {
        let (k, _m, clients, incr) = kernel_with_clients(None, n_clients);
        let kernel = Arc::new(k);
        let plane = DispatchPlane::start(
            Arc::clone(&kernel),
            PlaneConfig {
                drainers,
                ..PlaneConfig::default()
            },
        )
        .unwrap();
        (kernel, plane, clients, incr)
    }

    #[test]
    fn producers_dispatch_without_ever_trapping() {
        const PER_PRODUCER: u64 = 500;
        let (kernel, plane, clients, incr) = plane_fixture(4, 2);
        let handles: Vec<PlaneHandle> = clients.iter().map(|&c| plane.attach(c).unwrap()).collect();
        std::thread::scope(|s| {
            for handle in &handles {
                s.spawn(move || {
                    let mut received = 0u64;
                    let mut sent = 0u64;
                    let mut sum = 0u64;
                    while received < PER_PRODUCER {
                        if sent < PER_PRODUCER
                            && handle
                                .submit(incr, sent, sent.to_le_bytes().to_vec())
                                .is_ok()
                        {
                            sent += 1;
                        }
                        while let Some(resp) = handle.reap() {
                            assert!(resp.is_ok());
                            sum += u64::from_le_bytes(resp.ret.try_into().unwrap());
                            received += 1;
                        }
                    }
                    // Σ (i + 1) for i in 0..N
                    assert_eq!(sum, PER_PRODUCER * (PER_PRODUCER + 1) / 2);
                });
            }
        });
        drop(handles);
        let stats = plane.shutdown();
        assert_eq!(stats.drained, 4 * PER_PRODUCER);
        assert_eq!(stats.completed, 4 * PER_PRODUCER);
        assert_eq!(stats.failed, 0);
        // The producers' processes never paid a trap: every simulated cost
        // on their pids came from the drained entries (policy/copy/body),
        // all charged under the drainers' sweeps. The drainer processes
        // carry the fixed costs.
        for i in 0..2 {
            let drainer_ns = kernel
                .procs
                .with(
                    kernel
                        .procs
                        .pids()
                        .into_iter()
                        .find(|p| {
                            kernel
                                .procs
                                .with(*p, |proc_| proc_.name == format!("plane-drainer{i}"))
                                .unwrap_or(false)
                        })
                        .expect("drainer process exists"),
                    |p| p.cpu_time_ns,
                )
                .unwrap();
            assert!(drainer_ns > 0, "drainer {i} never charged a sweep");
        }
    }

    #[test]
    fn attach_validates_sessions_and_capacity() {
        let (kernel, plane, clients, _incr) = plane_fixture(1, 1);
        // No session at all.
        let loner = kernel
            .spawn_process("loner", Credential::user(5, 5), vec![0x90; 4096], 2, 2)
            .unwrap();
        assert_eq!(plane.attach(loner).unwrap_err(), Errno::EPERM);
        // Attach, fill the (64-slot) set, and overflow it.
        let handle = plane.attach(clients[0]).unwrap();
        let mut extras = Vec::new();
        loop {
            match plane.attach(clients[0]) {
                Ok(h) => extras.push(h),
                Err(e) => {
                    assert_eq!(e, Errno::ENOMEM);
                    break;
                }
            }
        }
        assert_eq!(plane.attached(), 64);
        drop(extras);
        assert_eq!(plane.attached(), 1, "dropping handles frees slots");
        drop(handle);
        assert_eq!(plane.attached(), 0);
    }

    #[test]
    fn shutdown_drains_work_submitted_but_not_yet_swept() {
        let (_kernel, plane, clients, incr) = plane_fixture(1, 1);
        let handle = plane.attach(clients[0]).unwrap();
        for i in 0..32u64 {
            handle.submit(incr, i, i.to_le_bytes().to_vec()).unwrap();
        }
        let stats = plane.shutdown();
        assert_eq!(stats.completed, 32, "shutdown must sweep the set dry");
        for i in 0..32u64 {
            let resp = handle.reap().expect("completion after shutdown");
            assert_eq!(resp.user_data, i);
            assert!(resp.is_ok());
        }
    }

    #[test]
    fn detached_session_surfaces_eidrm_through_the_plane() {
        let (kernel, plane, clients, incr) = plane_fixture(1, 1);
        let handle = plane.attach(clients[0]).unwrap();
        kernel.smod_detach(clients[0], "plane test").unwrap();
        handle.submit(incr, 7, 7u64.to_le_bytes().to_vec()).unwrap();
        let resp = loop {
            match handle.reap() {
                Some(resp) => break resp,
                None => std::thread::yield_now(),
            }
        };
        assert_eq!(resp.errno, Errno::EIDRM.code());
        assert_eq!(resp.user_data, 7);
        plane.shutdown();
    }
}
