//! [`DispatchPlane`]: dedicated drainer threads over a shared
//! [`RingSet`] — producers never trap at all.
//!
//! The sweep (`sys_smod_sweep`) lets one drainer serve many sessions per
//! syscall-equivalent; the plane supplies the drainers. It owns a
//! [`RingSet`], spawns a configurable number of OS threads (each backed
//! by a kernel process so sweep costs are attributed somewhere real),
//! and parks them when the set is idle. A producer attaches its
//! established session ([`DispatchPlane::attach`]), receives a
//! [`PlaneHandle`], and from then on interacts with the kernel **only
//! through memory**: `submit` pushes into the session's submission ring,
//! flags the readiness bit and unparks a drainer; `reap` pops
//! completions. The drainer threads do all the trapping, amortised
//! across every attached session.
//!
//! ```text
//!   producer threads                 dispatch plane
//!   ────────────────                 ──────────────
//!   handle.submit(...) ─┐
//!   handle.submit(...) ─┼─► RingSet ──ready bits──► drainer 0 ─┐ sys_smod_sweep
//!   handle.submit(...) ─┘   (SQ/CQ       ▲          drainer 1 ─┘ (resolve each
//!          ▲               per session)  │park/unpark             session once)
//!          └────────── handle.reap() ◄───┴──────────── completions
//! ```
//!
//! Parking uses the classic permit protocol (`std::thread::park` +
//! `unpark`): a producer unparks the drainers *after* flagging
//! readiness, a drainer re-checks the set *after* waking, and the park
//! itself has a timeout so a lost race costs one timeout tick, never a
//! hang. Shutdown flags every slot once more and lets each drainer sweep
//! the set dry before joining.
//!
//! ## Multi-tenant planes
//!
//! A plane configured with a [`QosPolicy`] ([`PlaneConfigBuilder::qos`])
//! hosts sessions from many tenants: [`DispatchPlane::attach_tenant`]
//! tags each attachment's ring-set slot with a [`TenantId`], and the
//! drainers switch from the plain sweep to `sys_smod_sweep_qos` — claim
//! the ready slots into a per-drainer [`ClaimLedger`], let the shared
//! [`SweepScheduler`] plan a weighted-fair (or major-frame) split, drain
//! the chosen slots, release the deferred ones. A [`HealthConfig`]
//! ([`PlaneConfigBuilder::health`]) additionally arms the supervisor: a
//! dedicated thread polling each drainer's heartbeat. A drainer that
//! stops beating for two deadlines is declared dead; the supervisor
//! reclaims whatever its ledger still holds claimed (handing the
//! readiness bits back to the set so no submitted entry is stranded) and
//! respawns the seat. [`CrashSpec`] ([`PlaneConfigBuilder::crash`]) is
//! the fault drill that proves the loop: the targeted drainer claims
//! ready work exactly like a real sweep would, then dies holding it.

use crate::cred::Credential;
use crate::dispatch::{DispatchCall, DispatchCaps, DispatchError, DispatchOutcome, Dispatcher};
use crate::errno::Errno;
use crate::kernel::Kernel;
use crate::proc::Pid;
use crate::smod::SessionState;
use crate::sweep::SweepReport;
use crate::SysResult;
use parking_lot::{Mutex, RwLock};
use secmod_obs::{DispatchMetrics, Flavor};
use secmod_qos::{HealthConfig, HealthMonitor, Heartbeat, QosPolicy, SweepScheduler, TenantId};
use secmod_ring::{
    ArgArena, ArgRef, ClaimLedger, RingPairConfig, RingSet, RingSlotId, SessionRings, SmodCallReq,
    SmodCallResp, SubmitError, SMOD_BATCH_DEFAULT_BUDGET,
};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Floor for the clamped heartbeat-slack park (a zero park would spin).
const MIN_PARK: Duration = Duration::from_micros(100);

/// A fault-injection drill: drainer `drainer` claims ready work like a
/// real sweep would, then dies holding the claims (its thread exits
/// without draining or beating). Fires at most once per plane, and only
/// when there is actually ready work to strand — a crash that claims
/// nothing proves nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashSpec {
    /// Seat index of the drainer to kill (0-based).
    pub drainer: usize,
    /// Minimum sweeps the victim completes before it dies.
    pub after_sweeps: u64,
}

/// Sizing and behaviour of a [`DispatchPlane`].
#[derive(Clone, Debug)]
pub struct PlaneConfig {
    /// Dedicated drainer OS threads (min 1).
    pub drainers: usize,
    /// Maximum attached sessions (ring-set capacity).
    pub slots: usize,
    /// Ring pair sizing for each attached session.
    pub ring: RingPairConfig,
    /// Entries drained per session per sweep (the anti-starvation
    /// budget).
    pub session_budget: usize,
    /// How long an idle drainer parks before re-checking the set (the
    /// backstop for a lost unpark race; producers normally wake drainers
    /// long before this expires).
    pub park_timeout: Duration,
    /// Shared argument-arena capacity attached to the plane's ring set.
    /// Payloads above [`secmod_ring::INLINE_ARG_MAX`] pass by
    /// `(offset, len)` descriptor instead of through the ring slot; `0`
    /// disables the arena (everything travels by value). Each attached
    /// session's region quota is the full arena (the arena itself is the
    /// shared ceiling).
    pub arena_bytes: usize,
    /// Pin drainer `i` to core `i % available_parallelism` via
    /// `sched_setaffinity`. Best-effort: platforms without affinity
    /// support run unpinned.
    pub pin_drainers: bool,
    /// Multi-tenant scheduling policy. `None` keeps the plain sweep
    /// (every registration lands in [`TenantId::DEFAULT`] and slots are
    /// served in bitmap order); `Some` switches the drainers to the
    /// claim / plan / drain QoS sweep.
    pub qos: Option<QosPolicy>,
    /// Arm the drainer health monitor and its supervisor thread. `None`
    /// runs unsupervised (pre-QoS behaviour).
    pub health: Option<HealthConfig>,
    /// Fault-injection drill: kill one drainer mid-claim. See
    /// [`CrashSpec`].
    pub crash: Option<CrashSpec>,
}

impl Default for PlaneConfig {
    fn default() -> Self {
        PlaneConfig {
            drainers: 2,
            slots: 64,
            ring: RingPairConfig::default(),
            session_budget: SMOD_BATCH_DEFAULT_BUDGET,
            park_timeout: Duration::from_millis(1),
            arena_bytes: 1 << 20,
            pin_drainers: false,
            qos: None,
            health: None,
            crash: None,
        }
    }
}

impl PlaneConfig {
    /// Start building a config from the defaults:
    /// `PlaneConfig::builder().drainers(2).session_budget(32).build()`.
    pub fn builder() -> PlaneConfigBuilder {
        PlaneConfigBuilder {
            cfg: PlaneConfig::default(),
        }
    }
}

/// Builder for [`PlaneConfig`] — each setter overrides one default.
#[derive(Clone, Debug)]
pub struct PlaneConfigBuilder {
    cfg: PlaneConfig,
}

impl PlaneConfigBuilder {
    /// Dedicated drainer OS threads (min 1).
    pub fn drainers(mut self, drainers: usize) -> Self {
        self.cfg.drainers = drainers;
        self
    }

    /// Maximum attached sessions (ring-set capacity).
    pub fn slots(mut self, slots: usize) -> Self {
        self.cfg.slots = slots;
        self
    }

    /// Ring pair sizing for each attached session.
    pub fn ring(mut self, ring: RingPairConfig) -> Self {
        self.cfg.ring = ring;
        self
    }

    /// Entries drained per session per sweep.
    pub fn session_budget(mut self, session_budget: usize) -> Self {
        self.cfg.session_budget = session_budget;
        self
    }

    /// Idle-drainer park timeout (lost-unpark backstop).
    pub fn park_timeout(mut self, park_timeout: Duration) -> Self {
        self.cfg.park_timeout = park_timeout;
        self
    }

    /// Shared argument-arena capacity (0 disables the zero-copy path).
    pub fn arena_bytes(mut self, arena_bytes: usize) -> Self {
        self.cfg.arena_bytes = arena_bytes;
        self
    }

    /// Pin drainer threads to cores (best-effort).
    pub fn pin_drainers(mut self, pin_drainers: bool) -> Self {
        self.cfg.pin_drainers = pin_drainers;
        self
    }

    /// Multi-tenant scheduling policy (switches drainers to the QoS
    /// sweep).
    pub fn qos(mut self, policy: QosPolicy) -> Self {
        self.cfg.qos = Some(policy);
        self
    }

    /// Arm the drainer health monitor and supervisor.
    pub fn health(mut self, health: HealthConfig) -> Self {
        self.cfg.health = Some(health);
        self
    }

    /// Arm the drainer-crash fault drill.
    pub fn crash(mut self, crash: CrashSpec) -> Self {
        self.cfg.crash = Some(crash);
        self
    }

    /// Finish the build.
    pub fn build(self) -> PlaneConfig {
        self.cfg
    }
}

/// Aggregate work done by the plane's drainers (summed at shutdown).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlaneStats {
    /// Total `sys_smod_sweep` invocations across all drainers.
    pub sweeps: u64,
    /// Sweeps that found at least one ready session.
    pub productive_sweeps: u64,
    /// Entries drained.
    pub drained: u64,
    /// Entries completed successfully.
    pub completed: u64,
    /// Entries completed with an error.
    pub failed: u64,
    /// Drainers the supervisor respawned after a `Dead` verdict.
    pub drainer_restarts: u64,
    /// Readiness bits reclaimed from dead drainers' claim ledgers
    /// (supervisor recoveries plus the shutdown safety net).
    pub reclaimed: u64,
}

impl PlaneStats {
    fn absorb(&mut self, report: &SweepReport) {
        self.sweeps += 1;
        self.productive_sweeps += u64::from(report.sessions_ready > 0);
        self.drained += report.drained as u64;
        self.completed += report.completed as u64;
        self.failed += report.failed as u64;
    }

    fn merge(&mut self, s: &PlaneStats) {
        self.sweeps += s.sweeps;
        self.productive_sweeps += s.productive_sweeps;
        self.drained += s.drained;
        self.completed += s.completed;
        self.failed += s.failed;
        self.drainer_restarts += s.drainer_restarts;
        self.reclaimed += s.reclaimed;
    }
}

/// Per-drainer spawn parameters the supervisor reuses on respawn.
struct DrainerParams {
    session_budget: usize,
    park_timeout: Duration,
    pin_drainers: bool,
    cores: usize,
    /// `deadline / 2` when a health monitor is armed: the park timeout
    /// is clamped to this so a healthy parked drainer always wakes to
    /// beat well inside its deadline.
    heartbeat_slack: Option<Duration>,
}

struct PlaneShared {
    kernel: Arc<Kernel>,
    set: Arc<RingSet>,
    stop: AtomicBool,
    /// Invoked by a drainer after any sweep that produced completions
    /// (and once more at shutdown). The async frontend's reactor hangs
    /// its wake-up here so it parks instead of polling the completion
    /// bitmap; `None` costs the drainers one relaxed load per sweep.
    completion_hook: RwLock<Option<Arc<dyn Fn() + Send + Sync>>>,
    /// Drainer thread handles for unparking (filled once at start).
    sleepers: RwLock<Vec<std::thread::Thread>>,
    /// How many drainers are (about to be) parked. Producers skip the
    /// unpark entirely while every drainer is busy sweeping — the hot
    /// path's wake is then a single relaxed load, not a futex op per
    /// submission. A drainer increments *before* its final readiness
    /// check and decrements after waking, so a producer that observes 0
    /// either raced a drainer that will still see its readiness bit, or
    /// one that is already sweeping.
    idle: AtomicUsize,
    /// The QoS scheduler, when the plane is multi-tenant. `None` keeps
    /// the plain sweep.
    sched: Option<Arc<SweepScheduler>>,
    /// The drainer health monitor, when armed.
    monitor: Option<Arc<HealthMonitor>>,
    /// One claim ledger per drainer seat (always allocated — they are a
    /// few bitmap words). The supervisor swaps in a fresh ledger when it
    /// reclaims a dead seat's, so a corpse and its replacement never
    /// share one.
    ledgers: RwLock<Vec<Arc<ClaimLedger>>>,
    /// Fault drill, if armed, and its fired-once latch.
    crash: Option<CrashSpec>,
    crash_fired: AtomicBool,
    /// Spawn parameters reused by supervisor respawns.
    params: DrainerParams,
    /// Live drainer join handles. Shared (not on `DispatchPlane`) so the
    /// supervisor can push respawned seats; drained once at shutdown
    /// after the supervisor has been joined.
    handles: Mutex<Vec<JoinHandle<PlaneStats>>>,
    /// Kernel process charged for the shutdown safety-net sweep.
    reaper_pid: Pid,
}

impl PlaneShared {
    /// Wake the drainers if any might be parked (unpark on a running
    /// thread is a stored permit, so overshooting is safe, just not
    /// free).
    fn wake(&self) {
        if self.idle.load(Ordering::Acquire) == 0 {
            return;
        }
        for t in self.sleepers.read().iter() {
            t.unpark();
        }
    }

    /// Tell the registered completion consumer (if any) that new
    /// completions were pushed.
    fn notify_completions(&self) {
        if let Some(hook) = self.completion_hook.read().as_ref() {
            hook();
        }
    }
}

/// A running dispatch plane. Dropping it without calling
/// [`DispatchPlane::shutdown`] also stops and joins the drainers.
pub struct DispatchPlane {
    shared: Arc<PlaneShared>,
    session_budget: usize,
    ring: RingPairConfig,
    supervisor: Option<JoinHandle<()>>,
    joined: bool,
}

impl std::fmt::Debug for DispatchPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DispatchPlane")
            .field("drainers", &self.shared.handles.lock().len())
            .field("attached", &self.shared.set.len())
            .field("multi_tenant", &self.shared.sched.is_some())
            .finish()
    }
}

impl DispatchPlane {
    /// Start a plane over `kernel`: spawn `cfg.drainers` drainer threads,
    /// each backed by a root-credentialled kernel process named
    /// `plane-drainer<i>` that the sweep's amortised fixed cost is
    /// charged to.
    pub fn start(kernel: Arc<Kernel>, cfg: PlaneConfig) -> SysResult<DispatchPlane> {
        let set = if cfg.arena_bytes > 0 {
            let arena = ArgArena::with_metrics(cfg.arena_bytes, Arc::clone(&kernel.metrics.arena));
            RingSet::with_arena(cfg.slots, arena, cfg.arena_bytes)
        } else {
            RingSet::with_capacity(cfg.slots)
        };
        let set = Arc::new(set);
        let n = cfg.drainers.max(1);
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let sched = cfg
            .qos
            .as_ref()
            .map(|p| Arc::new(SweepScheduler::new(p.clone())));
        let monitor = cfg.health.map(|h| Arc::new(HealthMonitor::new(h.deadline)));
        let ledgers = (0..n).map(|_| Arc::new(set.claim_ledger())).collect();
        // The reaper process exists for one job: charging the shutdown
        // safety-net sweep somewhere real if the drainers can no longer
        // run it (e.g. an unrecovered crash drill).
        let reaper_pid =
            kernel.spawn_process("plane-reaper", Credential::root(), vec![0x90; 4096], 2, 2)?;
        let shared = Arc::new(PlaneShared {
            kernel: Arc::clone(&kernel),
            set,
            stop: AtomicBool::new(false),
            completion_hook: RwLock::new(None),
            sleepers: RwLock::new(Vec::new()),
            idle: AtomicUsize::new(0),
            sched,
            monitor: monitor.clone(),
            ledgers: RwLock::new(ledgers),
            crash: cfg.crash,
            crash_fired: AtomicBool::new(false),
            params: DrainerParams {
                session_budget: cfg.session_budget,
                park_timeout: cfg.park_timeout,
                pin_drainers: cfg.pin_drainers,
                cores,
                heartbeat_slack: cfg.health.map(|h| (h.deadline / 2).max(MIN_PARK)),
            },
            handles: Mutex::new(Vec::new()),
            reaper_pid,
        });
        for seat in 0..n {
            let heartbeat = monitor.as_ref().map(|m| m.register().1);
            let handle = spawn_drainer(&shared, seat, 0, heartbeat)?;
            shared.handles.lock().push(handle);
        }
        *shared.sleepers.write() = shared
            .handles
            .lock()
            .iter()
            .map(|h| h.thread().clone())
            .collect();
        let supervisor = match (&monitor, cfg.health) {
            (Some(monitor), Some(health)) => {
                let shared = Arc::clone(&shared);
                let monitor = Arc::clone(monitor);
                Some(
                    std::thread::Builder::new()
                        .name("smod-plane-supervisor".into())
                        .spawn(move || supervisor_loop(&shared, &monitor, health.check_interval))
                        .expect("spawn plane supervisor thread"),
                )
            }
            _ => None,
        };
        Ok(DispatchPlane {
            shared,
            session_budget: cfg.session_budget,
            ring: cfg.ring,
            supervisor,
            joined: false,
        })
    }

    /// Attach a client's established session: register its ring pair in
    /// the plane's set and hand back the producer-side [`PlaneHandle`].
    /// `EPERM` without a session, `EINVAL` before the handshake
    /// completes, `ENOMEM` when every slot is taken. The attachment
    /// lands in [`TenantId::DEFAULT`]; multi-tenant callers use
    /// [`DispatchPlane::attach_tenant`].
    pub fn attach(&self, client: Pid) -> SysResult<PlaneHandle> {
        self.attach_tenant(client, TenantId::DEFAULT)
    }

    /// [`DispatchPlane::attach`], with the slot tagged for `tenant` so
    /// the QoS sweep schedules it under that tenant's weight. On a plane
    /// without a QoS policy the tag is carried but ignored.
    pub fn attach_tenant(&self, client: Pid, tenant: TenantId) -> SysResult<PlaneHandle> {
        let session = self.shared.kernel.session_of(client).ok_or(Errno::EPERM)?;
        if session.state() != SessionState::Established {
            return Err(Errno::EINVAL);
        }
        let slot = self
            .shared
            .set
            .register_for_tenant(session.id.0, client.0, tenant.0, self.ring)
            .ok_or(Errno::ENOMEM)?;
        let rings = self.shared.set.get(slot).expect("freshly registered slot");
        Ok(PlaneHandle {
            shared: Arc::clone(&self.shared),
            slot,
            rings,
        })
    }

    /// Entries drained per session per sweep.
    pub fn session_budget(&self) -> usize {
        self.session_budget
    }

    /// The plane's shared ring set. A completion consumer (the async
    /// frontend's reactor) holds this to sweep the completion bitmap;
    /// everything else should go through [`DispatchPlane::attach`].
    pub fn ring_set(&self) -> Arc<RingSet> {
        Arc::clone(&self.shared.set)
    }

    /// The kernel this plane dispatches into.
    pub fn kernel(&self) -> Arc<Kernel> {
        Arc::clone(&self.shared.kernel)
    }

    /// Register the completion-notification hook: called by a drainer
    /// after every sweep that pushed completions, and once more at
    /// shutdown. At most one consumer; registering again replaces the
    /// previous hook. The hook runs on drainer threads — it must be
    /// cheap and must not block (an unpark, a condvar signal).
    pub fn on_completions(&self, hook: Arc<dyn Fn() + Send + Sync>) {
        *self.shared.completion_hook.write() = Some(hook);
    }

    /// Currently attached sessions.
    pub fn attached(&self) -> usize {
        self.shared.set.len()
    }

    /// The QoS scheduler, when the plane was started with a policy.
    /// Scenarios and reports read per-tenant lanes through
    /// [`SweepScheduler::metrics`].
    pub fn scheduler(&self) -> Option<Arc<SweepScheduler>> {
        self.shared.sched.clone()
    }

    /// The drainer health monitor, when armed.
    pub fn health_monitor(&self) -> Option<Arc<HealthMonitor>> {
        self.shared.monitor.clone()
    }

    /// Whether the armed [`CrashSpec`] has fired (always `false` without
    /// one). Crash drills poll this to know the victim is down before
    /// asserting on recovery.
    pub fn crash_fired(&self) -> bool {
        self.shared.crash_fired.load(Ordering::Acquire)
    }

    /// Stop the drainers (after one final forced sweep of every attached
    /// slot), join them, and return their aggregate stats.
    pub fn shutdown(mut self) -> PlaneStats {
        self.stop_and_join()
    }

    fn stop_and_join(&mut self) -> PlaneStats {
        self.joined = true;
        self.shared.stop.store(true, Ordering::Release);
        self.shared.set.mark_all_ready();
        self.shared.wake();
        // Supervisor first: once it is joined, no respawn can race the
        // handle drain below.
        if let Some(sup) = self.supervisor.take() {
            sup.thread().unpark();
            sup.join().expect("plane supervisor panicked");
        }
        let mut stats = PlaneStats::default();
        loop {
            let handle = self.shared.handles.lock().pop();
            let Some(handle) = handle else { break };
            stats.merge(&handle.join().expect("plane drainer panicked"));
        }
        // Safety net: hand back anything a dead drainer still held
        // claimed (a crash the supervisor never saw — not armed, or the
        // plane stopped inside the detection window), then sweep the set
        // dry inline since no drainer remains to do it. QoS planes take
        // the inline pass unconditionally: their final sweeps may have
        // *deferred* over-budget slots that a plain sweep must now
        // finish.
        let mut reclaimed = 0;
        for ledger in self.shared.ledgers.read().iter() {
            reclaimed += self.shared.set.reclaim(ledger);
        }
        stats.reclaimed += reclaimed as u64;
        if reclaimed > 0 || self.shared.sched.is_some() {
            while let Ok(report) = self.shared.kernel.sys_smod_sweep(
                self.shared.reaper_pid,
                &self.shared.set,
                self.shared.params.session_budget.max(1),
            ) {
                let drained = report.drained;
                stats.absorb(&report);
                if drained == 0 {
                    break;
                }
            }
        }
        if let Some(monitor) = &self.shared.monitor {
            stats.drainer_restarts += monitor.restarts.get();
            stats.reclaimed += monitor.reclaimed.get();
        }
        // One final notification after the last drainer exits: whatever
        // the shutdown sweeps completed is now visible, and a consumer
        // parked on the hook must not sleep through it.
        self.shared.notify_completions();
        stats
    }
}

impl Drop for DispatchPlane {
    fn drop(&mut self) {
        if !self.joined {
            self.stop_and_join();
        }
    }
}

/// Spawn the drainer for `seat` (generation 0 at plane start; respawns
/// carry the supervisor's restart generation in the process name so the
/// cost model attributes each incarnation separately).
fn spawn_drainer(
    shared: &Arc<PlaneShared>,
    seat: usize,
    generation: u64,
    heartbeat: Option<Heartbeat>,
) -> SysResult<JoinHandle<PlaneStats>> {
    let name = if generation == 0 {
        format!("plane-drainer{seat}")
    } else {
        format!("plane-drainer{seat}r{generation}")
    };
    let pid = shared
        .kernel
        .spawn_process(&name, Credential::root(), vec![0x90; 4096], 2, 2)?;
    let ctx = DrainerCtx {
        pid,
        seat,
        heartbeat,
        ledger: Arc::clone(&shared.ledgers.read()[seat]),
        pin_core: shared
            .params
            .pin_drainers
            .then_some(seat % shared.params.cores),
    };
    let shared = Arc::clone(shared);
    Ok(std::thread::Builder::new()
        .name(format!("smod-drainer{seat}"))
        .spawn(move || drainer_loop(&shared, ctx))
        .expect("spawn plane drainer thread"))
}

/// Everything one drainer incarnation owns.
struct DrainerCtx {
    pid: Pid,
    seat: usize,
    heartbeat: Option<Heartbeat>,
    ledger: Arc<ClaimLedger>,
    pin_core: Option<usize>,
}

fn drainer_loop(shared: &PlaneShared, ctx: DrainerCtx) -> PlaneStats {
    if let Some(core) = ctx.pin_core {
        // Best-effort: a refused mask (container cpuset, non-Linux) just
        // leaves the drainer migratable, exactly as before pinning existed.
        let _ = affinity::pin_to_core(core);
    }
    // With a monitor armed, the park is clamped to half the deadline so
    // an idle drainer always wakes to beat well before it reads Suspect.
    let park_timeout = match shared.params.heartbeat_slack {
        Some(slack) => shared.params.park_timeout.min(slack),
        None => shared.params.park_timeout,
    };
    let mut stats = PlaneStats::default();
    loop {
        if let Some(hb) = &ctx.heartbeat {
            hb.beat();
        }
        // The fault drill: claim ready work exactly like a real sweep
        // would, then die holding it. Only fires against actual ready
        // work — a crash that strands nothing exercises nothing — and
        // only once per plane, so the respawned seat does not re-die.
        if let Some(crash) = shared.crash {
            if crash.drainer == ctx.seat
                && stats.sweeps >= crash.after_sweeps
                && !shared.crash_fired.load(Ordering::Acquire)
            {
                let stranded = shared.set.claim_for_crash(&ctx.ledger);
                if stranded > 0 {
                    shared.crash_fired.store(true, Ordering::Release);
                    return stats;
                }
            }
        }
        // Sweep until stopped; `Err` means the drainer's own process
        // vanished (kernel torn down around the plane) — nothing left to
        // do either way.
        let report = match &shared.sched {
            Some(sched) => shared.kernel.sys_smod_sweep_qos(
                ctx.pid,
                &shared.set,
                sched,
                &ctx.ledger,
                shared.params.session_budget,
            ),
            None => {
                shared
                    .kernel
                    .sys_smod_sweep(ctx.pid, &shared.set, shared.params.session_budget)
            }
        };
        let Ok(report) = report else { break };
        stats.absorb(&report);
        if report.drained > 0 {
            // Completions were pushed (the sweep also flagged the
            // completion bitmap): wake the registered consumer.
            shared.notify_completions();
        }
        // Progress = entries answered. A sweep that visited slots but
        // drained nothing (e.g. a producer stopped reaping and its full
        // completion ring keeps its slot perpetually "ready") must fall
        // through to the park below — spinning on a no-progress sweep
        // would peg a core without serving anyone.
        if report.drained > 0 {
            continue;
        }
        // Post-stop, a no-progress sweep means the set is as dry as it
        // can get (the shutdown path force-flagged every slot first):
        // exit even if unserviceable ready bits remain. (A QoS sweep may
        // still be *deferring* over-budget slots here; the shutdown path
        // finishes those with its inline plain sweep.)
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        // Announce the park *before* parking: a producer that submits
        // after reading idle == 0 raced a drainer still mid-sweep; one
        // that reads idle > 0 unparks us (stored permit — a park after
        // the unpark returns immediately). The timeout backstops the
        // remaining window and paces retries on unserviceable slots.
        shared.idle.fetch_add(1, Ordering::AcqRel);
        shared.kernel.metrics.drainer_parks.incr();
        std::thread::park_timeout(park_timeout);
        shared.kernel.metrics.drainer_unparks.incr();
        shared.idle.fetch_sub(1, Ordering::AcqRel);
    }
    stats
}

/// The supervisor: poll the monitor every `check_interval`, and for each
/// seat newly judged dead, reclaim its ledger's stranded claims back
/// into the readiness bitmap and respawn the seat.
fn supervisor_loop(
    shared: &Arc<PlaneShared>,
    monitor: &Arc<HealthMonitor>,
    check_interval: Duration,
) {
    while !shared.stop.load(Ordering::Acquire) {
        std::thread::park_timeout(check_interval.max(MIN_PARK));
        for seat in monitor.take_dead() {
            // Swap the corpse's ledger out of service first, so the
            // replacement never shares it, then hand its claimed bits
            // back. Safe to reclaim: a Dead verdict means two missed
            // deadlines — the corpse is not mid-drain, it is gone.
            let stale = {
                let mut ledgers = shared.ledgers.write();
                std::mem::replace(&mut ledgers[seat], Arc::new(shared.set.claim_ledger()))
            };
            let reclaimed = shared.set.reclaim(&stale);
            monitor.reclaimed.add(reclaimed as u64);
            let Some(heartbeat) = monitor.revive(seat) else {
                continue;
            };
            let generation = monitor.restarts.get() + 1;
            // A spawn failure means the kernel was torn down around the
            // plane: no process table to respawn into, and shutdown will
            // reclaim whatever remains.
            if let Ok(handle) = spawn_drainer(shared, seat, generation, Some(heartbeat)) {
                shared.sleepers.write()[seat] = handle.thread().clone();
                shared.handles.lock().push(handle);
                monitor.restarts.incr();
                // The respawned seat must see the reclaimed work.
                shared.wake();
            }
        }
    }
}

/// A producer's attachment to the plane: submit and reap without ever
/// trapping. Dropping the handle detaches the slot from the set (any
/// unreaped completions are dropped with the rings once the last `Arc`
/// goes away).
pub struct PlaneHandle {
    shared: Arc<PlaneShared>,
    slot: RingSlotId,
    rings: Arc<SessionRings>,
}

impl std::fmt::Debug for PlaneHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlaneHandle")
            .field("slot", &self.slot)
            .field("session", &self.rings.session)
            .finish()
    }
}

impl PlaneHandle {
    /// Submit one call: push into the submission ring (the session id is
    /// filled in from the attachment), flag readiness, and wake a
    /// drainer.
    ///
    /// The backpressure contract: [`SubmitError::Full`] means the
    /// submission ring has no free slot *right now*, but the slot is
    /// already flagged and the drainers are awake, so space is guaranteed
    /// to reappear as the in-flight entries complete — reap, yield and
    /// retry. [`SubmitError::Detached`] means the plane has shut down:
    /// no drainer will ever run again and retrying is useless.
    pub fn submit(&self, proc_id: u32, user_data: u64, args: Vec<u8>) -> Result<(), SubmitError> {
        // Large payloads go through the session's arena region (when the
        // plane has one): the ring slot then carries a 12-byte descriptor
        // and the kernel reads the bytes in place. Quota exhaustion falls
        // back to by-value transparently.
        let args = ArgRef::place_vec(args, self.rings.arena.as_ref());
        let req = SmodCallReq {
            session: self.rings.session,
            proc_id,
            user_data,
            args,
        };
        if self.shared.stop.load(Ordering::Acquire) {
            return Err(SubmitError::Detached(req));
        }
        let outcome = self.rings.sq.push(req);
        self.shared.set.mark_ready(self.slot);
        self.shared.wake();
        if outcome.is_err() {
            self.shared.kernel.metrics.ring_full_bounces.incr();
        }
        outcome.map_err(SubmitError::Full)
    }

    /// Begin a coalesced submission batch. Entries pushed through the
    /// returned guard land in the submission ring immediately, but the
    /// doorbell — the readiness bit plus the drainer unpark — rings once
    /// per batch instead of once per entry: at [`SubmitBatch::flush`],
    /// when the guard drops, or on the first bounce. A parked drainer is
    /// woken at most once per flush, so a producer batching N entries
    /// pays one `mark_ready` + one `unpark` where N calls to
    /// [`PlaneHandle::submit`] paid N of each.
    pub fn batch(&self) -> SubmitBatch<'_> {
        SubmitBatch {
            handle: self,
            pending: 0,
        }
    }

    /// Submit `calls` (`(proc_id, user_data, args)`) with a single
    /// doorbell, returning how many entries were accepted.
    ///
    /// `Ok(n)` with `n < calls.len()` means entry `n` bounced off a full
    /// submission ring: the doorbell has already rung for the accepted
    /// prefix (the `Full` contract — space reappears as they complete),
    /// so reap and retry `calls[n..]`. Exactly one `ring_full_bounces`
    /// tick is recorded per bounce event, not per unsubmitted entry.
    /// `Err` is only ever [`SubmitError::Detached`]: the plane has shut
    /// down and the remaining entries will never be accepted.
    pub fn submit_many(&self, calls: &[(u32, u64, &[u8])]) -> Result<usize, SubmitError> {
        let mut batch = self.batch();
        for (accepted, (proc_id, user_data, args)) in calls.iter().enumerate() {
            match batch.push(*proc_id, *user_data, args.to_vec()) {
                Ok(()) => {}
                // `push` already flushed the accepted prefix.
                Err(SubmitError::Full(_)) => return Ok(accepted),
                Err(err) => return Err(err),
            }
        }
        batch.flush();
        Ok(calls.len())
    }

    /// Pop one completion, if any. Each reaped completion's simulated
    /// cost lands in the plane-flavor latency histogram — the latency a
    /// producer *observes* through the plane, as opposed to the
    /// sweep-flavor records the drainers make while producing it.
    pub fn reap(&self) -> Option<SmodCallResp> {
        let resp = self.rings.cq.pop();
        if let Some(resp) = &resp {
            if resp.cost_ns > 0 {
                self.shared
                    .kernel
                    .metrics
                    .record_latency(Flavor::Plane, resp.cost_ns);
            }
        }
        resp
    }

    /// Entries currently queued for dispatch (approximate).
    pub fn pending(&self) -> usize {
        self.rings.sq.len()
    }

    /// This attachment's slot in the plane's ring set.
    pub fn slot(&self) -> RingSlotId {
        self.slot
    }

    /// The attachment's shared ring pair (the async frontend reaps the
    /// completion ring through this without going via the set).
    pub fn rings(&self) -> &Arc<SessionRings> {
        &self.rings
    }

    /// The raw pid of the client this handle was attached for.
    pub fn owner(&self) -> u32 {
        self.rings.owner
    }

    /// Allocate the next per-session `user_data` cookie (see
    /// [`SessionRings::alloc_user_data`]).
    pub fn alloc_user_data(&self) -> u64 {
        self.rings.alloc_user_data()
    }
}

impl Drop for PlaneHandle {
    fn drop(&mut self) {
        self.shared.set.deregister(self.slot);
    }
}

/// A producer-local submission batch (see [`PlaneHandle::batch`]): pushes
/// go straight into the submission ring, the doorbell rings once.
///
/// The flush guarantee: every accepted entry is made visible to the
/// drainers no later than the guard's drop — a batch can delay the
/// doorbell, never lose it. Bounces flush eagerly so the standard `Full`
/// contract (slot flagged, drainer awake, space guaranteed to reappear)
/// holds at the moment the caller sees the error.
pub struct SubmitBatch<'a> {
    handle: &'a PlaneHandle,
    /// Entries pushed since the last doorbell.
    pending: usize,
}

impl std::fmt::Debug for SubmitBatch<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubmitBatch")
            .field("slot", &self.handle.slot)
            .field("pending", &self.pending)
            .finish()
    }
}

impl SubmitBatch<'_> {
    /// Push one call into the submission ring *without* ringing the
    /// doorbell. Placement (inline vs. arena) and the session id work
    /// exactly like [`PlaneHandle::submit`]; only the wakeup is deferred.
    ///
    /// On [`SubmitError::Full`] the accepted prefix is flushed first
    /// (drainers are already making space when the caller sees the
    /// bounce) and one `ring_full_bounces` tick is recorded. On
    /// [`SubmitError::Detached`] the prefix is also flushed — the
    /// shutdown sweep drains whatever was accepted.
    pub fn push(&mut self, proc_id: u32, user_data: u64, args: Vec<u8>) -> Result<(), SubmitError> {
        let args = ArgRef::place_vec(args, self.handle.rings.arena.as_ref());
        let req = SmodCallReq {
            session: self.handle.rings.session,
            proc_id,
            user_data,
            args,
        };
        if self.handle.shared.stop.load(Ordering::Acquire) {
            self.flush();
            return Err(SubmitError::Detached(req));
        }
        match self.handle.rings.sq.push(req) {
            Ok(()) => {
                self.pending += 1;
                Ok(())
            }
            Err(req) => {
                // Ring the doorbell even if nothing is pending: the ring
                // being full means in-flight work this drain will clear.
                self.pending = 0;
                self.handle.shared.set.mark_ready(self.handle.slot);
                self.handle.shared.wake();
                self.handle.shared.kernel.metrics.ring_full_bounces.incr();
                Err(SubmitError::Full(req))
            }
        }
    }

    /// Entries accepted since the last doorbell.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Ring the doorbell for everything pushed since the last flush:
    /// one readiness bit, at most one drainer unpark. Returns how many
    /// entries the flush covered (0 = no-op, no wakeup).
    pub fn flush(&mut self) -> usize {
        let n = std::mem::take(&mut self.pending);
        if n > 0 {
            self.handle.shared.set.mark_ready(self.handle.slot);
            self.handle.shared.wake();
        }
        n
    }
}

impl Drop for SubmitBatch<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

impl Dispatcher for PlaneHandle {
    fn dispatch_one(&self, client: Pid, proc_id: u32, args: &[u8]) -> DispatchOutcome {
        self.dispatch_batch(
            client,
            std::slice::from_ref(&DispatchCall::new(proc_id, args)),
        )?
        .pop()
        .expect("one outcome per call")
    }

    /// Submit the whole batch through the ring (absorbing `Full`
    /// backpressure by reaping while retrying — the contract says space
    /// reappears), then wait for every completion.
    ///
    /// Exclusivity: a handle being driven through `Dispatcher` must not
    /// be concurrently driven through raw `submit`/`reap`, or completions
    /// will be claimed by the wrong waiter. (The async frontend builds
    /// its own routing on raw handles precisely to lift this limit.)
    fn dispatch_batch(
        &self,
        client: Pid,
        calls: &[DispatchCall],
    ) -> Result<Vec<DispatchOutcome>, DispatchError> {
        if client.0 != self.rings.owner {
            return Err(Errno::EPERM.into());
        }
        if calls.is_empty() {
            return Ok(Vec::new());
        }
        let base = self.alloc_user_data();
        for _ in 1..calls.len() {
            self.alloc_user_data();
        }
        let mut outcomes: Vec<Option<DispatchOutcome>> = vec![None; calls.len()];
        let mut received = 0usize;
        let mut submitted = 0usize;
        let reap_one =
            |outcomes: &mut Vec<Option<DispatchOutcome>>, received: &mut usize| match self.reap() {
                Some(resp) => {
                    let idx = resp.user_data.wrapping_sub(base) as usize;
                    if idx < calls.len() && outcomes[idx].is_none() {
                        outcomes[idx] = Some(DispatchError::from_resp(resp));
                        *received += 1;
                    }
                    true
                }
                None => false,
            };
        while received < calls.len() {
            if submitted < calls.len() {
                // Coalesced: push as much of the remainder as fits, then
                // one doorbell for the whole burst.
                let mut batch = self.batch();
                while submitted < calls.len() {
                    let call = &calls[submitted];
                    match batch.push(call.proc_id, base + submitted as u64, call.args.clone()) {
                        Ok(()) => submitted += 1,
                        // The bounce already flushed; reap below, retry.
                        Err(SubmitError::Full(_)) => break,
                        Err(SubmitError::Detached(_)) => {
                            // Plane stopped before the rest went in; what
                            // was already submitted still completes (the
                            // shutdown sweep drains the set dry).
                            for slot in outcomes.iter_mut().skip(submitted) {
                                *slot = Some(Err(DispatchError::Detached));
                                received += 1;
                            }
                            submitted = calls.len();
                        }
                    }
                }
                batch.flush();
            }
            if reap_one(&mut outcomes, &mut received) {
                continue;
            }
            if self.shared.stop.load(Ordering::Acquire) {
                // The plane may already be past its final sweep: force the
                // leftovers through ourselves (one teardown-only trap on
                // the producer), then drain what it produced.
                let budget = self.rings.sq.len().max(1);
                let swept = self.shared.kernel.sys_smod_sweep(
                    Pid(self.rings.owner),
                    &self.shared.set,
                    budget,
                );
                let progressed = reap_one(&mut outcomes, &mut received);
                if swept.is_err() && !progressed {
                    // Even the fallback cannot run (client gone): the
                    // outstanding entries will never be answered.
                    for slot in outcomes.iter_mut() {
                        if slot.is_none() {
                            *slot = Some(Err(DispatchError::Detached));
                            received += 1;
                        }
                    }
                }
            } else {
                std::thread::yield_now();
            }
        }
        Ok(outcomes
            .into_iter()
            .map(|o| o.expect("all outcomes filled"))
            .collect())
    }

    fn capabilities(&self) -> DispatchCaps {
        DispatchCaps {
            flavor: "plane",
            batched: true,
            trap_free: true,
            asynchronous: false,
        }
    }

    fn metrics(&self) -> Option<&DispatchMetrics> {
        Some(&self.shared.kernel.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::tests::kernel_with_clients;

    fn plane_fixture(
        n_clients: usize,
        drainers: usize,
    ) -> (Arc<Kernel>, DispatchPlane, Vec<Pid>, u32) {
        let (k, _m, clients, incr) = kernel_with_clients(None, n_clients);
        let kernel = Arc::new(k);
        let plane = DispatchPlane::start(
            Arc::clone(&kernel),
            PlaneConfig {
                drainers,
                ..PlaneConfig::default()
            },
        )
        .unwrap();
        (kernel, plane, clients, incr)
    }

    #[test]
    fn producers_dispatch_without_ever_trapping() {
        const PER_PRODUCER: u64 = 500;
        let (kernel, plane, clients, incr) = plane_fixture(4, 2);
        let handles: Vec<PlaneHandle> = clients.iter().map(|&c| plane.attach(c).unwrap()).collect();
        std::thread::scope(|s| {
            for handle in &handles {
                s.spawn(move || {
                    let mut received = 0u64;
                    let mut sent = 0u64;
                    let mut sum = 0u64;
                    while received < PER_PRODUCER {
                        if sent < PER_PRODUCER
                            && handle
                                .submit(incr, sent, sent.to_le_bytes().to_vec())
                                .is_ok()
                        {
                            sent += 1;
                        }
                        while let Some(resp) = handle.reap() {
                            assert!(resp.is_ok());
                            sum += u64::from_le_bytes(resp.into_ret().try_into().unwrap());
                            received += 1;
                        }
                    }
                    // Σ (i + 1) for i in 0..N
                    assert_eq!(sum, PER_PRODUCER * (PER_PRODUCER + 1) / 2);
                });
            }
        });
        drop(handles);
        let stats = plane.shutdown();
        assert_eq!(stats.drained, 4 * PER_PRODUCER);
        assert_eq!(stats.completed, 4 * PER_PRODUCER);
        assert_eq!(stats.failed, 0);
        // The producers' processes never paid a trap: every simulated cost
        // on their pids came from the drained entries (policy/copy/body),
        // all charged under the drainers' sweeps. The drainer processes
        // carry the fixed costs.
        for i in 0..2 {
            let drainer_ns = kernel
                .procs
                .with(
                    kernel
                        .procs
                        .pids()
                        .into_iter()
                        .find(|p| {
                            kernel
                                .procs
                                .with(*p, |proc_| proc_.name == format!("plane-drainer{i}"))
                                .unwrap_or(false)
                        })
                        .expect("drainer process exists"),
                    |p| p.cpu_time_ns,
                )
                .unwrap();
            assert!(drainer_ns > 0, "drainer {i} never charged a sweep");
        }
    }

    #[test]
    fn attach_validates_sessions_and_capacity() {
        let (kernel, plane, clients, _incr) = plane_fixture(1, 1);
        // No session at all.
        let loner = kernel
            .spawn_process("loner", Credential::user(5, 5), vec![0x90; 4096], 2, 2)
            .unwrap();
        assert_eq!(plane.attach(loner).unwrap_err(), Errno::EPERM);
        // Attach, fill the (64-slot) set, and overflow it.
        let handle = plane.attach(clients[0]).unwrap();
        let mut extras = Vec::new();
        loop {
            match plane.attach(clients[0]) {
                Ok(h) => extras.push(h),
                Err(e) => {
                    assert_eq!(e, Errno::ENOMEM);
                    break;
                }
            }
        }
        assert_eq!(plane.attached(), 64);
        drop(extras);
        assert_eq!(plane.attached(), 1, "dropping handles frees slots");
        drop(handle);
        assert_eq!(plane.attached(), 0);
    }

    #[test]
    fn shutdown_drains_work_submitted_but_not_yet_swept() {
        let (_kernel, plane, clients, incr) = plane_fixture(1, 1);
        let handle = plane.attach(clients[0]).unwrap();
        for i in 0..32u64 {
            handle.submit(incr, i, i.to_le_bytes().to_vec()).unwrap();
        }
        let stats = plane.shutdown();
        assert_eq!(stats.completed, 32, "shutdown must sweep the set dry");
        for i in 0..32u64 {
            let resp = handle.reap().expect("completion after shutdown");
            assert_eq!(resp.user_data, i);
            assert!(resp.is_ok());
        }
        // Post-shutdown submission is teardown, not backpressure.
        match handle.submit(incr, 99, Vec::new()) {
            Err(SubmitError::Detached(req)) => assert_eq!(req.user_data, 99),
            other => panic!("expected Detached after shutdown, got {other:?}"),
        }
    }

    #[test]
    fn batched_submission_defers_the_doorbell_until_flush() {
        let (_kernel, plane, clients, incr) = plane_fixture(1, 1);
        let handle = plane.attach(clients[0]).unwrap();
        let set = plane.ring_set();
        let mut batch = handle.batch();
        for i in 0..8u64 {
            batch.push(incr, i, i.to_le_bytes().to_vec()).unwrap();
        }
        assert_eq!(batch.pending(), 8);
        assert!(
            !set.any_ready(),
            "entries must stay invisible to the sweep until the doorbell"
        );
        assert_eq!(batch.flush(), 8);
        assert_eq!(batch.flush(), 0, "an empty flush is a no-op");
        drop(batch);
        let mut sum = 0u64;
        let mut received = 0;
        while received < 8 {
            while let Some(resp) = handle.reap() {
                assert!(resp.is_ok());
                sum += u64::from_le_bytes(resp.into_ret().try_into().unwrap());
                received += 1;
            }
            std::thread::yield_now();
        }
        // Σ (i + 1) for i in 0..8
        assert_eq!(sum, 36);
    }

    #[test]
    fn dropping_a_batch_flushes_the_doorbell() {
        let (_kernel, plane, clients, incr) = plane_fixture(1, 1);
        let handle = plane.attach(clients[0]).unwrap();
        {
            let mut batch = handle.batch();
            for i in 0..4u64 {
                batch.push(incr, i, i.to_le_bytes().to_vec()).unwrap();
            }
            // No explicit flush: the drop guarantee must deliver.
        }
        let mut received = 0;
        while received < 4 {
            while let Some(resp) = handle.reap() {
                assert!(resp.is_ok());
                received += 1;
            }
            std::thread::yield_now();
        }
    }

    #[test]
    fn submit_many_counts_one_bounce_per_full_event() {
        // A 4-deep submission ring with the doorbell deferred: the whole
        // prefix fits silently, the first overflow flushes and bounces.
        let (k, _m, clients, incr) = kernel_with_clients(None, 1);
        let kernel = Arc::new(k);
        let plane = DispatchPlane::start(
            Arc::clone(&kernel),
            PlaneConfig {
                drainers: 1,
                ring: secmod_ring::RingPairConfig {
                    submission: 4,
                    completion: 64,
                },
                ..PlaneConfig::default()
            },
        )
        .unwrap();
        let handle = plane.attach(clients[0]).unwrap();
        let payloads: Vec<Vec<u8>> = (0..6u64).map(|i| i.to_le_bytes().to_vec()).collect();
        let calls: Vec<(u32, u64, &[u8])> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| (incr, i as u64, p.as_slice()))
            .collect();
        let bounces0 = kernel.metrics.ring_full_bounces.get();
        let accepted = handle.submit_many(&calls).unwrap();
        assert!(
            accepted < calls.len(),
            "a 4-deep ring cannot take 6 entries in one batch"
        );
        assert_eq!(
            kernel.metrics.ring_full_bounces.get(),
            bounces0 + 1,
            "one bounce event, not one per rejected entry"
        );
        // The Full contract: the bounce rang the doorbell, so space
        // reappears — reap and resubmit the remainder.
        let mut done = accepted;
        let mut received = 0;
        let mut sum = 0u64;
        while received < calls.len() {
            if done < calls.len() {
                if let Ok(n) = handle.submit_many(&calls[done..]) {
                    done += n;
                }
            }
            while let Some(resp) = handle.reap() {
                assert!(resp.is_ok());
                sum += u64::from_le_bytes(resp.into_ret().try_into().unwrap());
                received += 1;
            }
            std::thread::yield_now();
        }
        // Σ (i + 1) for i in 0..6
        assert_eq!(sum, 21);
        plane.shutdown();
    }

    #[test]
    fn completion_hook_fires_on_drain_and_shutdown() {
        let (_kernel, plane, clients, incr) = plane_fixture(1, 1);
        let fired = Arc::new(AtomicUsize::new(0));
        {
            let fired = Arc::clone(&fired);
            plane.on_completions(Arc::new(move || {
                fired.fetch_add(1, Ordering::AcqRel);
            }));
        }
        let handle = plane.attach(clients[0]).unwrap();
        handle.submit(incr, 0, 0u64.to_le_bytes().to_vec()).unwrap();
        // The drainer must notify once the completion lands.
        while handle.reap().is_none() {
            std::thread::yield_now();
        }
        while fired.load(Ordering::Acquire) == 0 {
            std::thread::yield_now();
        }
        let before_shutdown = fired.load(Ordering::Acquire);
        // The completion bitmap was flagged for the reactor's benefit.
        let set = plane.ring_set();
        assert!(set.any_completed());
        plane.shutdown();
        assert!(
            fired.load(Ordering::Acquire) > before_shutdown,
            "shutdown must fire the hook one final time"
        );
    }

    #[test]
    fn qos_plane_serves_every_tenant_and_fills_their_lanes() {
        use secmod_qos::TenantSpec;
        const PER_PRODUCER: u64 = 200;
        let (k, _m, clients, incr) = kernel_with_clients(None, 2);
        let kernel = Arc::new(k);
        let plane = DispatchPlane::start(
            Arc::clone(&kernel),
            PlaneConfig::builder()
                .drainers(2)
                .qos(QosPolicy::weighted_fair([
                    TenantSpec::new(1, 1),
                    TenantSpec::new(2, 1),
                ]))
                .build(),
        )
        .unwrap();
        let handles: Vec<PlaneHandle> = clients
            .iter()
            .zip([TenantId(1), TenantId(2)])
            .map(|(&c, t)| plane.attach_tenant(c, t).unwrap())
            .collect();
        std::thread::scope(|s| {
            for handle in &handles {
                s.spawn(move || {
                    let mut received = 0u64;
                    let mut sent = 0u64;
                    while received < PER_PRODUCER {
                        if sent < PER_PRODUCER
                            && handle
                                .submit(incr, sent, sent.to_le_bytes().to_vec())
                                .is_ok()
                        {
                            sent += 1;
                        }
                        while let Some(resp) = handle.reap() {
                            assert!(resp.is_ok());
                            received += 1;
                        }
                    }
                });
            }
        });
        let sched = plane.scheduler().expect("qos plane has a scheduler");
        drop(handles);
        let stats = plane.shutdown();
        assert_eq!(stats.completed, 2 * PER_PRODUCER);
        assert_eq!(stats.failed, 0);
        for tenant in [1u32, 2] {
            let lane = sched.metrics().lane(tenant);
            assert_eq!(
                lane.completed.get(),
                PER_PRODUCER,
                "tenant{tenant} lane under-counts"
            );
            assert!(lane.drained.get() >= PER_PRODUCER);
        }
    }

    #[test]
    fn crashed_drainer_is_reclaimed_respawned_and_no_entry_is_lost() {
        const ENTRIES: u64 = 48;
        let (k, _m, clients, incr) = kernel_with_clients(None, 1);
        let kernel = Arc::new(k);
        let plane = DispatchPlane::start(
            Arc::clone(&kernel),
            PlaneConfig::builder()
                .drainers(1)
                .qos(QosPolicy::weighted_fair([]))
                .health(HealthConfig::with_deadline(Duration::from_millis(10)))
                .crash(CrashSpec {
                    drainer: 0,
                    after_sweeps: 0,
                })
                .build(),
        )
        .unwrap();
        let handle = plane.attach(clients[0]).unwrap();
        // The lone drainer dies on the first submission it sees (the
        // crash drill claims the ready bit and exits), so every reaped
        // completion below proves the supervisor reclaimed the claim and
        // respawned the seat.
        let mut seen = vec![false; ENTRIES as usize];
        let mut received = 0u64;
        let mut sent = 0u64;
        while received < ENTRIES {
            if sent < ENTRIES
                && handle
                    .submit(incr, sent, sent.to_le_bytes().to_vec())
                    .is_ok()
            {
                sent += 1;
            }
            while let Some(resp) = handle.reap() {
                assert!(resp.is_ok());
                let idx = resp.user_data as usize;
                assert!(!seen[idx], "entry {idx} completed twice");
                seen[idx] = true;
                received += 1;
            }
            std::thread::yield_now();
        }
        assert!(plane.crash_fired(), "the drill must have fired");
        let monitor = plane.health_monitor().expect("health is armed");
        assert!(monitor.restarts.get() >= 1, "seat never respawned");
        assert!(monitor.reclaimed.get() >= 1, "claims never reclaimed");
        drop(handle);
        let stats = plane.shutdown();
        assert!(seen.iter().all(|&s| s), "an entry was lost");
        assert_eq!(stats.completed, ENTRIES);
        assert!(stats.drainer_restarts >= 1);
        assert!(stats.reclaimed >= 1);
    }

    #[test]
    fn detached_session_surfaces_eidrm_through_the_plane() {
        let (kernel, plane, clients, incr) = plane_fixture(1, 1);
        let handle = plane.attach(clients[0]).unwrap();
        kernel.smod_detach(clients[0], "plane test").unwrap();
        handle.submit(incr, 7, 7u64.to_le_bytes().to_vec()).unwrap();
        let resp = loop {
            match handle.reap() {
                Some(resp) => break resp,
                None => std::thread::yield_now(),
            }
        };
        assert_eq!(resp.errno, Errno::EIDRM.code());
        assert_eq!(resp.user_data, 7);
        plane.shutdown();
    }
}
