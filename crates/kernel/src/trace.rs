//! Kernel event tracing.
//!
//! The tracer records the observable steps of the SecModule protocol so
//! integration tests can assert the exact initialisation sequence of the
//! paper's Figure 1 and the per-call sequence of Figure 3.
//!
//! The log is a *bounded* ring: once `capacity` events are held, each new
//! record evicts the oldest and bumps [`Tracer::dropped_events`]. A
//! long-running workload with tracing left on therefore costs a fixed
//! amount of memory instead of growing without limit, and the counter
//! says exactly how much history was lost.

use crate::proc::Pid;
use crate::smod::SessionId;
use parking_lot::Mutex;
use secmod_module::ModuleId;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};

/// Default bound on the event log (events, not bytes).
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// A kernel event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A module was registered (`sys_smod_add`).
    ModuleRegistered {
        /// The new module id.
        module: ModuleId,
        /// Module name.
        name: String,
    },
    /// A module was removed (`sys_smod_remove`).
    ModuleRemoved {
        /// The module id.
        module: ModuleId,
    },
    /// A client located a module (`sys_smod_find`) — Figure 1 step (1).
    ModuleFound {
        /// The requesting client.
        client: Pid,
        /// The module id found.
        module: ModuleId,
    },
    /// The kernel created a handle for a client (`sys_smod_start_session`)
    /// — Figure 1 step (2).
    SessionStarted {
        /// Session id.
        session: SessionId,
        /// Client pid.
        client: Pid,
        /// Newly created handle pid.
        handle: Pid,
        /// Module granted.
        module: ModuleId,
    },
    /// The handle reported ready and its address space was forcibly shared
    /// with the client (`sys_smod_session_info`) — Figure 1 step (3).
    HandleReady {
        /// Session id.
        session: SessionId,
        /// Number of map entries shared by `uvmspace_force_share`.
        shared_entries: usize,
    },
    /// The client completed the handshake (`sys_smod_handle_info`) —
    /// Figure 1 step (4).
    HandshakeComplete {
        /// Session id.
        session: SessionId,
    },
    /// A protected call was dispatched (`sys_smod_call`) — Figure 1 steps
    /// (5)–(8), Figure 3 steps (1)–(4).
    SmodCall {
        /// Session id.
        session: SessionId,
        /// Function id called.
        func_id: u32,
        /// Function symbol name.
        symbol: String,
        /// Whether the policy allowed the call.
        allowed: bool,
    },
    /// The session was torn down (client exit, execve, or module removal).
    SessionDetached {
        /// Session id.
        session: SessionId,
        /// Why it was detached.
        reason: String,
    },
    /// A ptrace attempt was denied because the target is part of an smod
    /// pair.
    PtraceDenied {
        /// Who attempted the trace.
        tracer: Pid,
        /// The process they tried to trace.
        target: Pid,
    },
    /// A crash occurred and the core dump was suppressed.
    CoreDumpSuppressed {
        /// The crashing process.
        pid: Pid,
    },
}

/// An in-memory, bounded event log.
///
/// Interior-mutable so the `&self` kernel syscall paths can record from
/// many threads: the enabled flag is an atomic checked before the log mutex
/// is touched, so disabled tracing (the benchmark configuration) costs one
/// relaxed load and takes no lock. When the ring is full the oldest event
/// is evicted and `dropped_events` is incremented — recording never blocks
/// on log growth and never allocates past the bound.
#[derive(Debug)]
pub struct Tracer {
    events: Mutex<VecDeque<Event>>,
    capacity: usize,
    dropped: AtomicU64,
    enabled: AtomicBool,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// Create an enabled tracer with the default bound
    /// ([`DEFAULT_TRACE_CAPACITY`] events).
    pub fn new() -> Tracer {
        Tracer::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Create an enabled tracer holding at most `capacity` events
    /// (min 1).
    pub fn with_capacity(capacity: usize) -> Tracer {
        let capacity = capacity.max(1);
        Tracer {
            events: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            dropped: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
        }
    }

    /// Enable or disable recording (disabled tracing is free).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Relaxed);
    }

    /// Is recording enabled? Callers building expensive event payloads
    /// (string clones on a hot path) check this first.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Relaxed)
    }

    /// The bound on retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many events have been evicted to make room for newer ones.
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Relaxed)
    }

    /// Record an event, evicting the oldest retained event if the ring
    /// is full.
    pub fn record(&self, event: Event) {
        if self.enabled.load(Relaxed) {
            let mut events = self.events.lock();
            if events.len() == self.capacity {
                events.pop_front();
                self.dropped.fetch_add(1, Relaxed);
            }
            events.push_back(event);
        }
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().iter().cloned().collect()
    }

    /// Clear the log (the dropped-events counter is reset too).
    pub fn clear(&self) {
        self.events.lock().clear();
        self.dropped.store(0, Relaxed);
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_clears() {
        let t = Tracer::new();
        assert!(t.is_empty());
        t.record(Event::ModuleFound {
            client: Pid(2),
            module: ModuleId(1),
        });
        t.record(Event::HandshakeComplete {
            session: SessionId(1),
        });
        assert_eq!(t.len(), 2);
        assert!(matches!(t.events()[0], Event::ModuleFound { .. }));
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        t.set_enabled(false);
        t.record(Event::ModuleRemoved {
            module: ModuleId(1),
        });
        assert!(t.is_empty());
        t.set_enabled(true);
        t.record(Event::ModuleRemoved {
            module: ModuleId(1),
        });
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn full_ring_drops_oldest_and_counts() {
        let t = Tracer::with_capacity(3);
        assert_eq!(t.capacity(), 3);
        for i in 0..5 {
            t.record(Event::ModuleRemoved {
                module: ModuleId(i),
            });
        }
        assert_eq!(t.len(), 3, "ring never exceeds its bound");
        assert_eq!(t.dropped_events(), 2);
        // The two oldest (ids 0, 1) were evicted; 2..5 remain in order.
        let ids: Vec<u32> = t
            .events()
            .iter()
            .map(|e| match e {
                Event::ModuleRemoved { module } => module.0,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(ids, vec![2, 3, 4]);
        t.clear();
        assert_eq!(t.dropped_events(), 0, "clear resets the drop counter");
    }
}
