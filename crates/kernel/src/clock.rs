//! The simulated clock.

use serde::{Deserialize, Serialize};

/// A nanosecond-resolution simulated clock.
///
/// The kernel charges every operation's modelled cost here; benchmarks that
/// run on the simulated backend read elapsed simulated time instead of wall
/// time, which makes them deterministic and lets the default cost model be
/// calibrated against the paper's 599 MHz Pentium III.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimClock {
    now_ns: u64,
}

impl SimClock {
    /// A clock starting at zero.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Advance the clock by `ns` nanoseconds.
    pub fn advance(&mut self, ns: u64) {
        self.now_ns = self.now_ns.saturating_add(ns);
    }

    /// Elapsed nanoseconds since `earlier`.
    pub fn since(&self, earlier_ns: u64) -> u64 {
        self.now_ns.saturating_sub(earlier_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut c = SimClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(100);
        c.advance(50);
        assert_eq!(c.now_ns(), 150);
        assert_eq!(c.since(100), 50);
        assert_eq!(c.since(1000), 0);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let mut c = SimClock::new();
        c.advance(u64::MAX);
        c.advance(10);
        assert_eq!(c.now_ns(), u64::MAX);
    }
}
