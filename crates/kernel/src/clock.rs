//! The simulated clock.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Number of independent counter stripes (power of two).
const STRIPES: usize = 16;

/// Map a hint (a pid, a session id) onto one of `buckets` stripes/shards
/// with a SplitMix-style multiply so consecutive ids spread across
/// distinct cache lines. Shared by the clock stripes, the striped
/// counters, and the process/session table shards so the spread function
/// only exists once. `buckets` must be a power of two ≤ 16 (the index is
/// taken from the top 4 bits of the product).
pub(crate) fn stripe_index(hint: u64, buckets: usize) -> usize {
    debug_assert!(buckets.is_power_of_two() && buckets <= 16);
    (hint.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 60) as usize & (buckets - 1)
}

/// A nanosecond-resolution simulated clock.
///
/// The kernel charges every operation's modelled cost here; benchmarks that
/// run on the simulated backend read elapsed simulated time instead of wall
/// time, which makes them deterministic and lets the default cost model be
/// calibrated against the paper's 599 MHz Pentium III.
///
/// The counter is **striped**: `advance` adds to one of [`STRIPES`]
/// independent atomics chosen by the caller's hint (the kernel passes the
/// charged pid), and `now_ns` sums the stripes. Concurrent `&self` syscall
/// paths therefore do not bounce a single cache line between cores on
/// every charge — the dominant scaling cost of a naive shared counter —
/// while total advanced time stays exact.
#[derive(Debug)]
pub struct SimClock {
    stripes: [AtomicU64; STRIPES],
}

impl Default for SimClock {
    fn default() -> Self {
        SimClock {
            stripes: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl SimClock {
    /// A clock starting at zero.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.stripes
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.load(Relaxed)))
    }

    /// Advance the clock by `ns` nanoseconds (stripe 0).
    pub fn advance(&self, ns: u64) {
        self.advance_striped(0, ns);
    }

    /// Advance the clock by `ns` nanoseconds on the stripe selected by
    /// `hint` (any per-thread-ish value — the kernel passes the pid being
    /// charged — so concurrent charges land on distinct cache lines).
    pub fn advance_striped(&self, hint: u64, ns: u64) {
        let stripe = &self.stripes[stripe_index(hint, STRIPES)];
        // Saturating add (fetch_add would wrap); contention on a stripe is
        // rare by construction, so the CAS loop is effectively one shot.
        let mut current = stripe.load(Relaxed);
        loop {
            let next = current.saturating_add(ns);
            match stripe.compare_exchange_weak(current, next, Relaxed, Relaxed) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Elapsed nanoseconds since `earlier`.
    pub fn since(&self, earlier_ns: u64) -> u64 {
        self.now_ns().saturating_sub(earlier_ns)
    }
}

/// A sum-on-read event counter striped across cache lines, for counts
/// bumped on the hot dispatch path from many threads at once (context
/// switches, per-module call statistics). Same idea as [`SimClock`]'s
/// stripes: the caller passes a hint (a pid) choosing the stripe, so
/// concurrent increments do not fight over one cache line; reads sum.
#[derive(Debug)]
pub struct StripedCounter {
    stripes: [AtomicU64; STRIPES],
}

impl Default for StripedCounter {
    fn default() -> Self {
        StripedCounter {
            stripes: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl StripedCounter {
    /// A counter at zero.
    pub fn new() -> StripedCounter {
        StripedCounter::default()
    }

    /// Add `n` on the stripe selected by `hint`.
    pub fn add(&self, hint: u64, n: u64) {
        self.stripes[stripe_index(hint, STRIPES)].fetch_add(n, Relaxed);
    }

    /// The total across all stripes.
    pub fn sum(&self) -> u64 {
        self.stripes
            .iter()
            .fold(0u64, |acc, s| acc.wrapping_add(s.load(Relaxed)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let c = SimClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(100);
        c.advance(50);
        assert_eq!(c.now_ns(), 150);
        assert_eq!(c.since(100), 50);
        assert_eq!(c.since(1000), 0);
    }

    #[test]
    fn striped_advances_all_count() {
        let c = SimClock::new();
        for pid in 0..100u64 {
            c.advance_striped(pid, 10);
        }
        assert_eq!(c.now_ns(), 1000);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let c = SimClock::new();
        c.advance(u64::MAX);
        c.advance(10);
        assert_eq!(c.now_ns(), u64::MAX);
    }

    #[test]
    fn concurrent_advances_all_land() {
        let c = SimClock::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.advance_striped(t, 3);
                    }
                });
            }
        });
        assert_eq!(c.now_ns(), 4 * 10_000 * 3);
    }
}
