//! `sys_smod_call_batch`: the io_uring-shaped batched entry point over
//! the `sys_smod_call` dispatch path — plus the shared chunk-drain
//! machinery the multi-session sweep ([`crate::sweep`]) reuses.
//!
//! A single `sys_smod_call` pays fixed costs on every invocation —
//! syscall entry, process/session resolution, cost-model accounting —
//! before any useful work happens. The batched entry point resolves the
//! caller's session, credential prototype and module gateway **once**,
//! then drains up to `batch_budget` [`SmodCallReq`] entries from a
//! [`SubmissionRing`], pushing one [`SmodCallResp`] per entry into the
//! paired [`CompletionRing`]. The fixed work is charged once per batch
//! through [`crate::cost::CostModel::batched_dispatch_ns`]; per-entry
//! work (policy decision, argument copy, the function body) is charged
//! per entry, with cached vs uncached decisions still priced honestly.
//!
//! Entries are processed in chunks of [`BATCH_CHUNK`] under one
//! acquisition of the client/handle pair locks, so a long batch does not
//! starve teardown: between chunks the kernel re-reads the invalidation
//! epochs, and if anything moved it re-validates that the session and
//! its module still exist. A detach or module removal that lands
//! mid-batch therefore fails every remaining entry with `EIDRM`
//! ("identifier removed") instead of dispatching into a dead module —
//! the batched analogue of the single-call path's epoch fold.
//!
//! Within a chunk, decisions are served from a **drain-local memo**
//! keyed by function id: the first entry for a function resolves through
//! the module gateway (and charges the true cached/uncached cost),
//! repeats are priced as cached decisions. The memo is cleared whenever
//! the gateway's epoch moves (policy grant, key registration, or any
//! kernel detach/remove), so its staleness window is one chunk — the
//! same window at which teardown is honoured.
//!
//! The chunked loop itself — epoch re-read, per-chunk credential
//! re-verification, EIDRM on teardown, completion-space reservation — is
//! factored into [`SessionDrain`] / [`Kernel::drain_session_rings`] so
//! that the per-session path here and the multi-session
//! `sys_smod_sweep` share one implementation instead of two copies of
//! the re-check logic.

use crate::errno::Errno;
use crate::kernel::Kernel;
use crate::proc::Pid;
use crate::smod::{Session, SessionState};
use crate::smodreg::{FunctionBody, RegisteredModule};
use crate::trace::Event;
use crate::SysResult;
use secmod_obs::Flavor;
use secmod_ring::{ArenaRegion, ArgRef, CompletionRing, SmodCallReq, SmodCallResp, SubmissionRing};
use std::sync::Arc;

/// Entries processed under one acquisition of the client/handle pair
/// locks. Small enough that a racing detach waits at most one chunk for
/// the client lock; large enough that lock traffic stays amortised.
pub const BATCH_CHUNK: usize = 32;

/// What one `sys_smod_call_batch` invocation did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Submission entries consumed (≤ the batch budget).
    pub drained: usize,
    /// Entries that completed successfully (`errno == 0`).
    pub completed: usize,
    /// Entries that completed with an error (denied, unknown function,
    /// wrong session, or failed because the session died mid-batch).
    pub failed: usize,
    /// The session or its module vanished mid-batch; every entry drained
    /// after the vanishing completed with `EIDRM`.
    pub aborted: bool,
    /// The amortised per-batch fixed cost charged to the caller:
    /// [`crate::cost::CostModel::batched_dispatch_ns`] of the entries
    /// that underwent a policy check or body run (validation rejects are
    /// free, as on the single-call path).
    pub fixed_cost_ns: u64,
}

/// Drain-local gate hit/miss tally. First-sight decisions inside a drain
/// record their tier here instead of bumping the shared counters, and the
/// whole tally is flushed into [`secmod_obs::DispatchMetrics`] once per
/// drain — the batched analogue of the single-call path's per-trap
/// increments, keeping `gate_hits`/`gate_misses` exact without putting a
/// shared-line RMW inside the per-entry loop.
#[derive(Default)]
struct GateTally {
    hits: u64,
    misses: u64,
}

impl GateTally {
    fn record(&mut self, tier: secmod_policy::DecisionTier) {
        if tier.is_cached() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }

    fn flush(self, metrics: &secmod_obs::DispatchMetrics) {
        if self.hits > 0 {
            metrics.gate_hits.add(self.hits);
        }
        if self.misses > 0 {
            metrics.gate_misses.add(self.misses);
        }
    }
}

/// One memoised per-drain dispatch decision for a function id.
enum MemoEntry {
    /// No such stub: `ENOENT`.
    Missing,
    /// Policy denies the caller this function: `EACCES`.
    Denied,
    /// Stub exists but no body is registered: `ENOSYS`.
    NoBody,
    /// Allowed; the body to run (Arc-cloned once per drain, not per call).
    Allowed(FunctionBody),
}

/// Reusable drain buffers: the decision memo and the chunk staging
/// areas. A sweep allocates one of these and reuses it across every
/// session it visits (the memo is cleared per session — decisions are
/// valid only for the credential they were resolved under).
pub(crate) struct DrainScratch {
    memo: Vec<(u32, MemoEntry)>,
    chunk: Vec<SmodCallReq>,
    responses: Vec<SmodCallResp>,
}

impl DrainScratch {
    pub(crate) fn new() -> DrainScratch {
        DrainScratch {
            memo: Vec::new(),
            chunk: Vec::with_capacity(BATCH_CHUNK),
            responses: Vec::with_capacity(BATCH_CHUNK),
        }
    }
}

/// The once-per-drain resolution of a session: the pinned session and
/// module, the epochs the decision memo is valid under, and the
/// credential identity the per-chunk re-verification compares against.
/// Built by [`Kernel::resolve_session_drain`]; consumed by
/// [`Kernel::drain_session_rings`]. This is the "resolve once" that the
/// batched path performs per syscall and the sweep performs once per
/// session per sweep.
pub(crate) struct SessionDrain {
    pub(crate) session: Arc<Session>,
    module: Arc<RegisteredModule>,
    kernel_epoch: u64,
    gate_epoch: u64,
    /// Credential identity decisions were last memoised under; movement
    /// clears the memo (per-chunk re-verification).
    last_cred: (u32, Option<u64>),
    dead: bool,
}

/// What one [`Kernel::drain_session_rings`] call did (the per-session
/// slice of a [`BatchReport`] / [`crate::sweep::SweepReport`]).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct DrainOutcome {
    pub drained: usize,
    pub completed: usize,
    pub failed: usize,
    /// Entries that underwent a policy check or body run — the count the
    /// amortised fixed cost is charged for (validation rejects are free).
    pub checked: usize,
    /// Per-entry simulated nanoseconds accumulated (policy, copy, body).
    pub entry_ns: u64,
    /// The session or module vanished mid-drain; the remainder was
    /// completed with `EIDRM`.
    pub aborted: bool,
}

/// Fail every queued submission with `EIDRM` — the path for a ring whose
/// session was already gone when the drain reached it. Respects
/// completion-ring space exactly like a live drain: entries that cannot
/// be answered yet stay queued (the caller re-flags the slot). Returns
/// how many entries were answered.
pub(crate) fn fail_all_eidrm(sq: &SubmissionRing, cq: &CompletionRing) -> usize {
    let mut failed = 0;
    loop {
        let cq_free = cq.capacity() - cq.len().min(cq.capacity());
        if cq_free == 0 {
            return failed;
        }
        let mut took = 0;
        while took < cq_free {
            match sq.pop() {
                Some(req) => {
                    took += 1;
                    // `req` drops here, freeing any arena slot its args
                    // held — the EIDRM path leaks nothing.
                    let mut pending = SmodCallResp {
                        user_data: req.user_data,
                        ret: ArgRef::empty(),
                        errno: Errno::EIDRM.code(),
                        cost_ns: 0,
                    };
                    while let Err(back) = cq.push(pending) {
                        pending = back;
                        std::thread::yield_now();
                    }
                }
                None => return failed + took,
            }
        }
        failed += took;
    }
}

impl Kernel {
    /// Batched `sys_smod_call`: drain up to `batch_budget` entries from
    /// `sq`, completing each into `cq`.
    ///
    /// The caller must be the client of an established session, exactly
    /// as for `sys_smod_call`; every drained entry must name that session
    /// (`req.session`), or it completes with `EPERM`. The completion ring
    /// must be at least as large as the submission ring (`EINVAL`
    /// otherwise), and each chunk reserves completion-ring space before
    /// consuming submissions — a caller that batches repeatedly without
    /// reaping gets a short (possibly zero-entry) drain back rather than
    /// a kernel thread deadlocked against its own unreaped completions.
    /// Only when concurrent drainers overcommit the same ring does the
    /// publish path fall back to spinning until the consumer catches up.
    ///
    /// Takes `&self`: any number of threads may drain different rings
    /// concurrently, and producers may keep submitting into `sq` while a
    /// drain is in flight — MPSC submission is the intended shape.
    pub fn sys_smod_call_batch(
        &self,
        caller: Pid,
        sq: &SubmissionRing,
        cq: &CompletionRing,
        batch_budget: usize,
    ) -> SysResult<BatchReport> {
        if cq.capacity() < sq.capacity() {
            return Err(Errno::EINVAL);
        }
        // --- once-per-batch resolution (the amortised fixed work) -------
        let link = self.procs.with(caller, |p| p.smod)?.ok_or(Errno::EPERM)?;
        let session = self.sessions.get(link.session).ok_or(Errno::EPERM)?;
        if caller != session.client {
            return Err(Errno::EPERM);
        }
        if session.state() != SessionState::Established {
            return Err(Errno::EINVAL);
        }
        let mut drain = self.resolve_session_drain(session);
        let mut scratch = DrainScratch::new();
        let outcome = self.drain_session_rings(
            &mut drain,
            sq,
            cq,
            None,
            batch_budget,
            &mut scratch,
            Flavor::Batch,
        );

        let mut report = BatchReport {
            drained: outcome.drained,
            completed: outcome.completed,
            failed: outcome.failed,
            aborted: outcome.aborted,
            fixed_cost_ns: 0,
        };
        // --- amortised accounting ---------------------------------------
        // The amortised fixed cost covers the entries that actually went
        // through a policy check or body — entries rejected during
        // validation (unknown function, wrong session, dead session) are
        // free, exactly as `sys_smod_call`'s validation-error paths
        // charge nothing. A drain that checked nothing (empty, or all
        // entries invalid) still pays the bare trap.
        if outcome.checked > 0 {
            report.fixed_cost_ns = self.cost.batched_dispatch_ns(outcome.checked);
            let _ = self
                .procs
                .with_mut(caller, |p| p.cpu_time_ns += report.fixed_cost_ns);
            self.clock
                .advance_striped(caller.0 as u64, report.fixed_cost_ns + outcome.entry_ns);
            // One context-switch pair per *batch* — the single-call path
            // records one pair per call; this is the amortisation.
            self.context_switch_n(caller, 2);
        } else {
            self.charge(caller, self.cost.syscall_trap_ns);
        }
        Ok(report)
    }

    /// Resolve a session for a drain: pin the module `Arc`, fold the
    /// kernel epoch into the gateway, and snapshot the epochs and the
    /// memoised credential identity. This is the fixed work the batched
    /// path pays once per syscall and the sweep pays once per session per
    /// sweep.
    pub(crate) fn resolve_session_drain(&self, session: Arc<Session>) -> SessionDrain {
        let module = Arc::clone(session.module_ref());
        let kernel_epoch = self.smod_epoch();
        module.gateway.observe_kernel_epoch(kernel_epoch);
        let gate_epoch = module.gateway.epoch();
        let last_cred = (session.proto.uid, session.proto.principal_fp);
        SessionDrain {
            session,
            module,
            kernel_epoch,
            gate_epoch,
            last_cred,
            dead: false,
        }
    }

    /// The shared chunked drain: pop up to `budget` entries from `sq` in
    /// [`BATCH_CHUNK`]-sized chunks, re-reading the invalidation epochs
    /// and re-verifying the live credential between chunks, running each
    /// entry under one pair-lock acquisition per chunk, and publishing
    /// one completion per entry into `cq` (completion space is reserved
    /// *before* submissions are consumed). Teardown detected mid-drain
    /// fails the remainder with `EIDRM`.
    ///
    /// Both `sys_smod_call_batch` (one session per syscall) and
    /// `sys_smod_sweep` (every ready session per syscall) funnel through
    /// here, so the epoch/credential re-check semantics cannot drift
    /// between the two paths.
    #[allow(clippy::too_many_arguments)] // one arg per drain resource; bundling would obscure them
    pub(crate) fn drain_session_rings(
        &self,
        d: &mut SessionDrain,
        sq: &SubmissionRing,
        cq: &CompletionRing,
        region: Option<&ArenaRegion>,
        budget: usize,
        scratch: &mut DrainScratch,
        flavor: Flavor,
    ) -> DrainOutcome {
        scratch.memo.clear();
        let mut outcome = DrainOutcome::default();
        // Drain-local gate tally: L0/sharded hits and engine misses are
        // counted here and flushed into the shared `DispatchMetrics`
        // counters once per drain, so the hot decision path writes no
        // shared cache line per entry but the registry stays exact.
        let mut gate_tally = GateTally::default();
        let trace = self.tracer.enabled();
        // Two refcount bumps per drain keep the borrows of `d` (mutated
        // inside the pair-locked closure) disjoint from the session/module
        // handles used around it.
        let session = Arc::clone(&d.session);
        let module = Arc::clone(&d.module);
        let DrainScratch {
            memo,
            chunk,
            responses,
        } = scratch;

        while outcome.drained < budget {
            // Reserve completion space *before* consuming submissions: a
            // chunk is only popped if its completions can be published
            // without waiting on the consumer. A caller that batches
            // repeatedly without reaping therefore gets a short (or
            // zero-entry) drain back instead of deadlocking the kernel
            // against its own unreaped completion ring; concurrent
            // reaping only ever increases the space observed here.
            let cq_free = cq.capacity() - cq.len().min(cq.capacity());
            let take = BATCH_CHUNK.min(budget - outcome.drained).min(cq_free);
            while chunk.len() < take {
                match sq.pop() {
                    Some(req) => chunk.push(req),
                    None => break,
                }
            }
            if chunk.is_empty() {
                break;
            }

            // Epoch fold between chunks: a detach/remove that completed
            // since the last chunk invalidates the pinned session; any
            // epoch movement (including live policy mutations through the
            // gateway) invalidates the drain-local decision memo.
            if !d.dead {
                let now = self.smod_epoch();
                if now != d.kernel_epoch {
                    d.kernel_epoch = now;
                    module.gateway.observe_kernel_epoch(now);
                    d.dead = self.sessions.get(session.id).is_none()
                        || self.registry.get(session.module).is_err();
                }
                let gate_now = module.gateway.epoch();
                if gate_now != d.gate_epoch {
                    d.gate_epoch = gate_now;
                    memo.clear();
                }
            }

            if d.dead {
                outcome.aborted = true;
                responses.extend(chunk.iter().map(|req| SmodCallResp {
                    user_data: req.user_data,
                    ret: ArgRef::empty(),
                    errno: Errno::EIDRM.code(),
                    cost_ns: 0,
                }));
            } else {
                let pair_outcome = session.with_pair(|handle_proc, client_proc| {
                    // Per-chunk credential re-verification: the client is
                    // already pair-locked here, so consulting the live
                    // credential costs a fingerprint comparison, no extra
                    // locking. A mismatch (revocation mid-batch) switches
                    // the chunk to a live-derived view and invalidates
                    // the drain memo.
                    let module_name = &module.package.image.name;
                    let cred_now = (
                        client_proc.cred.uid,
                        client_proc.cred.principal_fp64(module_name),
                    );
                    if cred_now != d.last_cred {
                        d.last_cred = cred_now;
                        memo.clear();
                    }
                    let live: Option<(String, Option<secmod_policy::Principal>, u32)> =
                        if session.proto.matches(&client_proc.cred, module_name) {
                            None
                        } else {
                            Some((
                                client_proc.name.clone(),
                                client_proc.cred.principal_for(module_name),
                                client_proc.cred.uid,
                            ))
                        };
                    let mut client_ns = 0u64;
                    let mut handle_ns = 0u64;
                    let mut bodies_run = 0u64;
                    for req in chunk.iter() {
                        let (resp, extra_ns, ran) = self.batch_entry(
                            &session,
                            &module,
                            req,
                            region,
                            live.as_ref(),
                            memo,
                            &mut gate_tally,
                            |body, args| {
                                let mut ctx = crate::smodreg::HandleCtx {
                                    handle_vm: &mut handle_proc.vm,
                                    client_vm: &client_proc.vm,
                                    client_pid: session.client,
                                    extra_ns: 0,
                                };
                                let result = body(&mut ctx, args);
                                (result, ctx.extra_ns)
                            },
                        );
                        client_ns += resp.cost_ns - extra_ns;
                        handle_ns += extra_ns;
                        bodies_run += u64::from(ran);
                        responses.push(resp);
                    }
                    client_proc.cpu_time_ns += client_ns;
                    handle_proc.cpu_time_ns += handle_ns;
                    bodies_run
                });
                match pair_outcome {
                    Ok(bodies_run) => {
                        session.note_calls(bodies_run);
                        module.note_calls_dispatched(session.client.0 as u64, bodies_run);
                    }
                    // The pair became unlockable (a process was reaped):
                    // the session is dead no matter which errno the lock
                    // reported, so fail this chunk — and the rest of the
                    // drain — with the same `EIDRM` the epoch-detected
                    // teardown path uses, keeping the "everything after
                    // the vanishing is EIDRM" contract.
                    Err(_) => {
                        d.dead = true;
                        outcome.aborted = true;
                        responses.extend(chunk.iter().map(|req| SmodCallResp {
                            user_data: req.user_data,
                            ret: ArgRef::empty(),
                            errno: Errno::EIDRM.code(),
                            cost_ns: 0,
                        }));
                    }
                }
            }

            for (req, resp) in chunk.drain(..).zip(responses.drain(..)) {
                if trace {
                    self.tracer.record(Event::SmodCall {
                        session: session.id,
                        func_id: req.proc_id,
                        symbol: module
                            .package
                            .stub_table
                            .by_id(req.proc_id)
                            .map(|s| s.symbol.clone())
                            .unwrap_or_default(),
                        allowed: resp.is_ok(),
                    });
                }
                outcome.drained += 1;
                if resp.is_ok() {
                    outcome.completed += 1;
                } else {
                    outcome.failed += 1;
                }
                outcome.checked += usize::from(resp.cost_ns > 0);
                outcome.entry_ns += resp.cost_ns;
                // Validation rejects carry `cost_ns == 0` and would only
                // flatten the distribution — record the entries that did
                // real per-entry work, the same set `checked` counts.
                if resp.cost_ns > 0 {
                    self.metrics.record_latency(flavor, resp.cost_ns);
                }
                if resp.errno == Errno::EIDRM.code() {
                    self.metrics.eidrm_failures.incr();
                }
                let mut pending = resp;
                while let Err(back) = cq.push(pending) {
                    pending = back;
                    std::thread::yield_now();
                }
            }
        }
        gate_tally.flush(&self.metrics);
        outcome
    }

    /// Process one submission entry: validate, resolve the decision (from
    /// the drain memo, or through the module gateway on the first sight
    /// of this function id — cached vs uncached charged honestly), run
    /// the body via `run` (which supplies the pair-locked
    /// [`crate::smodreg::HandleCtx`]), and assemble the completion.
    /// `live` overrides the session prototype when the chunk found the
    /// live credential diverged from it. Returns the completion, the
    /// body's extra charged nanoseconds (already included in `cost_ns`),
    /// and whether a body actually ran.
    #[allow(clippy::type_complexity, clippy::too_many_arguments)]
    fn batch_entry(
        &self,
        session: &Session,
        module: &RegisteredModule,
        req: &SmodCallReq,
        region: Option<&ArenaRegion>,
        live: Option<&(String, Option<secmod_policy::Principal>, u32)>,
        memo: &mut Vec<(u32, MemoEntry)>,
        gate_tally: &mut GateTally,
        run: impl FnOnce(&FunctionBody, &[u8]) -> (SysResult<Vec<u8>>, u64),
    ) -> (SmodCallResp, u64, bool) {
        let fail = |errno: Errno, cost_ns: u64| {
            (
                SmodCallResp {
                    user_data: req.user_data,
                    ret: ArgRef::empty(),
                    errno: errno.code(),
                    cost_ns,
                },
                0,
                false,
            )
        };
        if req.session != session.id.0 {
            return fail(Errno::EPERM, 0);
        }
        // Resolve the decision: memo hit, or first-sight gateway probe.
        let mut policy_cost = self.cost.cached_decision_ns;
        let memo_idx = match memo.iter().position(|(id, _)| *id == req.proc_id) {
            Some(idx) => idx,
            None => {
                let entry = match module.package.stub_table.by_id(req.proc_id) {
                    None => MemoEntry::Missing,
                    Some(stub) => {
                        let proto = &session.proto;
                        let (app_domain, principal, uid) = match live {
                            Some((name, principal, uid)) => {
                                (name.as_str(), principal.as_ref(), *uid)
                            }
                            None => (
                                proto.client_name.as_str(),
                                proto.principal.as_ref(),
                                proto.uid,
                            ),
                        };
                        let (allowed, tier) =
                            module.check_operation(app_domain, principal, uid, &stub.symbol);
                        gate_tally.record(tier);
                        // The first sight of a function in a drain pays
                        // the true decision cost; repeats are memo hits.
                        policy_cost = if tier.is_cached() {
                            self.cost.cached_decision_ns
                        } else {
                            self.cost.policy_per_node_ns * module.policy_complexity as u64
                        };
                        if !allowed {
                            MemoEntry::Denied
                        } else {
                            match module.functions.get(req.proc_id) {
                                Some(body) => MemoEntry::Allowed(body),
                                None => MemoEntry::NoBody,
                            }
                        }
                    }
                };
                memo.push((req.proc_id, entry));
                memo.len() - 1
            }
        };
        // The zero-copy payoff, in cost-model form: an arena-resident
        // argument block crosses the ring as an `(offset, len, gen)`
        // descriptor, so the kernel charges one extra slot hand-off
        // instead of `copy_per_byte_ns x len` — the paper's shared-stack
        // argument. By-value args (inline or heap) still pay per byte.
        let copy_cost = if req.args.is_arena() {
            self.metrics.arena.arena_args.incr();
            self.cost.ring_slot_ns
        } else {
            self.metrics.arena.inline_args.incr();
            self.cost.copy_per_byte_ns * req.args.len() as u64
        };
        match &memo[memo_idx].1 {
            MemoEntry::Missing => fail(Errno::ENOENT, 0),
            MemoEntry::Denied => fail(Errno::EACCES, policy_cost + copy_cost),
            MemoEntry::NoBody => fail(Errno::ENOSYS, policy_cost + copy_cost),
            MemoEntry::Allowed(body) => {
                let (result, extra_ns) = run(body, req.args.as_slice());
                let cost_ns = policy_cost + copy_cost + extra_ns;
                match result {
                    // Large results go back through the session's arena
                    // region too, when there is one — the completion
                    // carries a descriptor and the producer reads the
                    // result in place at reap time.
                    Ok(ret) => (
                        SmodCallResp {
                            user_data: req.user_data,
                            ret: ArgRef::place_vec(ret, region),
                            errno: 0,
                            cost_ns,
                        },
                        extra_ns,
                        true,
                    ),
                    Err(e) => (
                        SmodCallResp {
                            user_data: req.user_data,
                            ret: ArgRef::empty(),
                            errno: e.code(),
                            cost_ns,
                        },
                        extra_ns,
                        true,
                    ),
                }
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::cred::Credential;
    use crate::smod::{ModuleKeyDelivery, SmodCallArgs};
    use crate::smodreg::FunctionTable;
    use secmod_module::builder::ModuleBuilder;
    use secmod_module::{ModuleId, SmodPackage, StubTable};
    use secmod_policy::assertion::{Assertion, LicenseeExpr};
    use secmod_policy::{PolicyEngine, Principal};
    use secmod_ring::{Ring, SMOD_BATCH_DEFAULT_BUDGET};
    use std::sync::atomic::{AtomicBool, Ordering};

    pub(crate) const ALICE_KEY: &[u8] = b"batch-alice-key";
    const MAC_KEY: &[u8] = b"batch-mac-key";

    /// Register the libc-like module with a policy granting alice every
    /// function except `strlen`; every body returns its u64 argument + 1.
    /// `slow_gate`, when set, makes every body sleep 1 ms until the flag
    /// flips — the hook the mid-batch/mid-sweep teardown tests use to
    /// widen the race window. `n_clients` clients are spawned, each
    /// presenting the alice credential through its own session (the sweep
    /// tests drain many sessions; the batch tests use client 0).
    pub(crate) fn kernel_with_clients(
        slow_gate: Option<Arc<AtomicBool>>,
        n_clients: usize,
    ) -> (Kernel, ModuleId, Vec<Pid>, u32) {
        let k = Kernel::new(CostModel::default());
        let registrar = k
            .spawn_process("registrar", Credential::root(), vec![0x90; 4096], 2, 2)
            .unwrap();
        let image = ModuleBuilder::libc_like();
        let key = b"0123456789abcdef".to_vec();
        let nonce = [4u8; 8];
        let enc = secmod_crypto::SelectiveEncryptor::new(&key, nonce).unwrap();
        let package = SmodPackage::seal(&image, &enc, MAC_KEY).unwrap();

        let mut policy = PolicyEngine::new();
        let alice = Principal::from_key("uid1000", ALICE_KEY);
        policy
            .add_assertion(
                Assertion::policy(LicenseeExpr::Single(alice), "function != \"strlen\"").unwrap(),
            )
            .unwrap();

        let stub_table = StubTable::generate(&image);
        let mut functions = FunctionTable::new();
        for stub in &stub_table.stubs {
            let gate = slow_gate.clone();
            functions.register(stub.func_id, move |_ctx, args| {
                if let Some(gate) = &gate {
                    if !gate.load(Ordering::Acquire) {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                }
                let v = u64::from_le_bytes(args[..8].try_into().map_err(|_| Errno::EINVAL)?);
                Ok((v + 1).to_le_bytes().to_vec())
            });
        }
        let incr_id = stub_table.by_name("testincr").unwrap().func_id;

        let m_id = k
            .sys_smod_add(
                registrar,
                package,
                ModuleKeyDelivery::Raw { key, nonce },
                MAC_KEY,
                policy,
                functions,
            )
            .unwrap();
        let clients: Vec<Pid> = (0..n_clients)
            .map(|i| {
                let client = k
                    .spawn_process(
                        &format!("batch-client{i}"),
                        Credential::user(1000, 100).with_smod_credential("libc", ALICE_KEY),
                        vec![0x90; 4096],
                        4,
                        4,
                    )
                    .unwrap();
                let (_session, handle) = k.sys_smod_start_session(client, m_id).unwrap();
                k.sys_smod_session_info(handle).unwrap();
                k.sys_smod_handle_info(client).unwrap();
                client
            })
            .collect();
        (k, m_id, clients, incr_id)
    }

    fn kernel_with_module(slow_gate: Option<Arc<AtomicBool>>) -> (Kernel, ModuleId, Pid, u32) {
        let (k, m_id, clients, incr) = kernel_with_clients(slow_gate, 1);
        (k, m_id, clients[0], incr)
    }

    pub(crate) fn req(
        k: &Kernel,
        client: Pid,
        proc_id: u32,
        user_data: u64,
        arg: u64,
    ) -> SmodCallReq {
        SmodCallReq {
            session: k.session_of(client).unwrap().id.0,
            proc_id,
            user_data,
            args: arg.to_le_bytes().into(),
        }
    }

    fn rings(capacity: usize) -> (SubmissionRing, CompletionRing) {
        (Ring::with_capacity(capacity), Ring::with_capacity(capacity))
    }

    #[test]
    fn batch_matches_sequential_results_and_order() {
        let (k, _m, client, incr) = kernel_with_module(None);
        let (sq, cq) = rings(64);
        for i in 0..40u64 {
            sq.push_spsc(req(&k, client, incr, i, 100 + i)).unwrap();
        }
        let report = k
            .sys_smod_call_batch(client, &sq, &cq, SMOD_BATCH_DEFAULT_BUDGET)
            .unwrap();
        assert_eq!(report.drained, 40);
        assert_eq!(report.completed, 40);
        assert_eq!(report.failed, 0);
        assert!(!report.aborted);
        assert_eq!(report.fixed_cost_ns, k.cost.batched_dispatch_ns(40));
        for i in 0..40u64 {
            let resp = cq.pop_spsc().expect("completion present");
            assert_eq!(resp.user_data, i, "completions preserve FIFO order");
            assert!(resp.is_ok());
            assert_eq!(
                u64::from_le_bytes(resp.ret_bytes().try_into().unwrap()),
                101 + i
            );
            assert!(resp.cost_ns > 0, "entries charge per-entry cost");
        }
        assert!(cq.pop_spsc().is_none());
        assert_eq!(k.session_of(client).unwrap().calls(), 40);
    }

    #[test]
    fn batch_respects_budget_and_leaves_the_rest_queued() {
        let (k, _m, client, incr) = kernel_with_module(None);
        let (sq, cq) = rings(32);
        for i in 0..10u64 {
            sq.push_spsc(req(&k, client, incr, i, i)).unwrap();
        }
        let report = k.sys_smod_call_batch(client, &sq, &cq, 4).unwrap();
        assert_eq!(report.drained, 4);
        assert_eq!(sq.len(), 6, "unbudgeted entries stay queued");
        let report = k.sys_smod_call_batch(client, &sq, &cq, 64).unwrap();
        assert_eq!(report.drained, 6);
        assert!(sq.is_empty());
    }

    #[test]
    fn per_entry_failures_do_not_poison_the_batch() {
        let (k, m_id, client, incr) = kernel_with_module(None);
        let strlen = k
            .registry
            .get(m_id)
            .unwrap()
            .package
            .stub_table
            .by_name("strlen")
            .unwrap()
            .func_id;
        let (sq, cq) = rings(16);
        sq.push_spsc(req(&k, client, incr, 0, 1)).unwrap();
        // Wrong session id in the entry.
        let mut bad_session = req(&k, client, incr, 1, 2);
        bad_session.session += 1000;
        sq.push_spsc(bad_session).unwrap();
        // Unknown function id.
        sq.push_spsc(req(&k, client, 9999, 2, 3)).unwrap();
        // Policy-denied function.
        sq.push_spsc(req(&k, client, strlen, 3, 4)).unwrap();
        sq.push_spsc(req(&k, client, incr, 4, 5)).unwrap();

        let report = k.sys_smod_call_batch(client, &sq, &cq, 16).unwrap();
        assert_eq!(report.drained, 5);
        assert_eq!(report.completed, 2);
        assert_eq!(report.failed, 3);
        assert!(!report.aborted);
        let errnos: Vec<i32> = (0..5).map(|_| cq.pop_spsc().unwrap().errno).collect();
        assert_eq!(
            errnos,
            vec![
                0,
                Errno::EPERM.code(),
                Errno::ENOENT.code(),
                Errno::EACCES.code(),
                0
            ]
        );
    }

    #[test]
    fn live_policy_mutation_is_visible_at_the_next_chunk() {
        // The drain memo may serve a decision for at most one chunk: a
        // grant added mid-batch (here: between two batched drains, and
        // within one batch across a chunk boundary) must flip the denied
        // function to allowed.
        let (k, m_id, client, _incr) = kernel_with_module(None);
        let strlen = k
            .registry
            .get(m_id)
            .unwrap()
            .package
            .stub_table
            .by_name("strlen")
            .unwrap()
            .func_id;
        let (sq, cq) = rings(BATCH_CHUNK * 2);
        for i in 0..BATCH_CHUNK as u64 {
            sq.push_spsc(req(&k, client, strlen, i, i)).unwrap();
        }
        let report = k
            .sys_smod_call_batch(client, &sq, &cq, BATCH_CHUNK)
            .unwrap();
        assert_eq!(report.failed, BATCH_CHUNK);
        for _ in 0..BATCH_CHUNK {
            assert_eq!(cq.pop_spsc().unwrap().errno, Errno::EACCES.code());
        }
        // Grant strlen through the live gateway (bumps the gateway epoch,
        // which clears any drain memo at the next chunk boundary).
        let alice = Principal::from_key("uid1000", ALICE_KEY);
        k.registry
            .get(m_id)
            .unwrap()
            .gateway
            .add_assertion(Assertion::policy(LicenseeExpr::Single(alice), "").unwrap())
            .unwrap();
        for i in 0..BATCH_CHUNK as u64 {
            sq.push_spsc(req(&k, client, strlen, i, i)).unwrap();
        }
        let report = k
            .sys_smod_call_batch(client, &sq, &cq, BATCH_CHUNK)
            .unwrap();
        assert_eq!(report.completed, BATCH_CHUNK, "grant must be visible");
    }

    #[test]
    fn validation_only_batches_charge_just_the_trap() {
        // `sys_smod_call` charges nothing on its validation-error paths
        // (unknown function, wrong module); a batch made entirely of such
        // entries must not charge the amortised fixed cost either — only
        // the syscall trap the drain itself cost.
        let (k, _m, client, _incr) = kernel_with_module(None);
        let (sq, cq) = rings(8);
        for i in 0..4u64 {
            sq.push_spsc(req(&k, client, u32::MAX, i, i)).unwrap();
        }
        let before = k.clock.now_ns();
        let report = k.sys_smod_call_batch(client, &sq, &cq, 8).unwrap();
        assert_eq!(report.drained, 4);
        assert_eq!(report.failed, 4);
        assert_eq!(report.fixed_cost_ns, 0);
        assert_eq!(k.clock.now_ns() - before, k.cost.syscall_trap_ns);
        for _ in 0..4 {
            assert_eq!(cq.pop_spsc().unwrap().errno, Errno::ENOENT.code());
        }
    }

    #[test]
    fn unreaped_completions_stop_the_drain_instead_of_hanging() {
        // Regression: sq and cq both capacity 8 passes the EINVAL guard;
        // batching twice without reaping used to spin forever inside the
        // kernel (the only consumer of cq being the blocked caller).
        let (k, _m, client, incr) = kernel_with_module(None);
        let (sq, cq) = rings(8);
        for i in 0..8u64 {
            sq.push_spsc(req(&k, client, incr, i, i)).unwrap();
        }
        assert_eq!(
            k.sys_smod_call_batch(client, &sq, &cq, 8).unwrap().drained,
            8
        );
        // cq now holds 8 unreaped completions; resubmit and drain again.
        for i in 0..8u64 {
            sq.push_spsc(req(&k, client, incr, i, i)).unwrap();
        }
        let report = k.sys_smod_call_batch(client, &sq, &cq, 8).unwrap();
        assert_eq!(report.drained, 0, "full cq must stop the drain");
        assert_eq!(sq.len(), 8, "submissions must stay queued");
        // Reap half: the next drain makes exactly that much progress.
        for _ in 0..4 {
            assert!(cq.pop_spsc().unwrap().is_ok());
        }
        let report = k.sys_smod_call_batch(client, &sq, &cq, 8).unwrap();
        assert_eq!(report.drained, 4);
        assert_eq!(sq.len(), 4);
    }

    #[test]
    fn credential_revocation_is_honoured_by_the_batched_path() {
        // The paper's "credentials are re-verified on every smod_call"
        // invariant, batched: stripping the credential mid-session turns
        // the very next batched drain into denials.
        let (k, _m, client, incr) = kernel_with_module(None);
        let (sq, cq) = rings(16);
        sq.push_spsc(req(&k, client, incr, 0, 1)).unwrap();
        assert_eq!(
            k.sys_smod_call_batch(client, &sq, &cq, 16)
                .unwrap()
                .completed,
            1
        );
        assert!(cq.pop_spsc().unwrap().is_ok());

        k.procs
            .with_mut(client, |p| p.cred = Credential::user(1000, 100))
            .unwrap();
        for i in 0..8u64 {
            sq.push_spsc(req(&k, client, incr, i, i)).unwrap();
        }
        let report = k.sys_smod_call_batch(client, &sq, &cq, 16).unwrap();
        assert_eq!(report.failed, 8, "revoked credential must deny the batch");
        for _ in 0..8 {
            assert_eq!(cq.pop_spsc().unwrap().errno, Errno::EACCES.code());
        }
    }

    #[test]
    fn validation_mirrors_sys_smod_call() {
        let (k, m_id, client, incr) = kernel_with_module(None);
        let (sq, cq) = rings(8);
        // A completion ring smaller than the submission ring is refused.
        let small_cq: CompletionRing = Ring::with_capacity(4);
        assert_eq!(
            k.sys_smod_call_batch(client, &sq, &small_cq, 8)
                .unwrap_err(),
            Errno::EINVAL
        );
        // A process without a session cannot batch.
        let loner = k
            .spawn_process("loner", Credential::user(9, 9), vec![0x90; 4096], 2, 2)
            .unwrap();
        assert_eq!(
            k.sys_smod_call_batch(loner, &sq, &cq, 8).unwrap_err(),
            Errno::EPERM
        );
        // A half-established session cannot batch.
        let late = k
            .spawn_process(
                "late",
                Credential::user(1000, 100).with_smod_credential("libc", ALICE_KEY),
                vec![0x90; 4096],
                4,
                4,
            )
            .unwrap();
        k.sys_smod_start_session(late, m_id).unwrap();
        assert_eq!(
            k.sys_smod_call_batch(late, &sq, &cq, 8).unwrap_err(),
            Errno::EINVAL
        );
        // An empty drain still charges a trap and reports zero work.
        let before = k.clock.now_ns();
        let report = k.sys_smod_call_batch(client, &sq, &cq, 8).unwrap();
        assert_eq!(report, BatchReport::default());
        assert_eq!(k.clock.now_ns() - before, k.cost.syscall_trap_ns);
        let _ = incr;
    }

    #[test]
    fn batched_clock_cost_is_amortised_vs_sequential() {
        const N: u64 = 64;
        let (seq_kernel, m_id, seq_client, incr) = kernel_with_module(None);
        let (batch_kernel, _m2, batch_client, incr2) = kernel_with_module(None);
        assert_eq!(incr, incr2);

        let t0 = seq_kernel.clock.now_ns();
        for i in 0..N {
            seq_kernel
                .sys_smod_call(
                    seq_client,
                    SmodCallArgs {
                        m_id,
                        func_id: incr,
                        frame_pointer: 0,
                        return_address: 0,
                        args: i.to_le_bytes().to_vec(),
                    },
                )
                .unwrap();
        }
        let sequential_ns = seq_kernel.clock.now_ns() - t0;

        let (sq, cq) = rings(N as usize);
        for i in 0..N {
            sq.push_spsc(req(&batch_kernel, batch_client, incr, i, i))
                .unwrap();
        }
        let t0 = batch_kernel.clock.now_ns();
        let report = batch_kernel
            .sys_smod_call_batch(batch_client, &sq, &cq, N as usize)
            .unwrap();
        let batched_ns = batch_kernel.clock.now_ns() - t0;
        assert_eq!(report.completed, N as usize);
        // Same results...
        for i in 0..N {
            let resp = cq.pop_spsc().unwrap();
            assert_eq!(
                u64::from_le_bytes(resp.into_ret().try_into().unwrap()),
                i + 1
            );
        }
        // ...at a fraction of the simulated cost: the fixed per-call work
        // is paid once. Even a conservative bound (4x cheaper) holds with
        // the default cost model at batch 64.
        assert!(
            batched_ns * 4 < sequential_ns,
            "batched {batched_ns} ns not amortised vs sequential {sequential_ns} ns"
        );
    }

    #[test]
    fn module_removed_mid_batch_fails_remaining_entries() {
        const ENTRIES: usize = 192;
        let gate = Arc::new(AtomicBool::new(false));
        let (k, m_id, client, incr) = kernel_with_module(Some(Arc::clone(&gate)));
        let (sq, cq) = rings(ENTRIES);
        for i in 0..ENTRIES as u64 {
            sq.push_spsc(req(&k, client, incr, i, i)).unwrap();
        }

        let k = &k;
        let report = std::thread::scope(|s| {
            // The teardown actor: wait for the batch to be mid-flight
            // (bodies sleep while the gate is closed), then detach the
            // session and remove the module — both bump the kernel epoch.
            s.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(5));
                k.smod_detach(client, "mid-batch teardown").unwrap();
                k.sys_smod_remove(Pid(1), m_id).unwrap();
                gate.store(true, Ordering::Release);
            });
            k.sys_smod_call_batch(client, &sq, &cq, ENTRIES).unwrap()
        });

        assert_eq!(report.drained, ENTRIES, "every entry must be answered");
        assert!(report.aborted, "teardown mid-batch must be reported");
        assert!(
            report.completed > 0,
            "the leading chunk ran before teardown"
        );
        assert!(report.failed > 0, "entries after the teardown must fail");
        // Completions: a prefix of successes, then EIDRM for everything
        // drained after the module vanished — never an Allow afterwards.
        let mut seen_dead = false;
        for i in 0..ENTRIES {
            let resp = cq.pop_spsc().expect("completion present");
            if resp.is_ok() {
                assert!(
                    !seen_dead,
                    "entry {i} succeeded after the module was removed"
                );
            } else {
                assert_eq!(resp.errno, Errno::EIDRM.code());
                seen_dead = true;
            }
        }
        assert!(seen_dead);
    }
}
