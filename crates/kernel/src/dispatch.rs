//! [`Dispatcher`]: the one dispatch vocabulary every frontend speaks.
//!
//! PRs 2–5 grew four ways to get a protected call through the kernel —
//! `sys_smod_call` (one trap per call), `sys_smod_call_batch` (one trap
//! per batch), `sys_smod_sweep` (one trap per *set* of sessions), and the
//! `DispatchPlane`'s submit/reap pair (no producer trap at all) — each
//! with its own request shape and its own error convention (`Errno`,
//! bounced `SmodCallReq`s, per-entry errno codes). This module folds them
//! behind one trait with one request/response vocabulary and one error
//! type, so a harness can be written once and pointed at any flavor:
//!
//! | implementor    | paper cost model                  | trap pattern      |
//! |----------------|-----------------------------------|-------------------|
//! | `Kernel`       | `smod_dispatch_ns` per call       | 1 trap / call     |
//! | `Kernel` batch | `batched_dispatch_ns` per entry   | 1 trap / batch    |
//! | `SimWorld`     | same, via the simulated backend   | 1 trap / call     |
//! | `PlaneHandle`  | `sweep_dispatch_ns` amortised     | 0 producer traps  |
//! | `AsyncPlane`   | `sweep_dispatch_ns` amortised     | 0 producer traps  |
//!
//! Errors partition into the three things a caller can actually react
//! to: a kernel verdict ([`DispatchError::Errno`] — denial, unknown
//! function, torn-down session), transient backpressure
//! ([`DispatchError::Backpressure`] — retry after completions drain), and
//! permanent teardown ([`DispatchError::Detached`] — stop retrying).

use crate::errno::Errno;
use crate::kernel::Kernel;
use crate::proc::Pid;
use crate::smod::SmodCallArgs;
use secmod_obs::DispatchMetrics;
use secmod_ring::{RingPairConfig, SmodCallReq, SmodCallResp};

/// One request in the unified vocabulary: which module function, with
/// what marshalled argument bytes. The module is implied — a dispatcher
/// call is always made *as* a client pid, and a client's session names
/// its module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DispatchCall {
    /// The function id within the session module's stub table.
    pub proc_id: u32,
    /// Marshalled argument bytes.
    pub args: Vec<u8>,
}

impl DispatchCall {
    /// Build a call.
    pub fn new(proc_id: u32, args: impl Into<Vec<u8>>) -> DispatchCall {
        DispatchCall {
            proc_id,
            args: args.into(),
        }
    }
}

/// What one dispatched call produced: the return bytes, or why not.
pub type DispatchOutcome = Result<Vec<u8>, DispatchError>;

/// The unified dispatch error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchError {
    /// The kernel answered with an errno (policy denial, unknown
    /// function, session torn down mid-call, …).
    Errno(Errno),
    /// Transient backpressure: a ring had no space. The request was not
    /// accepted; retry after reaping/awaiting completions.
    Backpressure,
    /// The dispatcher is permanently gone (plane shut down, session slot
    /// deregistered). Retrying can never succeed.
    Detached,
}

impl DispatchError {
    /// Map a ring completion to the unified vocabulary.
    pub fn from_resp(resp: SmodCallResp) -> DispatchOutcome {
        if resp.is_ok() {
            Ok(resp.into_ret())
        } else {
            Err(DispatchError::Errno(
                Errno::from_code(resp.errno).unwrap_or(Errno::EINVAL),
            ))
        }
    }
}

impl From<Errno> for DispatchError {
    fn from(e: Errno) -> DispatchError {
        DispatchError::Errno(e)
    }
}

impl std::fmt::Display for DispatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatchError::Errno(e) => write!(f, "kernel errno {e}"),
            DispatchError::Backpressure => write!(f, "backpressure (retry after completions)"),
            DispatchError::Detached => write!(f, "dispatcher detached (do not retry)"),
        }
    }
}

impl std::error::Error for DispatchError {}

/// What a dispatcher flavor can do — a harness uses this to pick batch
/// sizes and parallelism instead of hard-coding per-flavor knowledge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DispatchCaps {
    /// Short flavor name ("syscall", "sim", "plane", "async").
    pub flavor: &'static str,
    /// `dispatch_batch` amortises fixed cost (vs. looping
    /// `dispatch_one`).
    pub batched: bool,
    /// Submitting never traps on the caller's thread (ring-only
    /// producers).
    pub trap_free: bool,
    /// Built for suspension: many logical callers can be in flight per
    /// OS thread.
    pub asynchronous: bool,
}

/// The unified dispatch surface: sync, batched, plane and async callers
/// all speak this.
///
/// `client` is the calling process on whose session the dispatch runs;
/// session-bound implementors ([`crate::plane::PlaneHandle`]) verify it
/// matches their attachment and answer `EPERM` otherwise, exactly as the
/// kernel would.
pub trait Dispatcher {
    /// Dispatch one call and wait for its result.
    fn dispatch_one(&self, client: Pid, proc_id: u32, args: &[u8]) -> DispatchOutcome;

    /// Dispatch a batch, returning one outcome per call, in call order.
    /// The outer `Result` is for failures to dispatch *anything* (dead
    /// client, detached plane); per-call verdicts live in the inner
    /// outcomes.
    ///
    /// The default implementation loops [`Dispatcher::dispatch_one`];
    /// flavors with a real batch path override it.
    fn dispatch_batch(
        &self,
        client: Pid,
        calls: &[DispatchCall],
    ) -> Result<Vec<DispatchOutcome>, DispatchError> {
        Ok(calls
            .iter()
            .map(|c| self.dispatch_one(client, c.proc_id, &c.args))
            .collect())
    }

    /// What this flavor can do.
    fn capabilities(&self) -> DispatchCaps;

    /// The dispatch metrics registry this flavor records into, when it
    /// has one. Kernel-backed flavors return their kernel's registry
    /// (per-flavor latency histograms plus counters); the default is
    /// `None` so trait objects over non-kernel dispatchers keep working.
    fn metrics(&self) -> Option<&DispatchMetrics> {
        None
    }
}

impl Dispatcher for Kernel {
    /// `sys_smod_call`: one trap per call, the paper's headline row.
    fn dispatch_one(&self, client: Pid, proc_id: u32, args: &[u8]) -> DispatchOutcome {
        let session = self.session_of(client).ok_or(Errno::EPERM)?;
        self.sys_smod_call(
            client,
            SmodCallArgs {
                m_id: session.module,
                func_id: proc_id,
                frame_pointer: 0,
                return_address: 0,
                args: args.to_vec(),
            },
        )
        .map_err(DispatchError::from)
    }

    /// `sys_smod_call_batch` over a throwaway ring pair: one trap for
    /// the whole batch.
    fn dispatch_batch(
        &self,
        client: Pid,
        calls: &[DispatchCall],
    ) -> Result<Vec<DispatchOutcome>, DispatchError> {
        if calls.is_empty() {
            return Ok(Vec::new());
        }
        let session = self.session_of(client).ok_or(Errno::EPERM)?;
        let (sq, cq) = RingPairConfig {
            submission: calls.len(),
            completion: calls.len(),
        }
        .build();
        for (i, call) in calls.iter().enumerate() {
            sq.push_spsc(SmodCallReq {
                session: session.id.0,
                proc_id: call.proc_id,
                user_data: i as u64,
                args: call.args.clone().into(),
            })
            .expect("ring sized to the batch");
        }
        self.sys_smod_call_batch(client, &sq, &cq, calls.len())?;
        let mut out: Vec<DispatchOutcome> = vec![Err(DispatchError::Detached); calls.len()];
        while let Some(resp) = cq.pop_spsc() {
            let idx = resp.user_data as usize;
            out[idx] = DispatchError::from_resp(resp);
        }
        Ok(out)
    }

    fn capabilities(&self) -> DispatchCaps {
        DispatchCaps {
            flavor: "syscall",
            batched: true,
            trap_free: false,
            asynchronous: false,
        }
    }

    fn metrics(&self) -> Option<&DispatchMetrics> {
        Some(&self.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::tests::kernel_with_clients;
    use crate::plane::{DispatchPlane, PlaneConfig};
    use std::sync::Arc;

    #[test]
    fn kernel_dispatch_one_matches_sys_smod_call() {
        let (k, m, clients, incr) = kernel_with_clients(None, 1);
        let client = clients[0];
        let via_trait = k.dispatch_one(client, incr, &7u64.to_le_bytes()).unwrap();
        let via_syscall = k
            .sys_smod_call(
                client,
                SmodCallArgs {
                    m_id: m,
                    func_id: incr,
                    frame_pointer: 0,
                    return_address: 0,
                    args: 7u64.to_le_bytes().to_vec(),
                },
            )
            .unwrap();
        assert_eq!(via_trait, via_syscall);
        // Unknown function: the errno comes through the unified type.
        assert_eq!(
            k.dispatch_one(client, u32::MAX, &[]),
            Err(DispatchError::Errno(Errno::ENOENT))
        );
        // No session at all.
        let loner = k
            .spawn_process(
                "loner",
                crate::cred::Credential::user(9, 9),
                vec![0x90; 4096],
                2,
                2,
            )
            .unwrap();
        assert_eq!(
            k.dispatch_one(loner, incr, &[]),
            Err(DispatchError::Errno(Errno::EPERM))
        );
    }

    #[test]
    fn kernel_dispatch_batch_keeps_call_order() {
        let (k, _m, clients, incr) = kernel_with_clients(None, 1);
        let client = clients[0];
        let calls: Vec<DispatchCall> = (0..10u64)
            .map(|i| {
                if i == 5 {
                    DispatchCall::new(u32::MAX, Vec::new()) // unknown function
                } else {
                    DispatchCall::new(incr, i.to_le_bytes().to_vec())
                }
            })
            .collect();
        let outcomes = k.dispatch_batch(client, &calls).unwrap();
        assert_eq!(outcomes.len(), 10);
        for (i, outcome) in outcomes.iter().enumerate() {
            if i == 5 {
                assert_eq!(outcome, &Err(DispatchError::Errno(Errno::ENOENT)));
            } else {
                let ret = outcome.as_ref().unwrap();
                assert_eq!(
                    u64::from_le_bytes(ret.clone().try_into().unwrap()),
                    i as u64 + 1
                );
            }
        }
        assert!(k.dispatch_batch(client, &[]).unwrap().is_empty());
    }

    #[test]
    fn plane_handle_dispatches_the_same_outcomes_as_the_kernel() {
        let (k, _m, clients, incr) = kernel_with_clients(None, 1);
        let client = clients[0];
        let calls: Vec<DispatchCall> = (0..64u64)
            .map(|i| {
                if i % 7 == 0 {
                    DispatchCall::new(u32::MAX, Vec::new())
                } else {
                    DispatchCall::new(incr, i.to_le_bytes().to_vec())
                }
            })
            .collect();
        let expected = k.dispatch_batch(client, &calls).unwrap();

        let kernel = Arc::new(k);
        let plane = DispatchPlane::start(Arc::clone(&kernel), PlaneConfig::default()).unwrap();
        let handle = plane.attach(client).unwrap();
        assert!(handle.capabilities().trap_free);
        let outcomes = handle.dispatch_batch(client, &calls).unwrap();
        assert_eq!(outcomes, expected);
        // Single-call flavor agrees too.
        assert_eq!(
            handle
                .dispatch_one(client, incr, &41u64.to_le_bytes())
                .unwrap(),
            42u64.to_le_bytes().to_vec()
        );
        // A foreign pid cannot dispatch on somebody else's attachment.
        let imposter = kernel
            .spawn_process(
                "imposter",
                crate::cred::Credential::user(9, 9),
                vec![0x90; 4096],
                2,
                2,
            )
            .unwrap();
        assert_eq!(
            handle.dispatch_one(imposter, incr, &[]),
            Err(DispatchError::Errno(Errno::EPERM))
        );
        plane.shutdown();
    }

    #[test]
    fn plane_dispatch_after_shutdown_reports_detached() {
        let (k, _m, clients, incr) = kernel_with_clients(None, 1);
        let client = clients[0];
        let kernel = Arc::new(k);
        let plane = DispatchPlane::start(Arc::clone(&kernel), PlaneConfig::default()).unwrap();
        let handle = plane.attach(client).unwrap();
        plane.shutdown();
        assert_eq!(
            handle.dispatch_one(client, incr, &1u64.to_le_bytes()),
            Err(DispatchError::Detached)
        );
    }
}
