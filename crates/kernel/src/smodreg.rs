//! The kernel's SecModule registry and the function bodies the handle
//! executes.
//!
//! "A separate tool chain registers the SecModule m with the kernel, which
//! must keep track of the registered SecModules" (§3).  The registry maps
//! `(name, version)` to a [`RegisteredModule`]: the sealed package delivered
//! by the toolchain, the kernel-only key that unseals it, the access policy,
//! and — because this is a simulation rather than real machine code — a
//! table of Rust closures standing in for the functions held in the module
//! text.  The closures run "in the handle": they receive a [`HandleCtx`]
//! that exposes the handle's view of the shared client memory, exactly the
//! access a real SecModule function would have.

use crate::errno::Errno;
use crate::proc::Pid;
use crate::SysResult;
use secmod_crypto::keystore::KeyHandle;
use secmod_module::{ModuleId, ModuleImage, SmodPackage};
use secmod_policy::PolicyEngine;
use secmod_vm::{Vaddr, VmSpace};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// The execution context a module function body receives: the handle's
/// address space (which shares data/heap/stack with the client) plus the
/// client's space for peer-fault resolution.
pub struct HandleCtx<'a> {
    /// The handle process's address space.
    pub handle_vm: &'a mut VmSpace,
    /// The client process's address space (read-only reference used for
    /// peer-fault sharing).
    pub client_vm: &'a VmSpace,
    /// Pid of the client on whose behalf the call executes.
    pub client_pid: Pid,
    /// Extra simulated nanoseconds the body wants charged (e.g. a function
    /// that itself performs a syscall).
    pub extra_ns: u64,
}

impl<'a> HandleCtx<'a> {
    /// Read bytes from the shared address space.
    pub fn read(&mut self, addr: Vaddr, len: usize) -> SysResult<Vec<u8>> {
        self.handle_vm
            .read_bytes_with_peer(addr, len, Some(self.client_vm))
            .map_err(Errno::from)
    }

    /// Write bytes into the shared address space (visible to the client).
    pub fn write(&mut self, addr: Vaddr, data: &[u8]) -> SysResult<()> {
        self.handle_vm
            .write_bytes_with_peer(addr, data, Some(self.client_vm))
            .map_err(Errno::from)
    }

    /// Read a little-endian `u64` from shared memory.
    pub fn read_u64(&mut self, addr: Vaddr) -> SysResult<u64> {
        let bytes = self.read(addr, 8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes read")))
    }

    /// Write a little-endian `u64` to shared memory.
    pub fn write_u64(&mut self, addr: Vaddr, value: u64) -> SysResult<()> {
        self.write(addr, &value.to_le_bytes())
    }

    /// Charge extra simulated time to this call (e.g. the body of
    /// `SMOD-getpid` performing the real `getpid` work).
    pub fn charge_ns(&mut self, ns: u64) {
        self.extra_ns += ns;
    }
}

/// A function body: takes the execution context and the marshalled argument
/// bytes from the shared stack, returns the marshalled result bytes.
pub type FunctionBody = Arc<dyn Fn(&mut HandleCtx<'_>, &[u8]) -> SysResult<Vec<u8>> + Send + Sync>;

/// The table of function bodies for one module, keyed by function id
/// (matching the module's stub table).
#[derive(Clone, Default)]
pub struct FunctionTable {
    bodies: HashMap<u32, FunctionBody>,
}

impl std::fmt::Debug for FunctionTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FunctionTable({} functions)", self.bodies.len())
    }
}

impl FunctionTable {
    /// Create an empty table.
    pub fn new() -> FunctionTable {
        FunctionTable::default()
    }

    /// Register a body for `func_id`.
    pub fn register<F>(&mut self, func_id: u32, body: F)
    where
        F: Fn(&mut HandleCtx<'_>, &[u8]) -> SysResult<Vec<u8>> + Send + Sync + 'static,
    {
        self.bodies.insert(func_id, Arc::new(body));
    }

    /// Look up a body.
    pub fn get(&self, func_id: u32) -> Option<FunctionBody> {
        self.bodies.get(&func_id).cloned()
    }

    /// Number of registered bodies.
    pub fn len(&self) -> usize {
        self.bodies.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.bodies.is_empty()
    }
}

/// A module registered with the kernel.
pub struct RegisteredModule {
    /// The module id assigned at registration.
    pub id: ModuleId,
    /// The sealed package as delivered by the toolchain (text possibly
    /// encrypted).
    pub package: SmodPackage,
    /// The plaintext image — exists only inside the kernel, handed only to
    /// handle processes.
    pub plaintext: ModuleImage,
    /// The key that seals/unseals the module text (kernel key store handle).
    pub key: KeyHandle,
    /// The access policy evaluated on every session start and every call.
    pub policy: PolicyEngine,
    /// Function bodies executed by the handle.
    pub functions: FunctionTable,
    /// Uid of the principal that registered the module (may remove it).
    pub registered_by_uid: u32,
    /// Number of sessions ever started against this module.
    pub sessions_started: u64,
    /// Number of calls dispatched against this module.
    pub calls_dispatched: u64,
}

impl std::fmt::Debug for RegisteredModule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegisteredModule")
            .field("id", &self.id)
            .field("name", &self.package.image.name)
            .field("version", &self.package.image.version)
            .field("functions", &self.functions.len())
            .finish()
    }
}

/// The registry of all SecModules known to the kernel.
#[derive(Debug, Default)]
pub struct SmodRegistry {
    modules: BTreeMap<ModuleId, RegisteredModule>,
    next_id: u32,
}

impl SmodRegistry {
    /// Create an empty registry.
    pub fn new() -> SmodRegistry {
        SmodRegistry {
            modules: BTreeMap::new(),
            next_id: 1,
        }
    }

    /// Allocate the next module id.
    pub fn allocate_id(&mut self) -> ModuleId {
        let id = ModuleId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Insert a registered module.
    pub fn insert(&mut self, module: RegisteredModule) {
        self.modules.insert(module.id, module);
    }

    /// Look up by id.
    pub fn get(&self, id: ModuleId) -> SysResult<&RegisteredModule> {
        self.modules.get(&id).ok_or(Errno::ENOENT)
    }

    /// Mutable lookup by id.
    pub fn get_mut(&mut self, id: ModuleId) -> SysResult<&mut RegisteredModule> {
        self.modules.get_mut(&id).ok_or(Errno::ENOENT)
    }

    /// Remove a module.
    pub fn remove(&mut self, id: ModuleId) -> SysResult<RegisteredModule> {
        self.modules.remove(&id).ok_or(Errno::ENOENT)
    }

    /// Find a module by name and version (`sys_smod_find`).  A version of 0
    /// matches the highest registered version of that name.
    pub fn find(&self, name: &str, version: u32) -> SysResult<ModuleId> {
        let mut best: Option<(u32, ModuleId)> = None;
        for m in self.modules.values() {
            if m.package.image.name != name {
                continue;
            }
            let v = m.package.image.version.0;
            if version == 0 {
                if best.map(|(bv, _)| v > bv).unwrap_or(true) {
                    best = Some((v, m.id));
                }
            } else if v == version {
                return Ok(m.id);
            }
        }
        best.map(|(_, id)| id).ok_or(Errno::ENOENT)
    }

    /// Number of registered modules.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Iterate over the registered modules.
    pub fn iter(&self) -> impl Iterator<Item = &RegisteredModule> {
        self.modules.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secmod_crypto::KeyStore;
    use secmod_module::builder::ModuleBuilder;

    fn registered(name: &str, version: u32, id: u32) -> RegisteredModule {
        let mut b = ModuleBuilder::new(name, version);
        b.add_function(secmod_module::builder::FunctionSpec::new("f", 8));
        let image = b.build(false).unwrap();
        let ks = KeyStore::new(b"test");
        let key = ks.generate("k", 16).unwrap();
        let pkg = SmodPackage::seal_unencrypted(&image, b"mac").unwrap();
        RegisteredModule {
            id: ModuleId(id),
            package: pkg,
            plaintext: image,
            key,
            policy: PolicyEngine::new(),
            functions: FunctionTable::new(),
            registered_by_uid: 0,
            sessions_started: 0,
            calls_dispatched: 0,
        }
    }

    #[test]
    fn function_table_register_and_lookup() {
        let mut t = FunctionTable::new();
        assert!(t.is_empty());
        t.register(0, |_ctx, args| Ok(args.to_vec()));
        t.register(1, |_ctx, _args| Ok(vec![42]));
        assert_eq!(t.len(), 2);
        assert!(t.get(0).is_some());
        assert!(t.get(1).is_some());
        assert!(t.get(2).is_none());
    }

    #[test]
    fn registry_find_by_name_and_version() {
        let mut r = SmodRegistry::new();
        let id1 = r.allocate_id();
        let id2 = r.allocate_id();
        let id3 = r.allocate_id();
        assert_eq!(id1, ModuleId(1));
        let mut m1 = registered("libc", 1, 1);
        m1.id = id1;
        let mut m2 = registered("libc", 2, 2);
        m2.id = id2;
        let mut m3 = registered("libm", 1, 3);
        m3.id = id3;
        r.insert(m1);
        r.insert(m2);
        r.insert(m3);

        assert_eq!(r.len(), 3);
        assert_eq!(r.find("libc", 1).unwrap(), id1);
        assert_eq!(r.find("libc", 2).unwrap(), id2);
        // version 0 = latest
        assert_eq!(r.find("libc", 0).unwrap(), id2);
        assert_eq!(r.find("libm", 0).unwrap(), id3);
        assert_eq!(r.find("libc", 9).unwrap_err(), Errno::ENOENT);
        assert_eq!(r.find("libz", 0).unwrap_err(), Errno::ENOENT);

        assert!(r.get(id1).is_ok());
        r.remove(id1).unwrap();
        assert_eq!(r.get(id1).unwrap_err(), Errno::ENOENT);
        assert_eq!(r.remove(id1).unwrap_err(), Errno::ENOENT);
    }
}
