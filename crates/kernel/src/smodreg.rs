//! The kernel's SecModule registry and the function bodies the handle
//! executes.
//!
//! "A separate tool chain registers the SecModule m with the kernel, which
//! must keep track of the registered SecModules" (§3).  The registry maps
//! `(name, version)` to a [`RegisteredModule`]: the sealed package delivered
//! by the toolchain, the kernel-only key that unseals it, the access policy,
//! and — because this is a simulation rather than real machine code — a
//! table of Rust closures standing in for the functions held in the module
//! text.  The closures run "in the handle": they receive a [`HandleCtx`]
//! that exposes the handle's view of the shared client memory, exactly the
//! access a real SecModule function would have.

use crate::clock::StripedCounter;
use crate::errno::Errno;
use crate::proc::Pid;
use crate::SysResult;
use parking_lot::RwLock;
use secmod_crypto::keystore::KeyHandle;
use secmod_module::{ModuleId, ModuleImage, SmodPackage};
use secmod_policy::Gateway;
use secmod_vm::{Vaddr, VmSpace};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU32, Ordering::Relaxed};
use std::sync::Arc;

/// The execution context a module function body receives: the handle's
/// address space (which shares data/heap/stack with the client) plus the
/// client's space for peer-fault resolution.
pub struct HandleCtx<'a> {
    /// The handle process's address space.
    pub handle_vm: &'a mut VmSpace,
    /// The client process's address space (read-only reference used for
    /// peer-fault sharing).
    pub client_vm: &'a VmSpace,
    /// Pid of the client on whose behalf the call executes.
    pub client_pid: Pid,
    /// Extra simulated nanoseconds the body wants charged (e.g. a function
    /// that itself performs a syscall).
    pub extra_ns: u64,
}

impl<'a> HandleCtx<'a> {
    /// Read bytes from the shared address space.
    pub fn read(&mut self, addr: Vaddr, len: usize) -> SysResult<Vec<u8>> {
        self.handle_vm
            .read_bytes_with_peer(addr, len, Some(self.client_vm))
            .map_err(Errno::from)
    }

    /// Write bytes into the shared address space (visible to the client).
    pub fn write(&mut self, addr: Vaddr, data: &[u8]) -> SysResult<()> {
        self.handle_vm
            .write_bytes_with_peer(addr, data, Some(self.client_vm))
            .map_err(Errno::from)
    }

    /// Read a little-endian `u64` from shared memory.
    pub fn read_u64(&mut self, addr: Vaddr) -> SysResult<u64> {
        let bytes = self.read(addr, 8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes read")))
    }

    /// Write a little-endian `u64` to shared memory.
    pub fn write_u64(&mut self, addr: Vaddr, value: u64) -> SysResult<()> {
        self.write(addr, &value.to_le_bytes())
    }

    /// Charge extra simulated time to this call (e.g. the body of
    /// `SMOD-getpid` performing the real `getpid` work).
    pub fn charge_ns(&mut self, ns: u64) {
        self.extra_ns += ns;
    }
}

/// A function body: takes the execution context and the marshalled argument
/// bytes from the shared stack, returns the marshalled result bytes.
pub type FunctionBody = Arc<dyn Fn(&mut HandleCtx<'_>, &[u8]) -> SysResult<Vec<u8>> + Send + Sync>;

/// The table of function bodies for one module, keyed by function id
/// (matching the module's stub table).
#[derive(Clone, Default)]
pub struct FunctionTable {
    bodies: HashMap<u32, FunctionBody>,
}

impl std::fmt::Debug for FunctionTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FunctionTable({} functions)", self.bodies.len())
    }
}

impl FunctionTable {
    /// Create an empty table.
    pub fn new() -> FunctionTable {
        FunctionTable::default()
    }

    /// Register a body for `func_id`.
    pub fn register<F>(&mut self, func_id: u32, body: F)
    where
        F: Fn(&mut HandleCtx<'_>, &[u8]) -> SysResult<Vec<u8>> + Send + Sync + 'static,
    {
        self.bodies.insert(func_id, Arc::new(body));
    }

    /// Look up a body.
    pub fn get(&self, func_id: u32) -> Option<FunctionBody> {
        self.bodies.get(&func_id).cloned()
    }

    /// Number of registered bodies.
    pub fn len(&self) -> usize {
        self.bodies.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.bodies.is_empty()
    }
}

/// A module registered with the kernel.
///
/// Shared (`Arc`) between the registry and in-flight syscalls: everything
/// set at registration time is immutable, the per-module statistics are
/// atomics, and the access policy lives inside a concurrent
/// [`Gateway`] whose sharded decision cache serves the per-call check of
/// `sys_smod_call` — the gateway is *inside* the kernel's dispatch path,
/// the way the LSM access vector cache sits inside the hook, not in front
/// of it.
pub struct RegisteredModule {
    /// The module id assigned at registration.
    pub id: ModuleId,
    /// The sealed package as delivered by the toolchain (text possibly
    /// encrypted).
    pub package: SmodPackage,
    /// The plaintext image — exists only inside the kernel, handed only to
    /// handle processes.
    pub plaintext: ModuleImage,
    /// The key that seals/unseals the module text (kernel key store handle).
    pub key: KeyHandle,
    /// The access policy behind a concurrent, decision-caching gateway.
    /// Every session start and every call is checked here; concurrent
    /// sessions against this module share this one gateway (and therefore
    /// its cache) instead of re-checking independently.
    pub gateway: Gateway,
    /// AST node count of the policy at registration time, used by the cost
    /// model to charge uncached (full fixpoint) policy evaluations.
    pub policy_complexity: usize,
    /// Function bodies executed by the handle.
    pub functions: FunctionTable,
    /// Uid of the principal that registered the module (may remove it).
    pub registered_by_uid: u32,
    sessions_started: StripedCounter,
    calls_dispatched: StripedCounter,
}

impl RegisteredModule {
    /// Assemble a registered module around an already-built gateway
    /// (`Gateway::new(policy, cache_config)` is the usual entry point).
    pub fn new(
        id: ModuleId,
        package: SmodPackage,
        plaintext: ModuleImage,
        key: KeyHandle,
        gateway: Gateway,
        functions: FunctionTable,
        registered_by_uid: u32,
    ) -> RegisteredModule {
        let policy_complexity = gateway.with_engine(|e| e.total_complexity());
        RegisteredModule {
            id,
            package,
            plaintext,
            key,
            gateway,
            policy_complexity,
            functions,
            registered_by_uid,
            sessions_started: StripedCounter::new(),
            calls_dispatched: StripedCounter::new(),
        }
    }

    /// Number of sessions ever started against this module.
    pub fn sessions_started(&self) -> u64 {
        self.sessions_started.sum()
    }

    /// Number of calls dispatched against this module.
    pub fn calls_dispatched(&self) -> u64 {
        self.calls_dispatched.sum()
    }

    /// Record a session start (hint: the client pid, for striping).
    pub(crate) fn note_session_started(&self, hint: u64) {
        self.sessions_started.add(hint, 1);
    }

    /// Record a dispatched call (hint: the caller pid, for striping).
    pub(crate) fn note_call_dispatched(&self, hint: u64) {
        self.calls_dispatched.add(hint, 1);
    }

    /// Record `n` dispatched calls at once (the batched path counts per
    /// chunk instead of per entry).
    pub(crate) fn note_calls_dispatched(&self, hint: u64, n: u64) {
        self.calls_dispatched.add(hint, n);
    }

    /// The per-call credential/policy question, asked of this module's
    /// gateway: may `principal` (acting for `uid` in `app_domain`)
    /// invoke `operation`? Returns `(allowed, tier)` where the tier says
    /// which layer of the decision stack answered (thread-local L0,
    /// sharded cache, or the engine); a missing principal denies without
    /// consulting the gateway, exactly as an engine query with no
    /// requesters would. Every dispatch path (single-call fast and slow,
    /// batched) funnels through here so the request shape cannot diverge
    /// between them.
    pub(crate) fn check_operation(
        &self,
        app_domain: &str,
        principal: Option<&secmod_policy::Principal>,
        uid: u32,
        operation: &str,
    ) -> (bool, secmod_policy::DecisionTier) {
        match principal {
            // No principal denies without consulting the gateway; billed as
            // an engine-tier (uncached) decision, as before.
            None => (false, secmod_policy::DecisionTier::Engine),
            Some(principal) => {
                let request = secmod_policy::AccessRequest {
                    requesters: std::slice::from_ref(principal),
                    app_domain,
                    module: &self.package.image.name,
                    version: self.package.image.version.0,
                    operation,
                    uid: uid as i64,
                };
                self.gateway.is_allowed_tiered(&request)
            }
        }
    }
}

impl std::fmt::Debug for RegisteredModule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegisteredModule")
            .field("id", &self.id)
            .field("name", &self.package.image.name)
            .field("version", &self.package.image.version)
            .field("functions", &self.functions.len())
            .finish()
    }
}

/// The registry of all SecModules known to the kernel.
///
/// The module table sits behind a `RwLock`; lookups on the dispatch path
/// take the read lock just long enough to clone the module's `Arc`, so
/// registration/removal (write-locked, rare) never stalls in-flight calls
/// for long and concurrent dispatches never contend with each other here.
#[derive(Default)]
pub struct SmodRegistry {
    modules: RwLock<BTreeMap<ModuleId, Arc<RegisteredModule>>>,
    next_id: AtomicU32,
}

impl std::fmt::Debug for SmodRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmodRegistry")
            .field("modules", &self.len())
            .finish()
    }
}

impl SmodRegistry {
    /// Create an empty registry.
    pub fn new() -> SmodRegistry {
        SmodRegistry {
            modules: RwLock::new(BTreeMap::new()),
            next_id: AtomicU32::new(1),
        }
    }

    /// Allocate the next module id.
    pub fn allocate_id(&self) -> ModuleId {
        ModuleId(self.next_id.fetch_add(1, Relaxed))
    }

    /// Insert a registered module.
    pub fn insert(&self, module: RegisteredModule) {
        self.modules.write().insert(module.id, Arc::new(module));
    }

    /// Look up by id, returning a shared handle usable without holding any
    /// registry lock.
    pub fn get(&self, id: ModuleId) -> SysResult<Arc<RegisteredModule>> {
        self.modules.read().get(&id).cloned().ok_or(Errno::ENOENT)
    }

    /// Remove a module.
    pub fn remove(&self, id: ModuleId) -> SysResult<Arc<RegisteredModule>> {
        self.modules.write().remove(&id).ok_or(Errno::ENOENT)
    }

    /// Remove a module only if `may_remove()` holds, evaluated *under the
    /// registry write lock*. Together with [`SmodRegistry::if_present`]
    /// (whose closure runs under the read lock) this closes the
    /// check-then-act window between "no sessions are active" and an
    /// in-flight session establishment: the establishment publishes its
    /// session while read-locked here, so this write-locked check either
    /// sees that session (and refuses with `EBUSY`) or excludes it until
    /// the removal is done (and the establishment's re-check then fails).
    pub fn remove_if(
        &self,
        id: ModuleId,
        may_remove: impl FnOnce() -> bool,
    ) -> SysResult<Arc<RegisteredModule>> {
        let mut modules = self.modules.write();
        if !modules.contains_key(&id) {
            return Err(Errno::ENOENT);
        }
        if !may_remove() {
            return Err(Errno::EBUSY);
        }
        modules.remove(&id).ok_or(Errno::ENOENT)
    }

    /// Run `f` while holding the registry read lock, provided `id` is
    /// (still) registered. See [`SmodRegistry::remove_if`] for the
    /// invariant this pair maintains.
    pub fn if_present<R>(&self, id: ModuleId, f: impl FnOnce() -> R) -> SysResult<R> {
        let modules = self.modules.read();
        if !modules.contains_key(&id) {
            return Err(Errno::ENOENT);
        }
        Ok(f())
    }

    /// Find a module by name and version (`sys_smod_find`).  A version of 0
    /// matches the highest registered version of that name.
    pub fn find(&self, name: &str, version: u32) -> SysResult<ModuleId> {
        let modules = self.modules.read();
        let mut best: Option<(u32, ModuleId)> = None;
        for m in modules.values() {
            if m.package.image.name != name {
                continue;
            }
            let v = m.package.image.version.0;
            if version == 0 {
                if best.map(|(bv, _)| v > bv).unwrap_or(true) {
                    best = Some((v, m.id));
                }
            } else if v == version {
                return Ok(m.id);
            }
        }
        best.map(|(_, id)| id).ok_or(Errno::ENOENT)
    }

    /// Number of registered modules.
    pub fn len(&self) -> usize {
        self.modules.read().len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.modules.read().is_empty()
    }

    /// Snapshot of the registered modules (shared handles).
    pub fn snapshot(&self) -> Vec<Arc<RegisteredModule>> {
        self.modules.read().values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secmod_crypto::KeyStore;
    use secmod_module::builder::ModuleBuilder;
    use secmod_policy::{CacheConfig, PolicyEngine};

    fn registered(name: &str, version: u32, id: u32) -> RegisteredModule {
        let mut b = ModuleBuilder::new(name, version);
        b.add_function(secmod_module::builder::FunctionSpec::new("f", 8));
        let image = b.build(false).unwrap();
        let ks = KeyStore::new(b"test");
        let key = ks.generate("k", 16).unwrap();
        let pkg = SmodPackage::seal_unencrypted(&image, b"mac").unwrap();
        RegisteredModule::new(
            ModuleId(id),
            pkg,
            image,
            key,
            Gateway::new(PolicyEngine::new(), CacheConfig::default()),
            FunctionTable::new(),
            0,
        )
    }

    #[test]
    fn function_table_register_and_lookup() {
        let mut t = FunctionTable::new();
        assert!(t.is_empty());
        t.register(0, |_ctx, args| Ok(args.to_vec()));
        t.register(1, |_ctx, _args| Ok(vec![42]));
        assert_eq!(t.len(), 2);
        assert!(t.get(0).is_some());
        assert!(t.get(1).is_some());
        assert!(t.get(2).is_none());
    }

    #[test]
    fn registry_find_by_name_and_version() {
        let r = SmodRegistry::new();
        let id1 = r.allocate_id();
        let id2 = r.allocate_id();
        let id3 = r.allocate_id();
        assert_eq!(id1, ModuleId(1));
        let mut m1 = registered("libc", 1, 1);
        m1.id = id1;
        let mut m2 = registered("libc", 2, 2);
        m2.id = id2;
        let mut m3 = registered("libm", 1, 3);
        m3.id = id3;
        r.insert(m1);
        r.insert(m2);
        r.insert(m3);

        assert_eq!(r.len(), 3);
        assert_eq!(r.find("libc", 1).unwrap(), id1);
        assert_eq!(r.find("libc", 2).unwrap(), id2);
        // version 0 = latest
        assert_eq!(r.find("libc", 0).unwrap(), id2);
        assert_eq!(r.find("libm", 0).unwrap(), id3);
        assert_eq!(r.find("libc", 9).unwrap_err(), Errno::ENOENT);
        assert_eq!(r.find("libz", 0).unwrap_err(), Errno::ENOENT);

        assert!(r.get(id1).is_ok());
        r.remove(id1).unwrap();
        assert_eq!(r.get(id1).unwrap_err(), Errno::ENOENT);
        assert_eq!(r.remove(id1).unwrap_err(), Errno::ENOENT);
    }
}
