//! The process table.
//!
//! Concurrency layout: the pid → process map is **sharded** — 16
//! independent `RwLock`ed maps, shard chosen by mixing the pid — and every
//! process body sits behind its own `Mutex` inside an `Arc`. Syscall paths
//! take `&self`, briefly read-lock one shard to clone the `Arc`, and
//! serialise only against other operations on the *same* process;
//! concurrent dispatches on different pids touch different shard lock
//! words, so nothing bounces a shared cache line per call. When two
//! processes must be held at once (the client/handle pair of a dispatch),
//! the mutexes are always acquired in ascending pid order so concurrent
//! pair operations cannot deadlock.

use crate::cred::Credential;
use crate::errno::Errno;
use crate::proc::{Pid, ProcState, Process};
use crate::SysResult;
use parking_lot::{Mutex, RwLock};
use secmod_vm::VmSpace;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering::Relaxed};
use std::sync::Arc;

/// A shared handle to one process's lock.
pub type ProcRef = Arc<Mutex<Process>>;

const SHARDS: usize = 16;

fn shard_of(pid: Pid) -> usize {
    crate::clock::stripe_index(pid.0 as u64, SHARDS)
}

/// The kernel's table of all processes.
#[derive(Debug)]
pub struct ProcessTable {
    shards: [RwLock<BTreeMap<Pid, ProcRef>>; SHARDS],
    next_pid: AtomicU32,
}

impl Default for ProcessTable {
    fn default() -> Self {
        ProcessTable::new()
    }
}

impl ProcessTable {
    /// Create an empty table.  Pids start at 1 (the simulated `init`).
    pub fn new() -> ProcessTable {
        ProcessTable {
            shards: std::array::from_fn(|_| RwLock::new(BTreeMap::new())),
            next_pid: AtomicU32::new(1),
        }
    }

    fn shard(&self, pid: Pid) -> &RwLock<BTreeMap<Pid, ProcRef>> {
        &self.shards[shard_of(pid)]
    }

    /// Allocate the next pid.
    pub fn allocate_pid(&self) -> Pid {
        Pid(self.next_pid.fetch_add(1, Relaxed))
    }

    /// Insert a brand-new process built around `vm`.
    pub fn spawn(&self, ppid: Pid, name: &str, cred: Credential, vm: VmSpace) -> Pid {
        let pid = self.allocate_pid();
        self.shard(pid).write().insert(
            pid,
            Arc::new(Mutex::new(Process::new(pid, ppid, name, cred, vm))),
        );
        pid
    }

    /// Insert an already-constructed process (used by fork).
    pub fn insert(&self, process: Process) {
        self.shard(process.pid)
            .write()
            .insert(process.pid, Arc::new(Mutex::new(process)));
    }

    /// Number of processes (including zombies).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Look up a process, returning a shared handle to its lock.
    pub fn get(&self, pid: Pid) -> SysResult<ProcRef> {
        self.shard(pid)
            .read()
            .get(&pid)
            .cloned()
            .ok_or(Errno::ESRCH)
    }

    /// Run `f` against a shared view of the process.
    pub fn with<R>(&self, pid: Pid, f: impl FnOnce(&Process) -> R) -> SysResult<R> {
        let proc_ref = self.get(pid)?;
        let guard = proc_ref.lock();
        Ok(f(&guard))
    }

    /// Run `f` against an exclusive view of the process.
    pub fn with_mut<R>(&self, pid: Pid, f: impl FnOnce(&mut Process) -> R) -> SysResult<R> {
        let proc_ref = self.get(pid)?;
        let mut guard = proc_ref.lock();
        Ok(f(&mut guard))
    }

    /// Does a process exist?
    pub fn exists(&self, pid: Pid) -> bool {
        self.shard(pid).read().contains_key(&pid)
    }

    /// Exclusive access to *two distinct* processes at once (needed by
    /// `uvmspace_force_share` and the dispatch path, which operate on a
    /// client/handle pair). Locks are taken in ascending pid order
    /// regardless of argument order, so concurrent pair operations cannot
    /// deadlock; `f` receives the processes in argument order.
    pub fn with_pair_mut<R>(
        &self,
        a: Pid,
        b: Pid,
        f: impl FnOnce(&mut Process, &mut Process) -> R,
    ) -> SysResult<R> {
        if a == b {
            return Err(Errno::EINVAL);
        }
        let (ra, rb) = (self.get(a)?, self.get(b)?);
        lock_pair_ordered(a, &ra, b, &rb, f)
    }

    /// Remove a process entirely (after it has been reaped). Returns the
    /// process body if no other holder keeps it alive.
    pub fn remove(&self, pid: Pid) -> Option<Process> {
        let removed = self.shard(pid).write().remove(&pid)?;
        match Arc::try_unwrap(removed) {
            Ok(mutex) => Some(mutex.into_inner()),
            Err(_) => None,
        }
    }

    /// All pids currently in the table, in ascending order.
    pub fn pids(&self) -> Vec<Pid> {
        let mut pids: Vec<Pid> = self
            .shards
            .iter()
            .flat_map(|s| s.read().keys().copied().collect::<Vec<_>>())
            .collect();
        pids.sort_unstable();
        pids
    }

    /// Children of `parent`.
    pub fn children_of(&self, parent: Pid) -> Vec<Pid> {
        self.scan(|p| if p.ppid == parent { Some(p.pid) } else { None })
    }

    /// First zombie child of `parent` (in pid order), if any.
    pub fn zombie_child_of(&self, parent: Pid) -> Option<(Pid, i32)> {
        self.scan_first(|p| match p.state {
            ProcState::Zombie(status) if p.ppid == parent => Some((p.pid, status)),
            _ => None,
        })
    }

    /// Visit every process (in pid order, each under its own lock) and
    /// collect the non-`None` results of `f`.
    pub fn scan<R>(&self, mut f: impl FnMut(&Process) -> Option<R>) -> Vec<R> {
        let mut snapshot: Vec<(Pid, ProcRef)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .iter()
                    .map(|(pid, r)| (*pid, r.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        snapshot.sort_unstable_by_key(|(pid, _)| *pid);
        snapshot
            .iter()
            .filter_map(|(_, proc_ref)| f(&proc_ref.lock()))
            .collect()
    }

    /// Visit processes in pid order and return the first non-`None` result
    /// of `f`, unlocking and stopping as soon as it is found (the
    /// `find_map` analogue of [`ProcessTable::scan`]).
    pub fn scan_first<R>(&self, mut f: impl FnMut(&Process) -> Option<R>) -> Option<R> {
        let mut snapshot: Vec<(Pid, ProcRef)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .iter()
                    .map(|(pid, r)| (*pid, r.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        snapshot.sort_unstable_by_key(|(pid, _)| *pid);
        snapshot
            .iter()
            .find_map(|(_, proc_ref)| f(&proc_ref.lock()))
    }
}

/// Lock two distinct processes' mutexes in ascending pid order (deadlock
/// avoidance) and run `f` with them in *argument* order. Shared with the
/// session dispatch path, which holds `ProcRef`s directly.
pub(crate) fn lock_pair_ordered<R>(
    a: Pid,
    ra: &ProcRef,
    b: Pid,
    rb: &ProcRef,
    f: impl FnOnce(&mut Process, &mut Process) -> R,
) -> SysResult<R> {
    if a == b {
        return Err(Errno::EINVAL);
    }
    if a < b {
        let mut ga = ra.lock();
        let mut gb = rb.lock();
        Ok(f(&mut ga, &mut gb))
    } else {
        let mut gb = rb.lock();
        let mut ga = ra.lock();
        Ok(f(&mut ga, &mut gb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secmod_vm::Layout;
    use std::sync::Arc;

    fn vm(name: &str) -> VmSpace {
        VmSpace::new_user(name, Layout::tiny(), Arc::new(vec![0u8; 64]), 2, 2).unwrap()
    }

    #[test]
    fn spawn_and_lookup() {
        let t = ProcessTable::new();
        assert!(t.is_empty());
        let init = t.spawn(Pid(0), "init", Credential::root(), vm("init"));
        let client = t.spawn(init, "client", Credential::user(1000, 100), vm("client"));
        assert_eq!(t.len(), 2);
        assert_eq!(init, Pid(1));
        assert_eq!(client, Pid(2));
        assert_eq!(t.with(client, |p| p.name.clone()).unwrap(), "client");
        assert_eq!(t.get(Pid(99)).unwrap_err(), Errno::ESRCH);
        assert!(t.exists(init));
        assert_eq!(t.children_of(init), vec![client]);
        assert_eq!(t.pids(), vec![init, client]);
    }

    #[test]
    fn pair_locking() {
        let t = ProcessTable::new();
        let a = t.spawn(Pid(0), "a", Credential::root(), vm("a"));
        let b = t.spawn(Pid(0), "b", Credential::root(), vm("b"));
        t.with_pair_mut(a, b, |pa, pb| {
            pa.cpu_time_ns = 10;
            pb.cpu_time_ns = 20;
        })
        .unwrap();
        // Argument order is preserved even though lock order is by pid.
        t.with_pair_mut(b, a, |pb, pa| {
            assert_eq!(pb.cpu_time_ns, 20);
            assert_eq!(pa.cpu_time_ns, 10);
        })
        .unwrap();
        assert_eq!(t.with(a, |p| p.cpu_time_ns).unwrap(), 10);
        assert_eq!(t.with(b, |p| p.cpu_time_ns).unwrap(), 20);
        assert_eq!(t.with_pair_mut(a, a, |_, _| ()).unwrap_err(), Errno::EINVAL);
        assert_eq!(
            t.with_pair_mut(a, Pid(99), |_, _| ()).unwrap_err(),
            Errno::ESRCH
        );
    }

    #[test]
    fn zombies_and_reaping() {
        let t = ProcessTable::new();
        let parent = t.spawn(Pid(0), "parent", Credential::root(), vm("p"));
        let child = t.spawn(parent, "child", Credential::root(), vm("c"));
        assert!(t.zombie_child_of(parent).is_none());
        t.with_mut(child, |p| p.state = ProcState::Zombie(3))
            .unwrap();
        assert_eq!(t.zombie_child_of(parent), Some((child, 3)));
        let removed = t.remove(child).unwrap();
        assert_eq!(removed.pid, child);
        assert!(!t.exists(child));
        assert!(t.remove(child).is_none());
    }

    #[test]
    fn concurrent_pair_ops_do_not_deadlock() {
        let t = ProcessTable::new();
        let a = t.spawn(Pid(0), "a", Credential::root(), vm("a"));
        let b = t.spawn(Pid(0), "b", Credential::root(), vm("b"));
        let t = &t;
        std::thread::scope(|s| {
            for flip in [false, true, false, true] {
                s.spawn(move || {
                    for _ in 0..2_000 {
                        let (x, y) = if flip { (a, b) } else { (b, a) };
                        t.with_pair_mut(x, y, |px, py| {
                            px.cpu_time_ns += 1;
                            py.cpu_time_ns += 1;
                        })
                        .unwrap();
                    }
                });
            }
        });
        assert_eq!(t.with(a, |p| p.cpu_time_ns).unwrap(), 8_000);
        assert_eq!(t.with(b, |p| p.cpu_time_ns).unwrap(), 8_000);
    }
}
