//! The process table.

use crate::cred::Credential;
use crate::errno::Errno;
use crate::proc::{Pid, ProcState, Process};
use crate::SysResult;
use secmod_vm::VmSpace;
use std::collections::BTreeMap;

/// The kernel's table of all processes.
#[derive(Debug, Default)]
pub struct ProcessTable {
    procs: BTreeMap<Pid, Process>,
    next_pid: u32,
}

impl ProcessTable {
    /// Create an empty table.  Pids start at 1 (the simulated `init`).
    pub fn new() -> ProcessTable {
        ProcessTable {
            procs: BTreeMap::new(),
            next_pid: 1,
        }
    }

    /// Allocate the next pid.
    pub fn allocate_pid(&mut self) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        pid
    }

    /// Insert a brand-new process built around `vm`.
    pub fn spawn(&mut self, ppid: Pid, name: &str, cred: Credential, vm: VmSpace) -> Pid {
        let pid = self.allocate_pid();
        self.procs
            .insert(pid, Process::new(pid, ppid, name, cred, vm));
        pid
    }

    /// Insert an already-constructed process (used by fork).
    pub fn insert(&mut self, process: Process) {
        self.procs.insert(process.pid, process);
    }

    /// Number of processes (including zombies).
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Look up a process.
    pub fn get(&self, pid: Pid) -> SysResult<&Process> {
        self.procs.get(&pid).ok_or(Errno::ESRCH)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, pid: Pid) -> SysResult<&mut Process> {
        self.procs.get_mut(&pid).ok_or(Errno::ESRCH)
    }

    /// Does a process exist?
    pub fn exists(&self, pid: Pid) -> bool {
        self.procs.contains_key(&pid)
    }

    /// Mutable access to *two distinct* processes at once (needed by
    /// `uvmspace_force_share`, which operates on a client/handle pair).
    pub fn get_pair_mut(&mut self, a: Pid, b: Pid) -> SysResult<(&mut Process, &mut Process)> {
        if a == b {
            return Err(Errno::EINVAL);
        }
        if !self.procs.contains_key(&a) || !self.procs.contains_key(&b) {
            return Err(Errno::ESRCH);
        }
        // Split the BTreeMap borrow: remove the higher key temporarily is
        // avoided by using the standard disjoint-borrow trick over an
        // iterator of mutable references.
        let mut first: Option<&mut Process> = None;
        let mut second: Option<&mut Process> = None;
        for (pid, proc_ref) in self.procs.iter_mut() {
            if *pid == a {
                first = Some(proc_ref);
            } else if *pid == b {
                second = Some(proc_ref);
            }
        }
        match (first, second) {
            (Some(x), Some(y)) => Ok((x, y)),
            _ => Err(Errno::ESRCH),
        }
    }

    /// Remove a process entirely (after it has been reaped).
    pub fn remove(&mut self, pid: Pid) -> Option<Process> {
        self.procs.remove(&pid)
    }

    /// All pids currently in the table.
    pub fn pids(&self) -> Vec<Pid> {
        self.procs.keys().copied().collect()
    }

    /// Children of `parent`.
    pub fn children_of(&self, parent: Pid) -> Vec<Pid> {
        self.procs
            .values()
            .filter(|p| p.ppid == parent)
            .map(|p| p.pid)
            .collect()
    }

    /// First zombie child of `parent`, if any.
    pub fn zombie_child_of(&self, parent: Pid) -> Option<(Pid, i32)> {
        self.procs.values().find_map(|p| match p.state {
            ProcState::Zombie(status) if p.ppid == parent => Some((p.pid, status)),
            _ => None,
        })
    }

    /// Iterate over all processes.
    pub fn iter(&self) -> impl Iterator<Item = &Process> {
        self.procs.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secmod_vm::Layout;
    use std::sync::Arc;

    fn vm(name: &str) -> VmSpace {
        VmSpace::new_user(name, Layout::tiny(), Arc::new(vec![0u8; 64]), 2, 2).unwrap()
    }

    #[test]
    fn spawn_and_lookup() {
        let mut t = ProcessTable::new();
        assert!(t.is_empty());
        let init = t.spawn(Pid(0), "init", Credential::root(), vm("init"));
        let client = t.spawn(init, "client", Credential::user(1000, 100), vm("client"));
        assert_eq!(t.len(), 2);
        assert_eq!(init, Pid(1));
        assert_eq!(client, Pid(2));
        assert_eq!(t.get(client).unwrap().name, "client");
        assert_eq!(t.get(Pid(99)).unwrap_err(), Errno::ESRCH);
        assert!(t.exists(init));
        assert_eq!(t.children_of(init), vec![client]);
        assert_eq!(t.pids(), vec![init, client]);
    }

    #[test]
    fn pair_borrowing() {
        let mut t = ProcessTable::new();
        let a = t.spawn(Pid(0), "a", Credential::root(), vm("a"));
        let b = t.spawn(Pid(0), "b", Credential::root(), vm("b"));
        {
            let (pa, pb) = t.get_pair_mut(a, b).unwrap();
            pa.cpu_time_ns = 10;
            pb.cpu_time_ns = 20;
        }
        assert_eq!(t.get(a).unwrap().cpu_time_ns, 10);
        assert_eq!(t.get(b).unwrap().cpu_time_ns, 20);
        assert_eq!(t.get_pair_mut(a, a).unwrap_err(), Errno::EINVAL);
        assert_eq!(t.get_pair_mut(a, Pid(99)).unwrap_err(), Errno::ESRCH);
    }

    #[test]
    fn zombies_and_reaping() {
        let mut t = ProcessTable::new();
        let parent = t.spawn(Pid(0), "parent", Credential::root(), vm("p"));
        let child = t.spawn(parent, "child", Credential::root(), vm("c"));
        assert!(t.zombie_child_of(parent).is_none());
        t.get_mut(child).unwrap().state = ProcState::Zombie(3);
        assert_eq!(t.zombie_child_of(parent), Some((child, 3)));
        let removed = t.remove(child).unwrap();
        assert_eq!(removed.pid, child);
        assert!(!t.exists(child));
        assert!(t.remove(child).is_none());
    }
}
