//! Process credentials: the Unix identity plus the SecModule credential
//! blobs a client presents when requesting module access.

use secmod_policy::principal::Principal;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The credential attached to a process.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Credential {
    /// Effective user id.
    pub uid: u32,
    /// Effective group id.
    pub gid: u32,
    /// Supplementary groups.
    pub groups: Vec<u32>,
    /// Per-module SecModule credentials: module name → opaque key material
    /// identifying the principal the process acts as for that module.
    /// (The paper: the objects "that hold the name and version of the
    /// needed SecModules, as well as the credentials that allow access to
    /// it are linked in" to the client executable.)
    smod_credentials: BTreeMap<String, Vec<u8>>,
    /// The policy principal derived from each credential, computed once at
    /// attach time so the per-call check never re-hashes key material.
    smod_principals: BTreeMap<String, Principal>,
}

impl Credential {
    /// Root credentials.
    pub fn root() -> Credential {
        Credential {
            uid: 0,
            gid: 0,
            groups: Vec::new(),
            smod_credentials: BTreeMap::new(),
            smod_principals: BTreeMap::new(),
        }
    }

    /// An ordinary user credential.
    pub fn user(uid: u32, gid: u32) -> Credential {
        Credential {
            uid,
            gid,
            groups: Vec::new(),
            smod_credentials: BTreeMap::new(),
            smod_principals: BTreeMap::new(),
        }
    }

    /// Attach a SecModule credential for `module` (builder style). The
    /// policy principal is derived (SHA-256 of the key material) here,
    /// once, not on every access check.
    pub fn with_smod_credential(mut self, module: &str, key_material: &[u8]) -> Credential {
        self.smod_credentials
            .insert(module.to_string(), key_material.to_vec());
        self.smod_principals.insert(
            module.to_string(),
            Principal::from_key(&format!("uid{}", self.uid), key_material),
        );
        self
    }

    /// The raw credential material presented for `module`, if any.
    pub fn smod_credential(&self, module: &str) -> Option<&[u8]> {
        self.smod_credentials.get(module).map(|v| v.as_slice())
    }

    /// The policy principal this credential identifies for `module`
    /// (derived from the credential key material at attach time), if
    /// present.
    pub fn principal_for(&self, module: &str) -> Option<Principal> {
        self.smod_principals.get(module).cloned()
    }

    /// The 64-bit fingerprint of the principal this credential presents
    /// for `module`, without cloning the principal. The dispatch hot path
    /// compares this against the session's memoised prototype to verify —
    /// on every call, allocation-free — that the live credential still
    /// identifies the principal the session was established with.
    pub fn principal_fp64(&self, module: &str) -> Option<u64> {
        self.smod_principals.get(module).map(|p| p.fingerprint())
    }

    /// Does the credential carry any SecModule material at all?
    pub fn has_smod_credentials(&self) -> bool {
        !self.smod_credentials.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_lookup() {
        let c = Credential::user(1000, 100).with_smod_credential("libc", b"alice-key");
        assert_eq!(c.uid, 1000);
        assert!(c.has_smod_credentials());
        assert_eq!(c.smod_credential("libc"), Some(b"alice-key".as_slice()));
        assert_eq!(c.smod_credential("libm"), None);
        assert!(!Credential::root().has_smod_credentials());
    }

    #[test]
    fn principal_is_derived_from_key_material_not_name() {
        let a = Credential::user(1000, 100).with_smod_credential("libc", b"key-1");
        let b = Credential::user(1000, 100).with_smod_credential("libc", b"key-2");
        let pa = a.principal_for("libc").unwrap();
        let pb = b.principal_for("libc").unwrap();
        assert_ne!(pa.hex_fingerprint(), pb.hex_fingerprint());
        assert!(a.principal_for("libm").is_none());
        // Same key material → same principal, regardless of uid label.
        let c = Credential::user(2000, 100).with_smod_credential("libc", b"key-1");
        assert_eq!(
            a.principal_for("libc").unwrap().hex_fingerprint(),
            c.principal_for("libc").unwrap().hex_fingerprint()
        );
    }
}
