//! The syscall/dispatch cost model.
//!
//! The paper's Figure 8 measures four configurations on a 599 MHz Pentium
//! III under OpenBSD 3.6:
//!
//! | configuration        | µs/call  |
//! |----------------------|----------|
//! | native `getpid()`    | 0.658    |
//! | SMOD(getpid)         | 6.532    |
//! | SMOD(testincr)       | 6.407    |
//! | RPC(testincr), local | 63.23    |
//!
//! The default [`CostModel`] is calibrated so that the *simulated* backend
//! reproduces those magnitudes: a bare trap costs ~0.65 µs, and an
//! `smod_call` round trip (trap + credential check + message send + two
//! context switches + message receive + stub work) lands near ~6.4 µs.
//! The model is explicit and adjustable so ablation benchmarks can vary a
//! single component (e.g. policy complexity) and observe the effect.

use serde::{Deserialize, Serialize};

/// Per-operation costs in nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of entering and leaving the kernel (trap + return).
    pub syscall_trap_ns: u64,
    /// Additional cost of a trivial syscall body (e.g. `getpid`).
    pub trivial_syscall_ns: u64,
    /// One context switch between processes.
    pub context_switch_ns: u64,
    /// One SYSV `msgsnd`/`msgrcv` operation (already-awake receiver).
    pub msg_op_ns: u64,
    /// One shared-memory dispatch-ring slot hand-off (claim + copy +
    /// publish of a single submission or completion slot) as performed by
    /// a *resident* drainer that is already in kernel context. The
    /// caller-driven batched path still prices its per-entry hand-off as
    /// a msgsnd/msgrcv pair ([`CostModel::batched_dispatch_ns`]); the
    /// sweep path gets to use this much cheaper slot cost because the
    /// drainer never re-enters the kernel per entry — the
    /// interception-hoisting argument, in cost-model form.
    pub ring_slot_ns: u64,
    /// Handling one page fault (zero-fill or share).
    pub page_fault_ns: u64,
    /// Copying one byte of arguments/results across the user/kernel
    /// boundary.
    pub copy_per_byte_ns: u64,
    /// Evaluating one node of a policy condition expression.
    pub policy_per_node_ns: u64,
    /// Serving an access decision from the module gateway's sharded
    /// decision cache (one lookup), charged instead of
    /// `policy_per_node_ns × complexity` when the per-call check hits.
    /// Calibrated to the measured ~85 ns cached-hit cost of the gate.
    pub cached_decision_ns: u64,
    /// Fixed cost of the credential lookup + session validation done on
    /// every `smod_call`.
    pub credential_check_ns: u64,
    /// Cost of the handle-side stub (`smod_stub_receive`): switching to the
    /// secret stack, popping the kernel frame, relaying, restoring.
    pub stub_receive_ns: u64,
    /// Cost of the client-side assembly stub.
    pub stub_call_ns: u64,
    /// Cost of forcibly sharing one map entry during `uvmspace_force_share`.
    pub force_share_per_entry_ns: u64,
    /// Fixed cost of creating a process (fork) in the kernel.
    pub fork_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::pentium3_openbsd36()
    }
}

impl CostModel {
    /// Costs calibrated to the paper's test machine (599 MHz P-III,
    /// OpenBSD 3.6) so that the simulated Figure 8 reproduces the paper's
    /// magnitudes.
    pub const fn pentium3_openbsd36() -> CostModel {
        CostModel {
            syscall_trap_ns: 550,
            trivial_syscall_ns: 108,
            context_switch_ns: 1_450,
            msg_op_ns: 700,
            ring_slot_ns: 120,
            page_fault_ns: 2_500,
            copy_per_byte_ns: 6,
            policy_per_node_ns: 120,
            cached_decision_ns: 85,
            credential_check_ns: 300,
            stub_receive_ns: 350,
            stub_call_ns: 150,
            force_share_per_entry_ns: 4_000,
            fork_ns: 90_000,
        }
    }

    /// A zero-cost model (useful when a test only cares about behaviour).
    pub const fn free() -> CostModel {
        CostModel {
            syscall_trap_ns: 0,
            trivial_syscall_ns: 0,
            context_switch_ns: 0,
            msg_op_ns: 0,
            ring_slot_ns: 0,
            page_fault_ns: 0,
            copy_per_byte_ns: 0,
            policy_per_node_ns: 0,
            cached_decision_ns: 0,
            credential_check_ns: 0,
            stub_receive_ns: 0,
            stub_call_ns: 0,
            force_share_per_entry_ns: 0,
            fork_ns: 0,
        }
    }

    /// Modelled cost of a native `getpid()` call.
    pub fn getpid_cost(&self) -> u64 {
        self.syscall_trap_ns + self.trivial_syscall_ns
    }

    /// Modelled cost of one `smod_call` round trip, excluding the policy
    /// evaluation (which scales with the policy) and the function body.
    ///
    /// client stub → trap → credential check → msgsnd → context switch to
    /// handle → msgrcv → handle stub → … function … → msgsnd → context
    /// switch back → msgrcv → return from trap.
    pub fn smod_call_overhead(&self, arg_bytes: usize) -> u64 {
        self.stub_call_ns
            + self.syscall_trap_ns
            + self.credential_check_ns
            + 2 * self.msg_op_ns
            + 2 * self.context_switch_ns
            + self.stub_receive_ns
            + self.copy_per_byte_ns * arg_bytes as u64
    }

    /// Modelled *fixed* cost of one `sys_smod_call_batch` invocation
    /// draining `batch_len` entries, excluding per-entry policy/copy/body
    /// work (charged separately, exactly as in the single-call path).
    ///
    /// The single-call fixed work — client stub, trap, credential/session
    /// resolution, handle stub, two context switches — is paid **once per
    /// batch**; only the ring hand-off (the msgsnd/msgrcv analogue: one
    /// submission-slot pop and one completion-slot push) stays per entry.
    /// The per-entry share `batched_dispatch_ns(n) / n` is therefore
    /// strictly decreasing in `n`, approaching the pure hand-off cost —
    /// the io_uring/LSM-style amortisation argument, in cost-model form.
    /// `batched_dispatch_ns(1)` equals `smod_call_overhead(0)`: a batch of
    /// one buys nothing.
    pub fn batched_dispatch_ns(&self, batch_len: usize) -> u64 {
        let once_per_batch = self.stub_call_ns
            + self.syscall_trap_ns
            + self.credential_check_ns
            + self.stub_receive_ns
            + 2 * self.context_switch_ns;
        once_per_batch + 2 * self.msg_op_ns * batch_len as u64
    }

    /// Modelled *fixed* cost of one `sys_smod_sweep` invocation that
    /// resolved `sessions` ready sessions and dispatched `entries`
    /// checked entries across them, excluding per-entry policy/copy/body
    /// work (charged separately, exactly as on the batched path).
    ///
    /// Three tiers of amortisation, one per paper-motivated fixed cost:
    ///
    /// * **once per sweep** — the trap, the stubs and the context-switch
    ///   pair are paid a single time no matter how many sessions the
    ///   sweep visits; this is the multi-session analogue of
    ///   [`CostModel::batched_dispatch_ns`]'s once-per-batch term.
    /// * **once per session** — the credential/session resolution
    ///   ([`CostModel::credential_check_ns`]) is paid once per *session*
    ///   per sweep, not once per entry or once per batch invocation.
    /// * **per entry** — only the shared-memory ring slot hand-off
    ///   ([`CostModel::ring_slot_ns`], one submission pop + one
    ///   completion push) remains: the resident drainer consumes the
    ///   rings directly, with no msgsnd/msgrcv analogue per entry.
    ///
    /// `sweep_dispatch_ns(1, n)` is strictly below
    /// `batched_dispatch_ns(n)` for every `n >= 1` (same once-per-batch
    /// fixed term, cheaper hand-off), and the (64 sessions, batch 32)
    /// acceptance point of the `sweep_throughput` bench comes out ≥ 1.5x
    /// cheaper than 64 round-robined batched drains — both properties are
    /// unit-tested below.
    pub fn sweep_dispatch_ns(&self, sessions: usize, entries: usize) -> u64 {
        let once_per_sweep = self.stub_call_ns
            + self.syscall_trap_ns
            + self.stub_receive_ns
            + 2 * self.context_switch_ns;
        once_per_sweep
            + self.credential_check_ns * sessions as u64
            + 2 * self.ring_slot_ns * entries as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_reproduces_paper_magnitudes() {
        let m = CostModel::default();
        let getpid_us = m.getpid_cost() as f64 / 1000.0;
        let smod_us = m.smod_call_overhead(16) as f64 / 1000.0;
        // Paper: 0.658 µs and ~6.4-6.5 µs.  Allow generous bands — the point
        // is the magnitude and the ratio, not the third significant digit.
        assert!((0.4..1.0).contains(&getpid_us), "getpid {getpid_us} µs");
        assert!((5.0..8.0).contains(&smod_us), "smod {smod_us} µs");
        let ratio = smod_us / getpid_us;
        assert!((6.0..14.0).contains(&ratio), "smod/getpid ratio {ratio}");
    }

    #[test]
    fn free_model_charges_nothing() {
        let m = CostModel::free();
        assert_eq!(m.getpid_cost(), 0);
        assert_eq!(m.smod_call_overhead(1000), 0);
    }

    #[test]
    fn argument_size_increases_cost() {
        let m = CostModel::default();
        assert!(m.smod_call_overhead(4096) > m.smod_call_overhead(4));
    }

    #[test]
    fn batched_per_entry_cost_is_monotonically_decreasing() {
        let m = CostModel::default();
        // A batch of one is exactly a single call's fixed overhead.
        assert_eq!(m.batched_dispatch_ns(1), m.smod_call_overhead(0));
        let per_entry = |n: usize| m.batched_dispatch_ns(n) as f64 / n as f64;
        let sweep = [1usize, 8, 32, 128];
        for pair in sweep.windows(2) {
            assert!(
                per_entry(pair[1]) < per_entry(pair[0]),
                "per-entry cost not decreasing: {} ns at {} vs {} ns at {}",
                per_entry(pair[1]),
                pair[1],
                per_entry(pair[0]),
                pair[0],
            );
        }
        // The amortised floor is the pure per-entry ring hand-off.
        assert!(per_entry(4096) < 2.0 * m.msg_op_ns as f64 + 2.0);
    }

    #[test]
    fn sweep_is_strictly_cheaper_than_the_batched_path_it_subsumes() {
        let m = CostModel::default();
        // A one-session sweep beats a one-session batch at every size:
        // identical once-per-trap term, cheaper per-entry hand-off.
        for n in [1usize, 8, 32, 128, 4096] {
            assert!(
                m.sweep_dispatch_ns(1, n) < m.batched_dispatch_ns(n),
                "sweep(1, {n}) not below batch({n})"
            );
        }
        // The per-entry share keeps falling as more sessions join a sweep
        // (the per-session credential term amortises the trap; entries
        // amortise everything else).
        let per_entry = |s: usize, n: usize| m.sweep_dispatch_ns(s, s * n) as f64 / (s * n) as f64;
        assert!(per_entry(64, 32) < per_entry(8, 32));
        assert!(per_entry(8, 32) < per_entry(1, 32));
    }

    #[test]
    fn sweep_acceptance_point_meets_the_bar() {
        // The sweep_throughput bench's acceptance point: 64 sessions with
        // 32 entries each, one sweep vs 64 round-robined batched drains at
        // equal total entries. The model must put the sweep >= 1.5x ahead.
        let m = CostModel::default();
        let round_robin = 64 * m.batched_dispatch_ns(32);
        let sweep = m.sweep_dispatch_ns(64, 64 * 32);
        let ratio = round_robin as f64 / sweep as f64;
        assert!(
            ratio >= 1.5,
            "sweep amortisation ratio {ratio:.2} below the 1.5x bar \
             ({round_robin} ns round-robin vs {sweep} ns sweep)"
        );
    }
}
