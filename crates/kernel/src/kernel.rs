//! The kernel proper: state plus the ordinary (non-SecModule) syscalls.
//!
//! The SecModule syscall family of Figure 4 is implemented in
//! [`crate::smod`] as further methods on [`Kernel`].
//!
//! # Concurrency
//!
//! Every syscall takes `&self`: the kernel is a concurrency-bearing core
//! that many threads drive at once. Who holds which lock:
//!
//! * [`ProcessTable`] — 16 `RwLock`-sharded pid maps (shard write-locked
//!   only by spawn/fork/reap), one `Mutex` per process body. Pair
//!   operations (dispatch, force-share) lock both members in ascending
//!   pid order.
//! * [`SmodRegistry`] — `RwLock` around the module table; sessions pin
//!   their module's `Arc` at establishment, so dispatch never touches the
//!   registry lock at all.
//! * sessions — 16 `RwLock`-sharded session maps; per-session counters
//!   and handshake state are atomics inside the shared `Session`, which
//!   also pins both processes' lock handles for the dispatch pair.
//! * [`MsgSubsystem`], [`Tracer`], [`secmod_crypto::KeyStore`] — each
//!   behind its own `Mutex` (tracing is skipped entirely when disabled).
//! * clock and context-switch counter — cache-line-striped atomics
//!   (stripe by charged pid, sum on read); `smod_epoch` — one atomic,
//!   loaded on the hot path and RMW'd only by detach/remove.
//!
//! Lock ordering: process-map shard / session shard read → process pair;
//! no path holds a process lock while taking a registry or session
//! *write* lock.

use crate::clock::{SimClock, StripedCounter};
use crate::cost::CostModel;
use crate::cred::Credential;
use crate::errno::Errno;
use crate::msgqueue::{Message, MsgQueueId, MsgSubsystem};
use crate::proc::{Pid, ProcState, Process};
use crate::smod::SessionTable;
use crate::smodreg::SmodRegistry;
use crate::table::ProcessTable;
use crate::trace::{Event, Tracer};
use crate::SysResult;
use secmod_crypto::KeyStore;
use secmod_obs::DispatchMetrics;
use secmod_policy::CacheConfig;
use secmod_vm::obreak::sys_obreak;
use secmod_vm::{Layout, Vaddr, VmSpace};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

/// The simulated kernel.
pub struct Kernel {
    /// All processes.
    pub procs: ProcessTable,
    /// SYSV message queues.
    pub msgs: MsgSubsystem,
    /// The simulated clock.
    pub clock: SimClock,
    /// The cost model used to charge operations to the clock (immutable
    /// after boot).
    pub cost: CostModel,
    /// The kernel key store (module keys live only here).
    pub keystore: KeyStore,
    /// The SecModule registry; each registered module embeds its shared
    /// decision-gateway.
    pub registry: SmodRegistry,
    /// Active SecModule sessions.
    pub sessions: SessionTable,
    /// Event tracer.
    pub tracer: Tracer,
    /// Default address-space layout for new processes (immutable after
    /// boot).
    pub layout: Layout,
    /// Decision-cache sizing applied to every module registered through
    /// `sys_smod_add`. Set before registering modules;
    /// [`CacheConfig::disabled`] yields the uncached baseline kernel.
    pub gate_config: CacheConfig,
    /// The dispatch observability registry: per-flavor latency
    /// histograms plus counters, fed by every dispatch path (syscall,
    /// batch, sweep, plane, async). Shared as an `Arc` so the plane's
    /// drainer threads and the async reactor record into the same
    /// registry the `Dispatcher::metrics()` accessor exposes.
    pub metrics: Arc<DispatchMetrics>,
    pub(crate) next_session: AtomicU32,
    context_switches: StripedCounter,
    /// Monotone epoch bumped by every SecModule event that can invalidate a
    /// cached access decision (`sys_smod_remove`, `smod_detach`). The
    /// per-module gateways fold this into their cache keys; see
    /// `Kernel::smod_epoch`.
    pub(crate) smod_epoch: AtomicU64,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("processes", &self.procs.len())
            .field("modules", &self.registry.len())
            .field("sessions", &self.sessions.len())
            .field("sim_time_ns", &self.clock.now_ns())
            .finish()
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::new(CostModel::default())
    }
}

impl Kernel {
    /// Boot a kernel with the given cost model and the OpenBSD i386 layout.
    pub fn new(cost: CostModel) -> Kernel {
        Kernel {
            procs: ProcessTable::new(),
            msgs: MsgSubsystem::new(),
            clock: SimClock::new(),
            cost,
            keystore: KeyStore::new(b"secmodule-kernel-keystore"),
            registry: SmodRegistry::new(),
            sessions: SessionTable::new(),
            tracer: Tracer::new(),
            layout: Layout::openbsd_i386(),
            gate_config: CacheConfig::default(),
            metrics: Arc::new(DispatchMetrics::new()),
            next_session: AtomicU32::new(1),
            context_switches: StripedCounter::new(),
            smod_epoch: AtomicU64::new(0),
        }
    }

    /// The SecModule invalidation epoch: strictly increases whenever a
    /// module is removed or a session detaches, so any decision cached
    /// against an earlier epoch is dead on arrival.
    pub fn smod_epoch(&self) -> u64 {
        self.smod_epoch.load(SeqCst)
    }

    /// Count of context switches performed (for reporting).
    pub fn context_switches(&self) -> u64 {
        self.context_switches.sum()
    }

    /// Render the dispatch-metrics registry, first mirroring the
    /// tracer's evicted-event count into it — the report path is the one
    /// place a silently truncated trace must become visible.
    pub fn metrics_report(&self) -> String {
        self.metrics.trace_dropped.set(self.tracer.dropped_events());
        self.metrics.text_report()
    }

    /// Boot with a custom address-space layout (smaller layouts make unit
    /// tests cheaper).
    pub fn with_layout(cost: CostModel, layout: Layout) -> Kernel {
        let mut k = Kernel::new(cost);
        k.layout = layout;
        k
    }

    /// Boot with a custom decision-cache sizing for registered modules
    /// ([`CacheConfig::disabled`] gives the uncached-baseline kernel).
    pub fn with_gate_config(cost: CostModel, gate_config: CacheConfig) -> Kernel {
        let mut k = Kernel::new(cost);
        k.gate_config = gate_config;
        k
    }

    /// Charge `ns` of kernel time to the clock and to `pid`'s CPU time.
    /// The clock stripe is chosen by the pid so concurrent charges from
    /// different processes do not contend on one counter cache line.
    pub(crate) fn charge(&self, pid: Pid, ns: u64) {
        self.clock.advance_striped(pid.0 as u64, ns);
        let _ = self.procs.with_mut(pid, |p| p.cpu_time_ns += ns);
    }

    /// Record `n` context switches attributed to `pid`'s stripe.
    pub(crate) fn context_switch_n(&self, pid: Pid, n: u64) {
        self.context_switches.add(pid.0 as u64, n);
        self.clock
            .advance_striped(pid.0 as u64, n * self.cost.context_switch_ns);
    }

    // ----------------------------------------------------------------
    // Process management
    // ----------------------------------------------------------------

    /// Create a user process (the moral equivalent of `exec` from init):
    /// a fresh address space with the given program text.
    pub fn spawn_process(
        &self,
        name: &str,
        cred: Credential,
        text: Vec<u8>,
        heap_pages: u64,
        stack_pages: u64,
    ) -> SysResult<Pid> {
        let vm = VmSpace::new_user(name, self.layout, Arc::new(text), heap_pages, stack_pages)
            .map_err(Errno::from)?;
        Ok(self.procs.spawn(Pid(0), name, cred, vm))
    }

    /// `getpid()`.  For a handle process this returns the *client's* pid, as
    /// §4.3 requires ("getpid() and related calls must return the PIDs
    /// related to the client, not the handle!").
    pub fn sys_getpid(&self, pid: Pid) -> SysResult<Pid> {
        let cost = self.cost.getpid_cost();
        self.charge(pid, cost);
        self.procs.with(pid, |p| {
            if p.flags.smod_handle {
                if let Some(link) = p.smod {
                    return link.peer;
                }
            }
            pid
        })
    }

    /// `fork()`: duplicate the calling process (copy-on-write address
    /// space).  The child does not inherit any SecModule session; the
    /// paper's special handling (re-creating a handle for the child) is
    /// provided by [`Kernel::sys_smod_fork`].
    pub fn sys_fork(&self, parent: Pid) -> SysResult<Pid> {
        let fork_cost = self.cost.fork_ns;
        self.charge(parent, fork_cost);
        let child_pid = self.procs.allocate_pid();
        let child = self.procs.with(parent, |parent_proc| {
            let child_name = format!("{}-child", parent_proc.name);
            let mut child_vm = parent_proc.vm.fork(&child_name);
            // The child is not (yet) part of any smod pair.
            if parent_proc.vm.smod_share_range().is_some() {
                // Clear the inherited share marker; a new session must be
                // set up. VmSpace keeps the marker private; resetting the
                // stats is all that is needed — the child has no peer until
                // a session exists.
                child_vm.stats.reset();
            }
            let mut child = Process::new(
                child_pid,
                parent,
                &child_name,
                parent_proc.cred.clone(),
                child_vm,
            );
            child.flags.no_coredump = parent_proc.flags.no_coredump;
            child
        })?;
        self.procs.insert(child);
        Ok(child_pid)
    }

    /// `exit()`: the process becomes a zombie; if it is a SecModule client
    /// its handle is killed and the session removed.
    pub fn sys_exit(&self, pid: Pid, status: i32) -> SysResult<()> {
        let trap = self.cost.syscall_trap_ns;
        self.charge(pid, trap);
        // Detach any smod session first (kills the handle).
        if self.procs.with(pid, |p| p.smod.is_some())? {
            self.smod_detach(pid, "client exit")?;
        }
        self.procs
            .with_mut(pid, |p| p.state = ProcState::Zombie(status))
    }

    /// `wait()`: reap a zombie child.  Handle processes are invisible to
    /// `wait` (§4.3: scheduling-related calls "must be modified such that
    /// they effect the client, not the handle").
    pub fn sys_wait(&self, parent: Pid) -> SysResult<(Pid, i32)> {
        let trap = self.cost.syscall_trap_ns;
        self.charge(parent, trap);
        // One pass over the table: remember whether any child exists at
        // all (for ECHILD) while stopping at the first reapable zombie.
        let mut has_child = false;
        let zombie = self.procs.scan_first(|p| {
            if p.ppid != parent {
                return None;
            }
            has_child = true;
            if p.flags.smod_handle {
                return None;
            }
            match p.state {
                ProcState::Zombie(status) => Some((p.pid, status)),
                _ => None,
            }
        });
        if !has_child && zombie.is_none() {
            return Err(Errno::ECHILD);
        }
        match zombie {
            Some((pid, status)) => {
                self.procs.remove(pid);
                Ok((pid, status))
            }
            None => Err(Errno::EAGAIN), // caller would block
        }
    }

    /// `kill()`: deliver a signal.  Signals aimed at handle processes are
    /// redirected to their client (§4.3: "signals … must be modified such
    /// that they effect the client, not the handle").
    pub fn sys_kill(&self, sender: Pid, target: Pid, signal: i32) -> SysResult<()> {
        let trap = self.cost.syscall_trap_ns;
        self.charge(sender, trap);
        let redirected = self.procs.with(target, |t| {
            if t.flags.smod_handle {
                t.smod.map(|l| l.peer).unwrap_or(target)
            } else {
                target
            }
        })?;
        self.procs
            .with_mut(redirected, |t| t.pending_signals.push(signal))
    }

    /// `ptrace()` attach: denied outright for any process associated with a
    /// SecModule handle (§3.1 item 4).
    pub fn sys_ptrace_attach(&self, tracer: Pid, target: Pid) -> SysResult<()> {
        let trap = self.cost.syscall_trap_ns;
        self.charge(tracer, trap);
        let denied = self.procs.with(target, |t| {
            t.flags.no_ptrace || t.flags.smod_handle || t.flags.smod_client
        })?;
        if denied {
            self.tracer.record(Event::PtraceDenied { tracer, target });
            return Err(Errno::EPERM);
        }
        Ok(())
    }

    /// Simulate a crash of `pid` (e.g. SIGSEGV).  Returns whether a core
    /// image was produced; for smod pair members it never is.
    pub fn crash_process(&self, pid: Pid) -> SysResult<bool> {
        // Tear down any session (also protects the module text mapped in a
        // crashing handle).
        if self.procs.with(pid, |p| p.smod.is_some())? {
            self.smod_detach_either(pid, "crash")?;
        }
        let dumped = self.procs.with_mut(pid, |p| p.crash(11))?;
        if !dumped {
            self.tracer.record(Event::CoreDumpSuppressed { pid });
        }
        Ok(dumped)
    }

    /// `execve()`: §4.3 — "first detach the requesting client process from
    /// the SecModule system, kill the associated handle process, and then …
    /// run sys_execve() as per normal."  The new image starts with a fresh
    /// address space and no session.
    pub fn sys_execve(&self, pid: Pid, new_name: &str, new_text: Vec<u8>) -> SysResult<()> {
        let trap = self.cost.syscall_trap_ns + self.cost.fork_ns / 2;
        self.charge(pid, trap);
        if self.procs.with(pid, |p| p.smod.is_some())? {
            self.smod_detach(pid, "execve")?;
        }
        let vm = VmSpace::new_user(new_name, self.layout, Arc::new(new_text), 4, 4)
            .map_err(Errno::from)?;
        self.procs.with_mut(pid, |p| {
            p.name = new_name.to_string();
            p.vm = vm;
            p.flags.smod_client = false;
        })
    }

    // ----------------------------------------------------------------
    // Memory
    // ----------------------------------------------------------------

    /// `obreak()` — grow or shrink the heap.  For smod pair members the new
    /// memory is a shared mapping (the paper's modified `sys_obreak`).
    pub fn sys_obreak(&self, pid: Pid, new_break: Vaddr) -> SysResult<Vaddr> {
        let trap = self.cost.syscall_trap_ns;
        self.charge(pid, trap);
        self.procs
            .with_mut(pid, |p| {
                sys_obreak(&mut p.vm, new_break).map_err(Errno::from)
            })?
            .map(|outcome| outcome.new_brk)
    }

    /// Read bytes from a process's memory (kernel copyin), resolving shared
    /// mappings through the smod peer if necessary.
    pub fn read_user_memory(&self, pid: Pid, addr: Vaddr, len: usize) -> SysResult<Vec<u8>> {
        let peer_pid = self.procs.with(pid, |p| p.smod.map(|l| l.peer))?;
        match peer_pid {
            None => self
                .procs
                .with_mut(pid, |p| p.vm.read_bytes(addr, len).map_err(Errno::from))?,
            Some(peer) => self.procs.with_pair_mut(pid, peer, |p, q| {
                p.vm.read_bytes_with_peer(addr, len, Some(&q.vm))
                    .map_err(Errno::from)
            })?,
        }
    }

    /// Write bytes into a process's memory (kernel copyout).
    pub fn write_user_memory(&self, pid: Pid, addr: Vaddr, data: &[u8]) -> SysResult<()> {
        let peer_pid = self.procs.with(pid, |p| p.smod.map(|l| l.peer))?;
        match peer_pid {
            None => self
                .procs
                .with_mut(pid, |p| p.vm.write_bytes(addr, data).map_err(Errno::from))?,
            Some(peer) => self.procs.with_pair_mut(pid, peer, |p, q| {
                p.vm.write_bytes_with_peer(addr, data, Some(&q.vm))
                    .map_err(Errno::from)
            })?,
        }
    }

    // ----------------------------------------------------------------
    // SYSV message queues
    // ----------------------------------------------------------------

    /// `msgget(IPC_PRIVATE)`.
    pub fn sys_msgget(&self, pid: Pid) -> SysResult<MsgQueueId> {
        let trap = self.cost.syscall_trap_ns;
        self.charge(pid, trap);
        Ok(self.msgs.msgget())
    }

    /// `msgsnd`.
    pub fn sys_msgsnd(&self, pid: Pid, queue: MsgQueueId, msg: Message) -> SysResult<()> {
        let cost = self.cost.syscall_trap_ns + self.cost.msg_op_ns;
        self.charge(pid, cost);
        self.msgs.msgsnd(queue, msg)
    }

    /// `msgrcv` (non-blocking: `EAGAIN` when nothing matches).
    pub fn sys_msgrcv(&self, pid: Pid, queue: MsgQueueId, mtype: i64) -> SysResult<Message> {
        let cost = self.cost.syscall_trap_ns + self.cost.msg_op_ns;
        self.charge(pid, cost);
        self.msgs.msgrcv(queue, mtype)
    }

    // ----------------------------------------------------------------
    // Reporting
    // ----------------------------------------------------------------

    /// A `dmesg`-style boot/system information block, the analogue of the
    /// paper's Figure 7.
    pub fn system_info(&self) -> String {
        format!(
            "SecModule simulated kernel (cost model: P-III 599 MHz / OpenBSD 3.6 calibration)\n\
             cpu0: simulated, syscall trap {} ns, context switch {} ns\n\
             real mem = simulated\n\
             processes: {}, modules registered: {}, active sessions: {}\n\
             simulated clock: {} ns\n",
            self.cost.syscall_trap_ns,
            self.cost.context_switch_ns,
            self.procs.len(),
            self.registry.len(),
            self.sessions.len(),
            self.clock.now_ns()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> Kernel {
        Kernel::new(CostModel::default())
    }

    fn spawn(k: &Kernel, name: &str) -> Pid {
        k.spawn_process(name, Credential::user(1000, 100), vec![0x90u8; 4096], 4, 4)
            .unwrap()
    }

    #[test]
    fn kernel_is_sync_and_send() {
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<Kernel>();
    }

    #[test]
    fn getpid_charges_cost_and_returns_pid() {
        let k = kernel();
        let p = spawn(&k, "client");
        let before = k.clock.now_ns();
        assert_eq!(k.sys_getpid(p).unwrap(), p);
        assert_eq!(k.clock.now_ns() - before, k.cost.getpid_cost());
        assert_eq!(k.sys_getpid(Pid(99)).unwrap_err(), Errno::ESRCH);
    }

    #[test]
    fn fork_creates_cow_child() {
        let k = kernel();
        let parent = spawn(&k, "parent");
        let addr = Vaddr(k.layout.data_base);
        k.write_user_memory(parent, addr, b"parent").unwrap();
        let child = k.sys_fork(parent).unwrap();
        assert_ne!(parent, child);
        assert_eq!(k.read_user_memory(child, addr, 6).unwrap(), b"parent");
        k.write_user_memory(child, addr, b"child!").unwrap();
        assert_eq!(k.read_user_memory(parent, addr, 6).unwrap(), b"parent");
        assert_eq!(k.procs.with(child, |p| p.ppid).unwrap(), parent);
    }

    #[test]
    fn exit_and_wait() {
        let k = kernel();
        let parent = spawn(&k, "parent");
        let child = k.sys_fork(parent).unwrap();
        // No zombie yet: wait would block.
        assert_eq!(k.sys_wait(parent).unwrap_err(), Errno::EAGAIN);
        k.sys_exit(child, 7).unwrap();
        assert_eq!(k.sys_wait(parent).unwrap(), (child, 7));
        // Child is gone now.
        assert!(!k.procs.exists(child));
        assert_eq!(k.sys_wait(parent).unwrap_err(), Errno::ECHILD);
    }

    #[test]
    fn kill_delivers_signals() {
        let k = kernel();
        let a = spawn(&k, "a");
        let b = spawn(&k, "b");
        k.sys_kill(a, b, 15).unwrap();
        assert_eq!(
            k.procs.with(b, |p| p.pending_signals.clone()).unwrap(),
            vec![15]
        );
        assert_eq!(k.sys_kill(a, Pid(99), 9).unwrap_err(), Errno::ESRCH);
    }

    #[test]
    fn ptrace_of_ordinary_process_is_allowed() {
        let k = kernel();
        let a = spawn(&k, "debugger");
        let b = spawn(&k, "target");
        k.sys_ptrace_attach(a, b).unwrap();
    }

    #[test]
    fn obreak_grows_heap() {
        let k = kernel();
        let p = spawn(&k, "p");
        let old = k.procs.with(p, |proc_| proc_.vm.brk()).unwrap();
        let new = k.sys_obreak(p, Vaddr(old.0 + 8192)).unwrap();
        assert_eq!(new.0, old.0 + 8192);
        k.write_user_memory(p, old, b"grown").unwrap();
    }

    #[test]
    fn message_queues_work_through_syscalls() {
        let k = kernel();
        let p = spawn(&k, "p");
        let q = k.sys_msgget(p).unwrap();
        k.sys_msgsnd(
            p,
            q,
            Message {
                mtype: 1,
                data: b"ping".to_vec(),
            },
        )
        .unwrap();
        assert_eq!(k.sys_msgrcv(p, q, 1).unwrap().data, b"ping");
        assert_eq!(k.sys_msgrcv(p, q, 1).unwrap_err(), Errno::EAGAIN);
    }

    #[test]
    fn ordinary_crash_dumps_core() {
        let k = kernel();
        let p = spawn(&k, "p");
        assert!(k.crash_process(p).unwrap());
        assert!(!k.procs.with(p, |proc_| proc_.is_alive()).unwrap());
    }

    #[test]
    fn execve_replaces_image() {
        let k = kernel();
        let p = spawn(&k, "old");
        let addr = Vaddr(k.layout.data_base);
        k.write_user_memory(p, addr, b"old data").unwrap();
        k.sys_execve(p, "new", vec![0xCCu8; 4096]).unwrap();
        assert_eq!(k.procs.with(p, |proc_| proc_.name.clone()).unwrap(), "new");
        // Old heap contents are gone (fresh zero-filled heap).
        assert_eq!(k.read_user_memory(p, addr, 8).unwrap(), vec![0u8; 8]);
    }

    #[test]
    fn system_info_mentions_calibration() {
        let k = kernel();
        let info = k.system_info();
        assert!(info.contains("OpenBSD 3.6"));
        assert!(info.contains("syscall trap"));
    }
}
