//! `secmod_obs` — the observability layer: lock-free latency histograms
//! and the per-flavor dispatch metrics registry.
//!
//! Everything this repro measured before this crate was a throughput
//! *mean*; production claims live in the *tail*. The per-call simulated
//! cost (`cost_ns`) already flows through every dispatch path — this
//! crate buckets it:
//!
//! * [`Histogram`] — a fixed-size **log-linear** histogram: values
//!   0–15 ns land in exact unit buckets, every later power-of-two octave
//!   is split into 16 linear sub-buckets (≤ 6.25 % relative bucket
//!   width, ≤ ~3.2 % error at the reported midpoint). Recording is two
//!   relaxed `fetch_add`s — no locks, no allocation, mergeable across
//!   threads, cheap enough to leave on in the hot dispatch path.
//! * [`DispatchMetrics`] — one histogram per dispatch flavor
//!   ([`Flavor`]: syscall / batch / sweep / plane / async) plus the
//!   counters the system already computes and used to throw away: gate
//!   hit/miss, ring full-bounces, sweep sessions-per-trap, drainer
//!   park/unpark cycles, EIDRM teardown failures, async re-submits.
//! * [`LatencySummary`] / [`HistogramSnapshot`] — point-in-time copies
//!   for reports, and [`DispatchMetrics::text_report`] renders the whole
//!   registry as the table `gate_report --metrics` prints.
//!
//! The crate sits *below* the kernel (it depends on nothing), so every
//! layer — kernel syscalls, the dispatch plane, the async reactor — can
//! record into one shared registry without a dependency cycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear buckets.
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per octave (and the exact-bucket span at the low
/// end: values below this land in unit-width buckets).
const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range: 16 exact buckets
/// plus 16 sub-buckets for each of the 60 remaining octaves.
pub const NUM_BUCKETS: usize = (SUB_BUCKETS as usize) * (64 - SUB_BITS as usize + 1);

/// The bucket index a value lands in. Monotonic in `v`; exact below
/// [`SUB_BUCKETS`], log-linear above.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros(); // floor(log2 v), >= SUB_BITS
        let mantissa = (v >> (exp - SUB_BITS)) & (SUB_BUCKETS - 1);
        ((exp - SUB_BITS + 1) as usize) << SUB_BITS | mantissa as usize
    }
}

/// The smallest value mapping to `idx`.
#[inline]
pub fn bucket_low(idx: usize) -> u64 {
    if idx < SUB_BUCKETS as usize {
        idx as u64
    } else {
        let exp = (idx >> SUB_BITS as usize) as u32 + SUB_BITS - 1;
        let mantissa = (idx as u64) & (SUB_BUCKETS - 1);
        (1u64 << exp) + (mantissa << (exp - SUB_BITS))
    }
}

/// The width (count of distinct values) of bucket `idx`.
#[inline]
pub fn bucket_width(idx: usize) -> u64 {
    if idx < SUB_BUCKETS as usize {
        1
    } else {
        let exp = (idx >> SUB_BITS as usize) as u32 + SUB_BITS - 1;
        1u64 << (exp - SUB_BITS)
    }
}

/// The representative value reported for bucket `idx` (its midpoint, so
/// quantile estimates err by at most half a bucket width).
#[inline]
fn bucket_mid(idx: usize) -> u64 {
    bucket_low(idx) + (bucket_width(idx) >> 1)
}

/// Quantile estimation over a bucket-count slice: the midpoint of the
/// bucket holding the `ceil(q * total)`-th recorded value (1-based), the
/// same rank a sorted-sample oracle would report.
fn quantile_of(buckets: &[u64], total: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (idx, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bucket_mid(idx);
        }
    }
    bucket_mid(NUM_BUCKETS - 1)
}

/// A lock-free fixed-bucket log-linear latency histogram.
///
/// `record` is two relaxed `fetch_add`s (bucket + running sum) — cheap
/// enough for the cached dispatch hot path. Reads (`count`, `p`,
/// `snapshot`) scan the buckets with relaxed loads; under concurrent
/// recording they see *some* recent state, which is all a report needs.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    /// Running sum of recorded values (for the mean).
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram covering the full `u64` range.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one value. Lock-free; callable from any thread.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record `n` occurrences of `v` in two atomic adds.
    #[inline]
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.wrapping_mul(n), Ordering::Relaxed);
    }

    /// Total recorded values (a relaxed scan).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`): the midpoint of the
    /// bucket holding the rank-`ceil(q·count)` value, so the estimate is
    /// within half a bucket width (≤ ~3.2 %) of the exact order
    /// statistic. Returns 0 when empty.
    pub fn p(&self, q: f64) -> u64 {
        self.snapshot().p(q)
    }

    /// Fold another histogram into this one (bucket-wise addition).
    /// Merging is associative and commutative, so per-thread histograms
    /// can be combined in any order.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let c = theirs.load(Ordering::Relaxed);
            if c > 0 {
                mine.fetch_add(c, Ordering::Relaxed);
            }
        }
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Zero every bucket. Not atomic with respect to concurrent
    /// recorders: records racing the reset land before or after it.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// The p50/p99/p99.9 summary reports print.
    pub fn summary(&self) -> LatencySummary {
        self.snapshot().summary()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count())
            .field("mean", &s.mean())
            .field("p50", &s.p(0.50))
            .field("p99", &s.p(0.99))
            .finish()
    }
}

/// A plain (non-atomic) copy of a histogram's state, for consistent
/// report rendering.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    sum: u64,
}

impl HistogramSnapshot {
    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// Quantile estimate; see [`Histogram::p`].
    pub fn p(&self, q: f64) -> u64 {
        quantile_of(&self.buckets, self.count(), q)
    }

    /// Smallest non-empty bucket's low edge (0 when empty).
    pub fn min(&self) -> u64 {
        self.buckets
            .iter()
            .position(|&c| c > 0)
            .map(bucket_low)
            .unwrap_or(0)
    }

    /// Largest non-empty bucket's high edge (0 when empty).
    pub fn max(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .map(|idx| bucket_low(idx) + bucket_width(idx) - 1)
            .unwrap_or(0)
    }

    /// The p50/p99/p99.9 summary reports print.
    pub fn summary(&self) -> LatencySummary {
        let count = self.count();
        LatencySummary {
            count,
            p50: quantile_of(&self.buckets, count, 0.50),
            p99: quantile_of(&self.buckets, count, 0.99),
            p999: quantile_of(&self.buckets, count, 0.999),
        }
    }
}

/// The three percentiles every report prints, plus the sample count
/// they were estimated from. `Copy`, so reports can embed it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Values the percentiles were estimated over.
    pub count: u64,
    /// Median (ns).
    pub p50: u64,
    /// 99th percentile (ns).
    pub p99: u64,
    /// 99.9th percentile (ns).
    pub p999: u64,
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "p50 {:>6} p99 {:>6} p99.9 {:>6} ns",
            self.p50, self.p99, self.p999
        )
    }
}

/// A monotonically increasing event counter (relaxed atomics).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrite with `n` — for mirroring a value owned elsewhere (the
    /// kernel tracer's drop count) into a report, not for accumulating.
    pub fn set(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }

    /// Zero the counter.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// An up/down gauge with a high-water mark (relaxed atomics).
///
/// The arena's bytes-in-flight accounting needs more than a monotonic
/// counter: allocations add, frees subtract, and leak checks assert the
/// value returns to zero. The high-water mark records the largest value
/// ever observed after an `add`, so reports can show peak utilisation
/// even after the traffic has drained.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    high: AtomicU64,
}

impl Gauge {
    /// Raise the gauge by `n`, updating the high-water mark.
    #[inline]
    pub fn add(&self, n: u64) {
        if n == 0 {
            return;
        }
        let now = self.value.fetch_add(n, Ordering::Relaxed) + n;
        self.high.fetch_max(now, Ordering::Relaxed);
    }

    /// Lower the gauge by `n`. Every `sub` must pair with an earlier
    /// `add` (the arena's slot-ownership handoff guarantees the order),
    /// so the gauge never underflows.
    #[inline]
    pub fn sub(&self, n: u64) {
        if n > 0 {
            self.value.fetch_sub(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Largest value the gauge has held.
    pub fn high_water(&self) -> u64 {
        self.high.load(Ordering::Relaxed)
    }

    /// Zero the gauge and its high-water mark.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
        self.high.store(0, Ordering::Relaxed);
    }
}

/// Argument-arena utilisation: how the zero-copy path is actually used.
///
/// Lives behind an `Arc` shared between the kernel's
/// [`DispatchMetrics`] registry and every `ArgArena` the ring layer
/// creates, so slot alloc/free accounting lands in the same report as
/// the dispatch histograms.
#[derive(Debug, Default)]
pub struct ArenaMetrics {
    /// Bytes currently held by live arena slots (allocated, not yet
    /// freed). Returns to 0 when every request and response has been
    /// reaped or torn down — the leak check every scenario asserts.
    pub bytes_in_flight: Gauge,
    /// Arena slot allocations that succeeded.
    pub allocs: Counter,
    /// Arena slot frees (matches `allocs` when nothing is in flight).
    pub frees: Counter,
    /// Allocations that fell back to an owned heap copy (arena full,
    /// per-session quota exhausted, or payload larger than the arena).
    pub alloc_fallbacks: Counter,
    /// Dispatched argument blocks small enough to ride inline in the
    /// ring entry.
    pub inline_args: Counter,
    /// Dispatched argument blocks passed by arena descriptor.
    pub arena_args: Counter,
    /// Frees or reads whose generation tag did not match the slot's
    /// current generation (use-after-reap attempts, caught and dropped).
    pub gen_mismatches: Counter,
}

impl ArenaMetrics {
    /// An empty registry.
    pub fn new() -> ArenaMetrics {
        ArenaMetrics::default()
    }

    /// Zero every gauge and counter.
    pub fn reset(&self) {
        self.bytes_in_flight.reset();
        for c in [
            &self.allocs,
            &self.frees,
            &self.alloc_fallbacks,
            &self.inline_args,
            &self.arena_args,
            &self.gen_mismatches,
        ] {
            c.reset();
        }
    }
}

/// The five dispatch flavors that record latency, one histogram each.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flavor {
    /// One `sys_smod_call` per dispatch (trap + resolution every call).
    Syscall,
    /// `sys_smod_call_batch`: one session drained per trap.
    Batch,
    /// `sys_smod_sweep`: every ready session drained per trap.
    Sweep,
    /// `DispatchPlane` producers (submit/reap through dedicated
    /// drainers; latency recorded at reap).
    Plane,
    /// The futures frontend (latency recorded as the reactor routes each
    /// completion).
    Async,
}

impl Flavor {
    /// Every flavor, in report order.
    pub const ALL: [Flavor; 5] = [
        Flavor::Syscall,
        Flavor::Batch,
        Flavor::Sweep,
        Flavor::Plane,
        Flavor::Async,
    ];

    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Flavor::Syscall => "syscall",
            Flavor::Batch => "batch",
            Flavor::Sweep => "sweep",
            Flavor::Plane => "plane",
            Flavor::Async => "async",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// The dispatch metrics registry: one latency histogram per
/// [`Flavor`] plus the event counters every layer feeds.
///
/// One registry lives in each `Kernel`; the plane's drainers, the
/// async reactor, and the syscall paths all record into it, and
/// `Dispatcher::metrics()` exposes it uniformly.
#[derive(Debug, Default)]
pub struct DispatchMetrics {
    latency: [Histogram; 5],
    /// Per-call decision-cache hits observed on dispatch paths.
    pub gate_hits: Counter,
    /// Per-call decision-cache misses (full policy fixpoint runs).
    pub gate_misses: Counter,
    /// Submissions bounced off a full ring (backpressure events).
    pub ring_full_bounces: Counter,
    /// `sys_smod_sweep` invocations (traps paid).
    pub sweep_traps: Counter,
    /// Ready sessions visited across all sweeps — divide by
    /// [`DispatchMetrics::sweep_traps`] for sessions-per-trap.
    pub sweep_sessions: Counter,
    /// Times a plane drainer parked (found no ready work).
    pub drainer_parks: Counter,
    /// Times a parked drainer was explicitly woken by a producer.
    pub drainer_unparks: Counter,
    /// Entries failed with `EIDRM` (session torn down mid-flight).
    pub eidrm_failures: Counter,
    /// Async submissions re-parked on a full ring and later re-submitted.
    pub async_resubmits: Counter,
    /// Trace events evicted from the kernel's bounded trace buffer — a
    /// mirror of `Tracer::dropped_events`, refreshed by the kernel's
    /// report path so silently truncated traces show up here.
    pub trace_dropped: Counter,
    /// Argument-arena utilisation (shared with every `ArgArena` wired to
    /// this registry, so slot accounting lands in the same report).
    pub arena: std::sync::Arc<ArenaMetrics>,
}

impl DispatchMetrics {
    /// An empty registry.
    pub fn new() -> DispatchMetrics {
        DispatchMetrics::default()
    }

    /// The latency histogram for one dispatch flavor.
    pub fn latency(&self, flavor: Flavor) -> &Histogram {
        &self.latency[flavor.index()]
    }

    /// Record one call's latency under `flavor`.
    #[inline]
    pub fn record_latency(&self, flavor: Flavor, ns: u64) {
        self.latency[flavor.index()].record(ns);
    }

    /// Average ready sessions visited per sweep trap.
    pub fn sessions_per_trap(&self) -> f64 {
        let traps = self.sweep_traps.get();
        if traps == 0 {
            0.0
        } else {
            self.sweep_sessions.get() as f64 / traps as f64
        }
    }

    /// Zero every histogram and counter (not atomic against concurrent
    /// recorders).
    pub fn reset(&self) {
        for h in &self.latency {
            h.reset();
        }
        for c in [
            &self.gate_hits,
            &self.gate_misses,
            &self.ring_full_bounces,
            &self.sweep_traps,
            &self.sweep_sessions,
            &self.drainer_parks,
            &self.drainer_unparks,
            &self.eidrm_failures,
            &self.async_resubmits,
            &self.trace_dropped,
        ] {
            c.reset();
        }
        self.arena.reset();
    }

    /// Render the whole registry as the table `gate_report --metrics`
    /// prints: one row per flavor that recorded anything, then the
    /// counter line.
    pub fn text_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<8} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>10}",
            "flavor", "count", "mean ns", "p50", "p99", "p99.9", "min", "max"
        );
        for flavor in Flavor::ALL {
            let snap = self.latency(flavor).snapshot();
            let count = snap.count();
            if count == 0 {
                let _ = writeln!(out, "{:<8} {:>10} (no samples)", flavor.name(), 0);
                continue;
            }
            let _ = writeln!(
                out,
                "{:<8} {:>10} {:>10.1} {:>8} {:>8} {:>8} {:>8} {:>10}",
                flavor.name(),
                count,
                snap.mean(),
                snap.p(0.50),
                snap.p(0.99),
                snap.p(0.999),
                snap.min(),
                snap.max(),
            );
        }
        let gate_total = self.gate_hits.get() + self.gate_misses.get();
        let hit_rate = if gate_total == 0 {
            0.0
        } else {
            self.gate_hits.get() as f64 / gate_total as f64
        };
        let _ = writeln!(
            out,
            "gate {} hits / {} misses ({:.1}% hit)  ring full-bounces {}  eidrm {}",
            self.gate_hits.get(),
            self.gate_misses.get(),
            hit_rate * 100.0,
            self.ring_full_bounces.get(),
            self.eidrm_failures.get(),
        );
        let _ = writeln!(
            out,
            "sweeps {} traps / {} sessions ({:.1} sessions/trap)  drainer parks {} unparks {}  async resubmits {}  trace dropped {}",
            self.sweep_traps.get(),
            self.sweep_sessions.get(),
            self.sessions_per_trap(),
            self.drainer_parks.get(),
            self.drainer_unparks.get(),
            self.async_resubmits.get(),
            self.trace_dropped.get(),
        );
        let inline = self.arena.inline_args.get();
        let via_arena = self.arena.arena_args.get();
        let split_total = inline + via_arena;
        let arena_pct = if split_total == 0 {
            0.0
        } else {
            via_arena as f64 / split_total as f64 * 100.0
        };
        let _ = writeln!(
            out,
            "arena {} B in flight (high-water {} B)  args {} inline / {} arena ({:.1}% arena)  fallbacks {}  gen-mismatch {}",
            self.arena.bytes_in_flight.get(),
            self.arena.bytes_in_flight.high_water(),
            inline,
            via_arena,
            arena_pct,
            self.arena.alloc_fallbacks.get(),
            self.arena.gen_mismatches.get(),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotonic_and_continuous() {
        // Every boundary value lands one bucket after its predecessor's
        // bucket or in the same bucket — never earlier.
        let mut prev = 0;
        for v in 0..4096u64 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index regressed at {v}");
            assert!(idx == prev || idx == prev + 1, "index skipped at {v}");
            prev = idx;
        }
        // The low edge of every bucket maps back to that bucket, and the
        // high edge stays inside it.
        for idx in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_low(idx)), idx);
            let high = bucket_low(idx) + (bucket_width(idx) - 1);
            assert_eq!(bucket_index(high), idx);
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        for v in 0..16u64 {
            let rank_q = (v as f64 + 1.0) / 16.0;
            assert_eq!(h.p(rank_q), v, "exact bucket for {v}");
        }
    }

    #[test]
    fn quantiles_land_within_a_bucket_of_the_oracle() {
        let h = Histogram::new();
        let mut values: Vec<u64> = (0..10_000u64).map(|i| i * 37 % 100_000).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let oracle = values[rank - 1];
            let est = h.p(q);
            let width = bucket_width(bucket_index(oracle));
            assert!(
                est.abs_diff(oracle) <= width,
                "p({q}): est {est} vs oracle {oracle} (width {width})"
            );
        }
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [0u64, 5, 17, 800, 12_345, 1 << 40] {
            a.record(v);
            all.record(v);
        }
        for v in [3u64, 17, 999_999] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.p(q), all.p(q));
        }
    }

    #[test]
    fn reset_empties_the_histogram() {
        let h = Histogram::new();
        h.record(42);
        h.record_n(7, 10);
        assert_eq!(h.count(), 11);
        assert_eq!(h.sum(), 42 + 70);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p(0.5), 0);
    }

    #[test]
    fn metrics_registry_round_trips() {
        let m = DispatchMetrics::new();
        for flavor in Flavor::ALL {
            m.record_latency(flavor, 100);
            m.record_latency(flavor, 10_000);
        }
        m.gate_hits.add(9);
        m.gate_misses.incr();
        m.sweep_traps.add(4);
        m.sweep_sessions.add(10);
        assert!((m.sessions_per_trap() - 2.5).abs() < 1e-9);
        let report = m.text_report();
        for flavor in Flavor::ALL {
            assert!(report.contains(flavor.name()), "missing {}", flavor.name());
            assert!(m.latency(flavor).summary().p50 > 0);
        }
        assert!(report.contains("9 hits / 1 misses (90.0% hit)"));
        m.trace_dropped.set(17);
        assert_eq!(m.trace_dropped.get(), 17);
        m.trace_dropped.set(3);
        assert_eq!(m.trace_dropped.get(), 3, "set overwrites, not accumulates");
        assert!(m.text_report().contains("trace dropped 3"));
        m.reset();
        assert_eq!(m.latency(Flavor::Syscall).count(), 0);
        assert_eq!(m.gate_hits.get(), 0);
        assert_eq!(m.trace_dropped.get(), 0);
    }

    #[test]
    fn gauge_tracks_value_and_high_water() {
        let g = Gauge::default();
        g.add(100);
        g.add(50);
        assert_eq!(g.get(), 150);
        g.sub(120);
        assert_eq!(g.get(), 30);
        assert_eq!(g.high_water(), 150, "high-water survives the drain");
        g.add(10);
        assert_eq!(g.high_water(), 150, "smaller peaks do not move it");
        g.reset();
        assert_eq!((g.get(), g.high_water()), (0, 0));
    }

    #[test]
    fn arena_metrics_land_in_the_text_report_and_reset() {
        let m = DispatchMetrics::new();
        m.arena.bytes_in_flight.add(65536);
        m.arena.allocs.incr();
        m.arena.inline_args.add(3);
        m.arena.arena_args.incr();
        m.arena.alloc_fallbacks.incr();
        let report = m.text_report();
        assert!(report.contains("arena 65536 B in flight"), "{report}");
        assert!(
            report.contains("3 inline / 1 arena (25.0% arena)"),
            "{report}"
        );
        m.arena.bytes_in_flight.sub(65536);
        m.arena.frees.incr();
        assert_eq!(m.arena.bytes_in_flight.get(), 0);
        assert_eq!(m.arena.bytes_in_flight.high_water(), 65536);
        m.reset();
        assert_eq!(m.arena.allocs.get(), 0);
        assert_eq!(m.arena.bytes_in_flight.high_water(), 0);
    }

    #[test]
    fn summary_display_is_stable() {
        let h = Histogram::new();
        h.record_n(1000, 100);
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert!(s.p50 >= 960 && s.p50 <= 1056, "p50 {} off-bucket", s.p50);
        assert!(format!("{s}").contains("p99.9"));
    }
}
