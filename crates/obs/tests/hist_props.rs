//! Property tests for the histogram math: quantile estimates against a
//! sorted-sample oracle, merge associativity, and lock-free concurrent
//! recording.

use proptest::collection::vec;
use proptest::{prop_assert, prop_assert_eq, proptest};
use secmod_obs::{bucket_index, bucket_width, Histogram};

/// The oracle: the exact order statistic the histogram approximates.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn record_all(values: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn p_matches_the_sorted_oracle_within_one_bucket(
        values in vec(0u64..2_000_000, 1..400),
        q_milli in 1u64..=1000,
    ) {
        let h = record_all(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let q = q_milli as f64 / 1000.0;
        let oracle = oracle_quantile(&sorted, q);
        let est = h.p(q);
        // Same rank, so the estimate is the midpoint of the oracle's own
        // bucket: within one bucket width of the exact order statistic.
        let width = bucket_width(bucket_index(oracle));
        prop_assert!(
            est.abs_diff(oracle) <= width,
            "p({}) = {} vs oracle {} (bucket width {})",
            q, est, oracle, width
        );
        prop_assert_eq!(bucket_index(est), bucket_index(oracle));
    }

    #[test]
    fn merge_is_associative_and_equals_concatenation(
        a in vec(0u64..1_000_000, 0..100),
        b in vec(0u64..1_000_000, 0..100),
        c in vec(0u64..1_000_000, 0..100),
    ) {
        // (a ⊕ b) ⊕ c
        let left = record_all(&a);
        left.merge(&record_all(&b));
        left.merge(&record_all(&c));
        // a ⊕ (b ⊕ c)
        let bc = record_all(&b);
        bc.merge(&record_all(&c));
        let right = record_all(&a);
        right.merge(&bc);
        // record(a ++ b ++ c)
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        let oracle = record_all(&all);

        prop_assert_eq!(left.count(), oracle.count());
        prop_assert_eq!(right.count(), oracle.count());
        prop_assert_eq!(left.sum(), oracle.sum());
        prop_assert_eq!(right.sum(), oracle.sum());
        for q in [0.25, 0.5, 0.75, 0.99] {
            prop_assert_eq!(left.p(q), oracle.p(q));
            prop_assert_eq!(right.p(q), oracle.p(q));
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing(
        values in vec(0u64..1_000_000, 64..256),
        threads in 2usize..=6,
    ) {
        let shared = Histogram::new();
        std::thread::scope(|scope| {
            for chunk in values.chunks(values.len().div_ceil(threads)) {
                let shared = &shared;
                scope.spawn(move || {
                    for &v in chunk {
                        shared.record(v);
                    }
                });
            }
        });
        let sequential = record_all(&values);
        prop_assert_eq!(shared.count(), sequential.count());
        prop_assert_eq!(shared.sum(), sequential.sum());
        for q in [0.5, 0.99, 0.999] {
            prop_assert_eq!(shared.p(q), sequential.p(q));
        }
    }
}
