//! [`SimDriver`]: the async frontend on the simulated clock — no OS
//! threads, no wall time, fully deterministic.
//!
//! Where [`crate::AsyncPlane`] pairs drainer threads with a reactor
//! thread, the sim driver is both at once, single-threaded: each
//! [`SimDriver::run`] round polls every unfinished future (submissions
//! land in the rings), performs one `sys_smod_sweep` as its dedicated
//! drainer process (costs accrue to the simulated clock, exactly like
//! every other simulated dispatch flavor), then routes the posted
//! completions back into the futures' tables. Poll order, sweep order
//! and routing order are all fixed, so a seeded workload produces the
//! same interleaving on every run — which is what lets the coherence
//! proptests compare async outcomes against sequential `sys_smod_call`
//! byte for byte.

use crate::route::{route_completions, TableMap};
use crate::session::{AsyncSession, SessionCore, Target};
use crate::SlotTable;
use parking_lot::Mutex;
use secmod_kernel::{Credential, Errno, Kernel, Pid, SessionState, SysResult};
use secmod_ring::{ArgArena, RingPairConfig, RingSet};
use std::collections::HashMap;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

/// Rounds `run` tolerates with zero progress (no future completed, no
/// entry drained, no completion routed) before declaring the workload
/// stuck. One idle round is normal (e.g. every future already submitted,
/// sweep pending); several in a row means a future awaits something the
/// rings will never produce.
const STALL_LIMIT: u32 = 4;

/// Argument-arena capacity backing the driver's ring set.
const SIM_ARENA_BYTES: usize = 1 << 20;

/// `run` polls every future each round, so wake notifications carry no
/// information — a no-op waker keeps the loop honest about that.
struct NoopWake;

impl Wake for NoopWake {
    fn wake(self: Arc<Self>) {}
}

/// Deterministic single-threaded async driver over a borrowed kernel.
pub struct SimDriver<'k> {
    kernel: &'k Kernel,
    /// The root process the sweeps are charged to.
    drainer: Pid,
    set: Arc<RingSet>,
    tables: Arc<TableMap>,
    ring: RingPairConfig,
    session_budget: usize,
}

impl<'k> SimDriver<'k> {
    /// Build a driver with its own ring set (`slots` sessions max, each
    /// with `ring`-sized pairs) and a dedicated drainer process;
    /// `session_budget` entries are drained per session per sweep.
    pub fn new(
        kernel: &'k Kernel,
        slots: usize,
        ring: RingPairConfig,
        session_budget: usize,
    ) -> SysResult<SimDriver<'k>> {
        let drainer =
            kernel.spawn_process("sim-reactor", Credential::root(), vec![0x90; 4096], 2, 2)?;
        // Same zero-copy path the live plane uses: large payloads ride a
        // shared arena (1 MiB, quota = whole arena per session) so the sim
        // exercises descriptor dispatch deterministically too.
        let arena = ArgArena::with_metrics(SIM_ARENA_BYTES, Arc::clone(&kernel.metrics.arena));
        Ok(SimDriver {
            kernel,
            drainer,
            set: Arc::new(RingSet::with_arena(slots, arena, SIM_ARENA_BYTES)),
            tables: Arc::new(Mutex::new(HashMap::new())),
            ring,
            session_budget: session_budget.max(1),
        })
    }

    /// Attach `client`'s established session (same contract as
    /// [`secmod_kernel::plane::DispatchPlane::attach`]: `EPERM` without a
    /// session, `EINVAL` before the handshake completes, `ENOMEM` when
    /// every slot is taken).
    pub fn attach(&self, client: Pid) -> SysResult<AsyncSession> {
        let session = self.kernel.session_of(client).ok_or(Errno::EPERM)?;
        if session.state() != SessionState::Established {
            return Err(Errno::EINVAL);
        }
        let slot = self
            .set
            .register(session.id.0, client.0, self.ring)
            .ok_or(Errno::ENOMEM)?;
        let rings = self.set.get(slot).expect("freshly registered slot");
        let table = Arc::new(SlotTable::default());
        self.tables.lock().insert(slot.0, Arc::clone(&table));
        Ok(AsyncSession {
            core: Arc::new(SessionCore {
                target: Target::Raw {
                    set: Arc::clone(&self.set),
                    slot,
                    rings,
                },
                table,
                tables: Arc::clone(&self.tables),
                metrics: Some(Arc::clone(&self.kernel.metrics)),
            }),
        })
    }

    /// The driver's ring set (for tests asserting on slot state).
    pub fn ring_set(&self) -> &Arc<RingSet> {
        &self.set
    }

    /// One explicit turn of the crank: a single `sys_smod_sweep` over
    /// every ready session followed by a single routing pass, returning
    /// `(entries drained, completions routed)`.
    ///
    /// [`SimDriver::run`] does this implicitly between poll rounds; the
    /// standalone form exists for tests that poll futures by hand and
    /// need to observe exactly what one sweep wakes.
    ///
    /// # Panics
    ///
    /// Panics if the drainer's sweep fails.
    pub fn pump(&self) -> (usize, usize) {
        let report = self
            .kernel
            .sys_smod_sweep(self.drainer, &self.set, self.session_budget)
            .expect("sim drainer sweep");
        let routed = route_completions(&self.set, &self.tables, Some(&self.kernel.metrics));
        (report.drained, routed)
    }

    /// Drive every future to completion, returning their outputs in
    /// input order.
    ///
    /// # Panics
    ///
    /// Panics if the futures stop making progress (awaiting something
    /// other than this driver's rings) or if the drainer's sweep fails.
    pub fn run<T, F: Future<Output = T>>(&self, futures: impl IntoIterator<Item = F>) -> Vec<T> {
        let mut slots: Vec<Option<Pin<Box<F>>>> =
            futures.into_iter().map(|f| Some(Box::pin(f))).collect();
        let mut outputs: Vec<Option<T>> = slots.iter().map(|_| None).collect();
        let waker = Waker::from(Arc::new(NoopWake));
        let mut cx = Context::from_waker(&waker);
        let mut stalled = 0u32;
        loop {
            let mut completed = 0usize;
            let mut pending = 0usize;
            for i in 0..slots.len() {
                if let Some(future) = slots[i].as_mut() {
                    match future.as_mut().poll(&mut cx) {
                        Poll::Ready(value) => {
                            outputs[i] = Some(value);
                            slots[i] = None;
                            completed += 1;
                        }
                        Poll::Pending => pending += 1,
                    }
                }
            }
            if pending == 0 {
                break;
            }
            let (drained, routed) = self.pump();
            if completed > 0 || drained > 0 || routed > 0 {
                stalled = 0;
            } else {
                stalled += 1;
                assert!(
                    stalled < STALL_LIMIT,
                    "SimDriver stalled: {pending} futures pending with no ring progress"
                );
            }
        }
        outputs
            .into_iter()
            .map(|slot| slot.expect("every future completed"))
            .collect()
    }
}

impl std::fmt::Debug for SimDriver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimDriver")
            .field("drainer", &self.drainer)
            .field("session_budget", &self.session_budget)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::kernel_with_clients;

    #[test]
    fn interleaved_clients_complete_deterministically() {
        let (k, _m, clients, incr) = kernel_with_clients(3);
        let run_once = || -> Vec<u64> {
            let driver = SimDriver::new(&k, 4, RingPairConfig::default(), 8).unwrap();
            let sessions: Vec<AsyncSession> =
                clients.iter().map(|c| driver.attach(*c).unwrap()).collect();
            let futures: Vec<_> = sessions
                .iter()
                .enumerate()
                .map(|(i, session)| {
                    let session = session.clone();
                    async move {
                        // A dependent chain: each await's result feeds the
                        // next call, so suspension actually interleaves
                        // the three clients within one driver.
                        let mut acc = i as u64;
                        for _ in 0..5 {
                            let ret = session.call(incr, acc.to_le_bytes()).await.unwrap();
                            acc = u64::from_le_bytes(ret.try_into().unwrap());
                        }
                        acc
                    }
                })
                .collect();
            driver.run(futures)
        };
        let first = run_once();
        assert_eq!(first, vec![5, 6, 7]);
        assert_eq!(first, run_once(), "same workload, same interleaving");
    }

    #[test]
    fn tiny_rings_backpressure_resolves_without_spinning() {
        let (k, _m, clients, incr) = kernel_with_clients(1);
        let driver = SimDriver::new(
            &k,
            1,
            RingPairConfig {
                submission: 2,
                completion: 2,
            },
            2,
        )
        .unwrap();
        let session = driver.attach(clients[0]).unwrap();
        // 16 concurrent calls through a 2-deep ring: most bounce `Full`
        // on first poll and must be resumed by routed completions.
        let futures: Vec<_> = (0..16u64)
            .map(|i| {
                let session = session.clone();
                async move {
                    let ret = session.call(incr, i.to_le_bytes()).await.unwrap();
                    u64::from_le_bytes(ret.try_into().unwrap())
                }
            })
            .collect();
        assert_eq!(driver.run(futures), (1..=16u64).collect::<Vec<_>>());
    }

    #[test]
    fn dropped_sessions_free_their_slots() {
        let (k, _m, clients, _incr) = kernel_with_clients(1);
        // Capacity rounds up to one bitmap word (64 slots); attach/drop
        // far more times than that — a leaked slot per cycle would
        // exhaust the set long before 200.
        let driver = SimDriver::new(&k, 1, RingPairConfig::default(), 4).unwrap();
        assert_eq!(driver.ring_set().capacity(), 64);
        for _ in 0..200 {
            let session = driver.attach(clients[0]).unwrap();
            drop(session);
        }
        assert!(
            driver.ring_set().is_empty(),
            "every slot returned to the free list"
        );
        // And a full set really does answer ENOMEM.
        let held: Vec<AsyncSession> = (0..64)
            .map(|_| driver.attach(clients[0]).unwrap())
            .collect();
        assert!(matches!(driver.attach(clients[0]), Err(Errno::ENOMEM)));
        drop(held);
    }
}
