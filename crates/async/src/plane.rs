//! [`AsyncPlane`]: the futures frontend over a
//! [`DispatchPlane`][secmod_kernel::plane::DispatchPlane].
//!
//! The plane's drainer threads already sweep the ring set and post
//! completions; what the async frontend adds is a **reactor** — one
//! thread that parks on the plane's completion notification, claims the
//! ring set's *completion* bitmap (the mirror image of the readiness
//! bitmap the drainers claim), and routes every posted response to the
//! waker parked under its `user_data` cookie. The division of labor:
//!
//! ```text
//!   task: session.call(..).await
//!     │ push sq, mark_ready, park waker in SlotTable
//!     ▼
//!   drainer threads ──sweep──▶ kernel ──post cq──▶ mark_completed
//!     │                                               │ notify
//!     ▼                                               ▼
//!   (next session)                    reactor: sweep_completed
//!                                       → route resp to waker
//!                                       → executor re-polls task
//! ```
//!
//! Nobody busy-spins: tasks suspend (a parked waker costs a table entry,
//! not a thread), drainers park on the readiness protocol from PR 5, and
//! the reactor parks on the completion hook with a millisecond backstop.
//! That is how 100k+ logical clients ride on a handful of OS threads —
//! the paper's fixed-cost-per-dispatch story measured at a concurrency
//! the original syscall frontend cannot even express.

use crate::exec::{block_on, join_all};
use crate::route::{route_completions, SlotTable, TableMap};
use crate::session::{AsyncSession, CallFuture, SessionCore, Target};
use parking_lot::Mutex;
use secmod_kernel::dispatch::{
    DispatchCall, DispatchCaps, DispatchError, DispatchOutcome, Dispatcher,
};
use secmod_kernel::plane::{DispatchPlane, PlaneConfig, PlaneStats};
use secmod_kernel::proc::Pid;
use secmod_kernel::{Kernel, SysResult};
use secmod_obs::DispatchMetrics;
use secmod_ring::RingSet;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Duration;

/// How long the reactor sleeps when no completion notification arrives —
/// a liveness backstop only; the hook is the real wake path.
const REACTOR_BACKSTOP: Duration = Duration::from_millis(1);

/// The reactor's parking spot: completion hooks flip `notified`, the
/// reactor consumes it. `std::sync` because the vendored parking_lot shim
/// has no `Condvar`.
struct ReactorSignal {
    notified: StdMutex<bool>,
    available: Condvar,
    stop: AtomicBool,
}

impl ReactorSignal {
    fn notify(&self) {
        *self.notified.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.available.notify_one();
    }
}

/// The async dispatch frontend: a [`DispatchPlane`] plus the reactor
/// thread that turns its completions into task wake-ups.
pub struct AsyncPlane {
    /// `None` only after [`AsyncPlane::shutdown`] has taken it.
    plane: Option<DispatchPlane>,
    set: Arc<RingSet>,
    tables: Arc<TableMap>,
    signal: Arc<ReactorSignal>,
    reactor: Option<std::thread::JoinHandle<()>>,
    routed: Arc<AtomicU64>,
    /// The kernel's dispatch-metrics registry: the reactor records each
    /// routed completion's cost under the async flavor, and sessions
    /// count their backpressure re-submits here.
    metrics: Arc<DispatchMetrics>,
    /// Per-client session cache backing [`AsyncPlane::call`] and the
    /// [`Dispatcher`] impl; cleared at shutdown.
    sessions: Mutex<HashMap<u32, AsyncSession>>,
}

impl std::fmt::Debug for AsyncPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncPlane")
            .field("routed", &self.routed.load(Ordering::Relaxed))
            .field("attached_tables", &self.tables.lock().len())
            .finish()
    }
}

impl AsyncPlane {
    /// Start the underlying plane and the reactor thread.
    pub fn start(kernel: Arc<Kernel>, cfg: PlaneConfig) -> SysResult<AsyncPlane> {
        let metrics = Arc::clone(&kernel.metrics);
        let plane = DispatchPlane::start(kernel, cfg)?;
        let set = plane.ring_set();
        let tables: Arc<TableMap> = Arc::new(Mutex::new(HashMap::new()));
        let signal = Arc::new(ReactorSignal {
            notified: StdMutex::new(false),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let routed = Arc::new(AtomicU64::new(0));
        let reactor = {
            let set = Arc::clone(&set);
            let tables = Arc::clone(&tables);
            let signal = Arc::clone(&signal);
            let routed = Arc::clone(&routed);
            let metrics = Arc::clone(&metrics);
            std::thread::Builder::new()
                .name("smod-reactor".into())
                .spawn(move || reactor_loop(&set, &tables, &signal, &routed, &metrics))
                .expect("spawn reactor thread")
        };
        // The hook fires from whichever drainer just posted completions
        // (and once more at plane shutdown).
        {
            let signal = Arc::clone(&signal);
            plane.on_completions(Arc::new(move || signal.notify()));
        }
        Ok(AsyncPlane {
            plane: Some(plane),
            set,
            tables,
            signal,
            reactor: Some(reactor),
            routed,
            metrics,
            sessions: Mutex::new(HashMap::new()),
        })
    }

    /// Attach `client`'s established session, returning a cloneable
    /// async handle. Each call allocates its own ring slot; prefer
    /// [`AsyncPlane::call`] (which caches one attachment per client)
    /// unless you want several independent ring pairs for one client.
    pub fn attach(&self, client: Pid) -> SysResult<AsyncSession> {
        let plane = self.plane.as_ref().expect("plane not shut down");
        let handle = plane.attach(client)?;
        let table = Arc::new(SlotTable::default());
        self.tables
            .lock()
            .insert(handle.slot().0, Arc::clone(&table));
        Ok(AsyncSession {
            core: Arc::new(SessionCore {
                target: Target::Plane(handle),
                table,
                tables: Arc::clone(&self.tables),
                metrics: Some(Arc::clone(&self.metrics)),
            }),
        })
    }

    /// The cached session for `client`, attaching on first use.
    pub fn session(&self, client: Pid) -> SysResult<AsyncSession> {
        if let Some(session) = self.sessions.lock().get(&client.0) {
            return Ok(session.clone());
        }
        let session = self.attach(client)?;
        Ok(self
            .sessions
            .lock()
            .entry(client.0)
            .or_insert(session)
            .clone())
    }

    /// The headline call: `plane.call(client, proc_id, args)?.await`.
    pub fn call(
        &self,
        client: Pid,
        proc_id: u32,
        args: impl Into<Vec<u8>>,
    ) -> SysResult<CallFuture> {
        Ok(self.session(client)?.call(proc_id, args))
    }

    /// Completions routed to wakers so far.
    pub fn routed(&self) -> u64 {
        self.routed.load(Ordering::Relaxed)
    }

    /// The shared ring set (the same one the drainers sweep).
    pub fn ring_set(&self) -> Arc<RingSet> {
        Arc::clone(&self.set)
    }

    /// The kernel the plane dispatches into.
    pub fn kernel(&self) -> Arc<Kernel> {
        self.plane.as_ref().expect("plane not shut down").kernel()
    }

    /// Stop everything, in dependency order: drainers first (every
    /// accepted submission is swept through and posted), then the
    /// reactor (a final routing pass delivers those responses), then the
    /// tables detach (anything still parked resolves `Detached`).
    pub fn shutdown(mut self) -> PlaneStats {
        self.stop_parts().expect("shutdown consumes a live plane")
    }

    fn stop_parts(&mut self) -> Option<PlaneStats> {
        let plane = self.plane.take()?;
        let stats = plane.shutdown();
        self.signal.stop.store(true, Ordering::Release);
        self.signal.notify();
        if let Some(reactor) = self.reactor.take() {
            reactor.join().expect("reactor thread panicked");
        }
        for table in self.tables.lock().values() {
            table.detach();
        }
        self.sessions.lock().clear();
        Some(stats)
    }
}

impl Drop for AsyncPlane {
    fn drop(&mut self) {
        self.stop_parts();
    }
}

fn reactor_loop(
    set: &RingSet,
    tables: &TableMap,
    signal: &ReactorSignal,
    routed: &AtomicU64,
    metrics: &DispatchMetrics,
) {
    loop {
        // Order matters: observe `stop` *before* routing, so the pass
        // after the final observation covers every completion posted
        // before the flag flipped (the plane joins its drainers first).
        let stop = signal.stop.load(Ordering::Acquire);
        let n = route_completions(set, tables, Some(metrics));
        if n > 0 {
            routed.fetch_add(n as u64, Ordering::Relaxed);
        }
        if stop {
            return;
        }
        let mut notified = signal.notified.lock().unwrap_or_else(|e| e.into_inner());
        if !*notified {
            notified = signal
                .available
                .wait_timeout(notified, REACTOR_BACKSTOP)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        *notified = false;
    }
}

impl Dispatcher for AsyncPlane {
    /// One call, driven to completion on the calling thread.
    fn dispatch_one(&self, client: Pid, proc_id: u32, args: &[u8]) -> DispatchOutcome {
        let future = self
            .call(client, proc_id, args.to_vec())
            .map_err(DispatchError::from)?;
        block_on(future)
    }

    /// All calls submitted up front, awaited together — in flight
    /// concurrently through one session's rings. Submission is
    /// coalesced: the whole burst is pushed eagerly with one doorbell
    /// (see [`AsyncSession::call_batch`]).
    fn dispatch_batch(
        &self,
        client: Pid,
        calls: &[DispatchCall],
    ) -> Result<Vec<DispatchOutcome>, DispatchError> {
        let session = self.session(client).map_err(DispatchError::from)?;
        let futures: Vec<CallFuture> =
            session.call_batch(calls.iter().map(|call| (call.proc_id, call.args.clone())));
        Ok(block_on(join_all(futures)))
    }

    fn capabilities(&self) -> DispatchCaps {
        DispatchCaps {
            flavor: "async",
            batched: true,
            trap_free: true,
            asynchronous: true,
        }
    }

    fn metrics(&self) -> Option<&DispatchMetrics> {
        Some(&self.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use crate::testutil::kernel_with_clients;
    use std::future::Future;
    use std::pin::Pin;
    use std::task::{Context, Wake, Waker};

    #[test]
    fn a_hundred_logical_clients_share_two_executor_threads() {
        let (k, _m, clients, incr) = kernel_with_clients(1);
        let kernel = Arc::new(k);
        let plane = AsyncPlane::start(
            Arc::clone(&kernel),
            PlaneConfig::builder().drainers(2).build(),
        )
        .unwrap();
        let session = plane.session(clients[0]).unwrap();
        let exec = Executor::new(2);
        let handles: Vec<_> = (0..100u64)
            .map(|i| {
                let session = session.clone();
                exec.spawn(async move {
                    let ret = session.call(incr, i.to_le_bytes()).await.unwrap();
                    u64::from_le_bytes(ret.try_into().unwrap())
                })
            })
            .collect();
        let sum: u64 = handles.into_iter().map(|h| h.join()).sum();
        assert_eq!(sum, (1..=100u64).sum::<u64>());
        assert!(
            plane.routed() >= 100,
            "every completion routes through the reactor"
        );
        assert_eq!(session.in_flight(), 0);
        plane.shutdown();
    }

    #[test]
    fn async_dispatcher_matches_the_kernel_flavor() {
        let (k, _m, clients, incr) = kernel_with_clients(1);
        let client = clients[0];
        let calls: Vec<DispatchCall> = (0..32u64)
            .map(|i| {
                if i % 5 == 0 {
                    DispatchCall::new(u32::MAX, Vec::new()) // unknown function
                } else {
                    DispatchCall::new(incr, i.to_le_bytes().to_vec())
                }
            })
            .collect();
        let expected = k.dispatch_batch(client, &calls).unwrap();
        let kernel = Arc::new(k);
        let plane = AsyncPlane::start(kernel, PlaneConfig::default()).unwrap();
        assert!(plane.capabilities().asynchronous);
        assert_eq!(plane.dispatch_batch(client, &calls).unwrap(), expected);
        assert_eq!(
            plane
                .dispatch_one(client, incr, &41u64.to_le_bytes())
                .unwrap(),
            42u64.to_le_bytes().to_vec()
        );
        plane.shutdown();
    }

    #[test]
    fn dropping_a_future_mid_await_leaks_nothing() {
        struct NoopWake;
        impl Wake for NoopWake {
            fn wake(self: Arc<Self>) {}
        }
        let (k, _m, clients, incr) = kernel_with_clients(1);
        let kernel = Arc::new(k);
        let plane = AsyncPlane::start(kernel, PlaneConfig::default()).unwrap();
        let session = plane.session(clients[0]).unwrap();
        let waker = Waker::from(Arc::new(NoopWake));
        let mut cx = Context::from_waker(&waker);
        // First poll submits; drop before completion is cancellation.
        // (If the drainer wins the race and the poll is already Ready,
        // the drop is an ordinary one — both paths must leave the table
        // empty.)
        let mut future = session.call(incr, 1u64.to_le_bytes());
        let _ = Pin::new(&mut future).poll(&mut cx);
        drop(future);
        // The orphaned completion (if any) is discarded by the reactor;
        // nothing stays registered and the session keeps working.
        let ret = block_on(session.call(incr, 9u64.to_le_bytes())).unwrap();
        assert_eq!(ret, 10u64.to_le_bytes().to_vec());
        assert_eq!(session.in_flight(), 0);
        plane.shutdown();
    }

    #[test]
    fn call_costed_surfaces_the_simulated_cost() {
        let (k, _m, clients, incr) = kernel_with_clients(1);
        let kernel = Arc::new(k);
        let plane = AsyncPlane::start(Arc::clone(&kernel), PlaneConfig::default()).unwrap();
        let session = plane.session(clients[0]).unwrap();
        let (ret, cost_ns) = block_on(session.call_costed(incr, 5u64.to_le_bytes())).unwrap();
        assert_eq!(ret, 6u64.to_le_bytes().to_vec());
        assert!(
            cost_ns >= kernel.cost.cached_decision_ns,
            "the cost covers at least the policy decision, got {cost_ns}"
        );
        // The reactor recorded the completion under the async flavor.
        let summary = plane.metrics().unwrap().latency(secmod_obs::Flavor::Async);
        assert!(summary.count() >= 1);
        plane.shutdown();
    }

    #[test]
    fn call_batch_resolves_every_call_with_one_doorbell() {
        let (k, _m, clients, incr) = kernel_with_clients(1);
        let kernel = Arc::new(k);
        let plane = AsyncPlane::start(Arc::clone(&kernel), PlaneConfig::default()).unwrap();
        let session = plane.session(clients[0]).unwrap();
        let futures = session.call_batch((0..32u64).map(|i| (incr, i.to_le_bytes().to_vec())));
        assert_eq!(futures.len(), 32);
        let results = block_on(join_all(futures));
        for (i, result) in results.into_iter().enumerate() {
            assert_eq!(result.unwrap(), (i as u64 + 1).to_le_bytes().to_vec());
        }
        assert_eq!(session.in_flight(), 0);
        plane.shutdown();
    }

    #[test]
    fn call_batch_bounces_retry_through_the_poll_path() {
        // A 4-deep submission ring: most of a 32-call burst bounces at
        // batch time and must still resolve via first-poll resubmission.
        let (k, _m, clients, incr) = kernel_with_clients(1);
        let kernel = Arc::new(k);
        let plane = AsyncPlane::start(
            Arc::clone(&kernel),
            PlaneConfig {
                ring: secmod_ring::RingPairConfig {
                    submission: 4,
                    completion: 64,
                },
                ..PlaneConfig::default()
            },
        )
        .unwrap();
        let session = plane.session(clients[0]).unwrap();
        let futures = session.call_batch((0..32u64).map(|i| (incr, i.to_le_bytes().to_vec())));
        let results = block_on(join_all(futures));
        for (i, result) in results.into_iter().enumerate() {
            assert_eq!(result.unwrap(), (i as u64 + 1).to_le_bytes().to_vec());
        }
        assert!(
            kernel.metrics.async_resubmits.get() > 0,
            "a 4-deep ring must have bounced part of the burst"
        );
        plane.shutdown();
    }

    #[test]
    fn calls_after_shutdown_resolve_detached() {
        let (k, _m, clients, incr) = kernel_with_clients(1);
        let kernel = Arc::new(k);
        let plane = AsyncPlane::start(kernel, PlaneConfig::default()).unwrap();
        let session = plane.session(clients[0]).unwrap();
        assert!(block_on(session.call(incr, 1u64.to_le_bytes())).is_ok());
        plane.shutdown();
        assert_eq!(
            block_on(session.call(incr, 2u64.to_le_bytes())),
            Err(DispatchError::Detached)
        );
    }
}
