//! `secmod_async` — the futures-based submission frontend.
//!
//! PR 5's dispatch plane removed the *trap* from the producer's path;
//! this crate removes the *thread*. A logical client becomes a task —
//! `session.call(proc_id, args).await` — that costs a parked waker in a
//! routing table while its request rides the PR 4 rings, so 100k+
//! logical clients multiplex over a handful of OS threads: the plane's
//! drainers plus one reactor plus however many executor workers you give
//! [`Executor::new`]. Nothing here changes what a dispatch *is* — the
//! same `sys_smod_sweep` drains the same rings under the same paper cost
//! model — only how many concurrent callers can be waiting on one.
//!
//! The pieces, bottom-up:
//!
//! * [`exec`] — a minimal executor shim in the `vendor/` discipline:
//!   [`Executor`] (fixed worker pool, one injector queue),
//!   [`block_on`], [`join_all`]. Pure `std::task`, no unsafe.
//! * `route` (internal) — [`SlotTable`]: per-session `user_data` →
//!   parked-waker maps, fed by the ring set's completion bitmap.
//! * [`session`] — [`AsyncSession`] / [`CallFuture`]: the awaitable
//!   call itself, including backpressure suspension and drop-to-cancel.
//! * [`plane`] — [`AsyncPlane`]: a
//!   [`DispatchPlane`][secmod_kernel::plane::DispatchPlane] plus the
//!   reactor thread that turns completion notifications into wake-ups.
//! * [`sim`] — [`SimDriver`]: the same frontend single-threaded on the
//!   simulated clock, for deterministic coherence tests.
//!
//! Both frontends implement the unified
//! [`Dispatcher`][secmod_kernel::dispatch::Dispatcher] vocabulary
//! (flavor `"async"`), so any harness written against the trait can be
//! pointed at them unchanged.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod exec;
pub mod plane;
pub(crate) mod route;
pub mod session;
pub mod sim;

pub use exec::{block_on, join_all, Executor, JoinAll, JoinHandle};
pub use plane::AsyncPlane;
pub use route::SlotTable;
pub use session::{AsyncSession, CallFuture, CostedCallFuture};
pub use sim::SimDriver;

#[cfg(test)]
pub(crate) mod testutil;
