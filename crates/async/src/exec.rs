//! A minimal multi-threaded executor — the same vendored-shim discipline
//! as `vendor/`: just enough of the tokio/async-std surface
//! ([`Executor::spawn`], [`JoinHandle`], [`block_on`]) for the async
//! dispatch frontend, built purely on `std::task` and thread parking.
//!
//! The design is the classic one (futures-rs `ArcWake`, smol's
//! single-queue core): a task is an `Arc` holding the boxed future and a
//! re-enqueue flag; its [`Waker`] (via `std::task::Wake`, so no unsafe
//! vtables) pushes the task back onto one shared injector queue; worker
//! threads pop and poll. One global queue is deliberate — the workload
//! this executor exists for (100k+ logical clients awaiting ring
//! completions) is wake-dominated and the tasks are tiny, so per-worker
//! deques and work stealing would be complexity without a measurable win
//! at the bench's scale.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::task::{Context, Poll, Wake, Waker};

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// The shared run queue: an injector deque plus a condvar so idle
/// workers sleep instead of spinning. Uses `std::sync` directly (the
/// vendored parking_lot shim carries no `Condvar`); poison is shrugged
/// off the same way the shim does it.
struct Queue {
    injector: StdMutex<VecDeque<Arc<Task>>>,
    available: Condvar,
    shutdown: AtomicBool,
}

impl Queue {
    fn injector(&self) -> std::sync::MutexGuard<'_, VecDeque<Arc<Task>>> {
        self.injector.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn push(&self, task: Arc<Task>) {
        self.injector().push_back(task);
        self.available.notify_one();
    }
}

/// One spawned future plus its scheduling state.
struct Task {
    /// `None` once the future has completed (or is momentarily taken out
    /// for polling).
    future: Mutex<Option<BoxFuture>>,
    /// True while the task sits in the injector — a waker firing N times
    /// between polls enqueues once, not N times.
    queued: AtomicBool,
    queue: Arc<Queue>,
}

impl Task {
    fn schedule(self: &Arc<Task>) {
        if !self.queued.swap(true, Ordering::AcqRel) {
            self.queue.push(Arc::clone(self));
        }
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        self.schedule();
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.schedule();
    }
}

/// Shared completion state behind a [`JoinHandle`].
struct JoinState<T> {
    result: Mutex<(Option<T>, Option<Waker>)>,
    done: AtomicBool,
}

/// Await (or block on) a spawned task's result.
pub struct JoinHandle<T> {
    state: Arc<JoinState<T>>,
}

impl<T: Send + 'static> JoinHandle<T> {
    /// Block the current thread until the task completes.
    pub fn join(self) -> T {
        block_on(self)
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut guard = self.state.result.lock();
        if self.state.done.load(Ordering::Acquire) {
            if let Some(value) = guard.0.take() {
                return Poll::Ready(value);
            }
            panic!("JoinHandle polled after completion");
        }
        guard.1 = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// A fixed pool of worker threads polling spawned futures.
pub struct Executor {
    queue: Arc<Queue>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl Executor {
    /// Spawn `threads` workers (min 1).
    pub fn new(threads: usize) -> Executor {
        let queue = Arc::new(Queue {
            injector: StdMutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("smod-async{i}"))
                    .spawn(move || worker_loop(&queue))
                    .expect("spawn executor worker")
            })
            .collect();
        Executor { queue, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Spawn a future onto the pool.
    pub fn spawn<T, F>(&self, future: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: Future<Output = T> + Send + 'static,
    {
        let state = Arc::new(JoinState {
            result: Mutex::new((None, None)),
            done: AtomicBool::new(false),
        });
        let task_state = Arc::clone(&state);
        let wrapped = async move {
            let value = future.await;
            let waker = {
                let mut guard = task_state.result.lock();
                guard.0 = Some(value);
                task_state.done.store(true, Ordering::Release);
                guard.1.take()
            };
            if let Some(waker) = waker {
                waker.wake();
            }
        };
        let task = Arc::new(Task {
            future: Mutex::new(Some(Box::pin(wrapped))),
            queued: AtomicBool::new(false),
            queue: Arc::clone(&self.queue),
        });
        task.schedule();
        JoinHandle { state }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.queue.shutdown.store(true, Ordering::Release);
        self.queue.available.notify_all();
        for worker in self.workers.drain(..) {
            worker.join().expect("executor worker panicked");
        }
    }
}

fn worker_loop(queue: &Arc<Queue>) {
    loop {
        let task = {
            let mut injector = queue.injector();
            loop {
                if let Some(task) = injector.pop_front() {
                    break task;
                }
                if queue.shutdown.load(Ordering::Acquire) {
                    return;
                }
                injector = queue
                    .available
                    .wait(injector)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        // Clear `queued` *before* polling: a wake that lands mid-poll
        // re-enqueues the task, guaranteeing at least one more poll sees
        // whatever the waker announced.
        task.queued.store(false, Ordering::Release);
        let waker = Waker::from(Arc::clone(&task));
        let mut cx = Context::from_waker(&waker);
        let mut slot = task.future.lock();
        if let Some(future) = slot.as_mut() {
            if future.as_mut().poll(&mut cx).is_ready() {
                *slot = None; // completed: drop the future, ignore re-wakes
            }
        }
    }
}

/// The thread-parker waker behind [`block_on`].
struct ThreadNotify {
    thread: std::thread::Thread,
    notified: AtomicBool,
}

impl Wake for ThreadNotify {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.notified.store(true, Ordering::Release);
        self.thread.unpark();
    }
}

/// Poll `future` to completion on the calling thread, parking between
/// polls (the thread-parker waker every executor textbook opens with).
pub fn block_on<T, F: Future<Output = T>>(future: F) -> T {
    let notify = Arc::new(ThreadNotify {
        thread: std::thread::current(),
        notified: AtomicBool::new(false),
    });
    let waker = Waker::from(Arc::clone(&notify));
    let mut cx = Context::from_waker(&waker);
    let mut future = std::pin::pin!(future);
    loop {
        if let Poll::Ready(value) = future.as_mut().poll(&mut cx) {
            return value;
        }
        while !notify.notified.swap(false, Ordering::AcqRel) {
            std::thread::park();
        }
    }
}

/// Await every future in the batch, yielding outputs in input order —
/// the tiny corner of `futures::future::join_all` the dispatch frontends
/// need. O(pending) re-polls per wake, which is fine at dispatch batch
/// sizes; the 100k-client bench runs one spawned task per client instead.
pub struct JoinAll<F: Future + Unpin> {
    futures: Vec<Option<F>>,
    outputs: Vec<Option<F::Output>>,
}

/// Combine a batch of futures into one that resolves when all do.
pub fn join_all<F: Future + Unpin>(futures: impl IntoIterator<Item = F>) -> JoinAll<F> {
    let futures: Vec<Option<F>> = futures.into_iter().map(Some).collect();
    let outputs = futures.iter().map(|_| None).collect();
    JoinAll { futures, outputs }
}

// No self-references regardless of what Output is: Vec storage is heap
// storage, and the only pinning requirement we pass through is F's own.
impl<F: Future + Unpin> Unpin for JoinAll<F> {}

impl<F: Future + Unpin> Future for JoinAll<F> {
    type Output = Vec<F::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Vec<F::Output>> {
        let this = self.get_mut();
        let mut all_done = true;
        for i in 0..this.futures.len() {
            if let Some(future) = this.futures[i].as_mut() {
                match Pin::new(future).poll(cx) {
                    Poll::Ready(value) => {
                        this.outputs[i] = Some(value);
                        this.futures[i] = None;
                    }
                    Poll::Pending => all_done = false,
                }
            }
        }
        if all_done {
            Poll::Ready(
                this.outputs
                    .iter_mut()
                    .map(|slot| slot.take().expect("every output filled"))
                    .collect(),
            )
        } else {
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// A future that is Pending until an external flag flips, re-waking
    /// itself through the stored waker.
    struct FlagFuture {
        flag: Arc<AtomicBool>,
        waker_out: Arc<Mutex<Option<Waker>>>,
    }

    impl Future for FlagFuture {
        type Output = ();
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.flag.load(Ordering::Acquire) {
                Poll::Ready(())
            } else {
                *self.waker_out.lock() = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }

    #[test]
    fn block_on_runs_a_future_to_completion() {
        assert_eq!(block_on(async { 21 * 2 }), 42);
    }

    #[test]
    fn spawned_tasks_complete_and_join() {
        let exec = Executor::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..64u64)
            .map(|i| {
                let counter = Arc::clone(&counter);
                exec.spawn(async move {
                    counter.fetch_add(1, Ordering::AcqRel);
                    i * 2
                })
            })
            .collect();
        let sum: u64 = handles.into_iter().map(|h| h.join()).sum();
        assert_eq!(sum, (0..64u64).map(|i| i * 2).sum());
        assert_eq!(counter.load(Ordering::Acquire), 64);
    }

    #[test]
    fn a_woken_task_is_polled_again() {
        let exec = Executor::new(1);
        let flag = Arc::new(AtomicBool::new(false));
        let waker_out = Arc::new(Mutex::new(None));
        let handle = exec.spawn(FlagFuture {
            flag: Arc::clone(&flag),
            waker_out: Arc::clone(&waker_out),
        });
        // Wait for the first poll to park the waker.
        while waker_out.lock().is_none() {
            std::thread::yield_now();
        }
        flag.store(true, Ordering::Release);
        waker_out.lock().take().unwrap().wake();
        handle.join();
    }

    #[test]
    fn many_more_tasks_than_threads() {
        let exec = Executor::new(2);
        let handles: Vec<_> = (0..10_000u64)
            .map(|i| exec.spawn(async move { i }))
            .collect();
        let sum: u64 = handles.into_iter().map(|h| h.join()).sum();
        assert_eq!(sum, 10_000 * 9_999 / 2);
    }
}
