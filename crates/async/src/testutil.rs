//! Shared test universe: a real kernel with one sealed module and N
//! established client sessions — the same rig the kernel crate's batch
//! and plane tests use, rebuilt here over the public API.

use secmod_kernel::smod::ModuleKeyDelivery;
use secmod_kernel::smodreg::FunctionTable;
use secmod_kernel::{CostModel, Credential, Errno, Kernel, Pid};
use secmod_module::builder::ModuleBuilder;
use secmod_module::{ModuleId, SmodPackage, StubTable};
use secmod_policy::assertion::{Assertion, LicenseeExpr};
use secmod_policy::{PolicyEngine, Principal};

pub(crate) const ALICE_KEY: &[u8] = b"async-alice-key";
const MAC_KEY: &[u8] = b"async-mac-key";

/// A libc-like module whose every function body returns its u64 argument
/// plus one, a policy granting alice everything but `strlen`, and
/// `n_clients` clients each holding an established session. Returns the
/// kernel, the module id, the clients, and `testincr`'s func id.
pub(crate) fn kernel_with_clients(n_clients: usize) -> (Kernel, ModuleId, Vec<Pid>, u32) {
    let k = Kernel::new(CostModel::default());
    let registrar = k
        .spawn_process("registrar", Credential::root(), vec![0x90; 4096], 2, 2)
        .unwrap();
    let image = ModuleBuilder::libc_like();
    let key = b"0123456789abcdef".to_vec();
    let nonce = [4u8; 8];
    let enc = secmod_crypto::SelectiveEncryptor::new(&key, nonce).unwrap();
    let package = SmodPackage::seal(&image, &enc, MAC_KEY).unwrap();

    let mut policy = PolicyEngine::new();
    let alice = Principal::from_key("uid1000", ALICE_KEY);
    policy
        .add_assertion(
            Assertion::policy(LicenseeExpr::Single(alice), "function != \"strlen\"").unwrap(),
        )
        .unwrap();

    let stub_table = StubTable::generate(&image);
    let mut functions = FunctionTable::new();
    for stub in &stub_table.stubs {
        functions.register(stub.func_id, |_ctx, args| {
            let v = u64::from_le_bytes(args[..8].try_into().map_err(|_| Errno::EINVAL)?);
            Ok((v + 1).to_le_bytes().to_vec())
        });
    }
    let incr_id = stub_table.by_name("testincr").unwrap().func_id;

    let m_id = k
        .sys_smod_add(
            registrar,
            package,
            ModuleKeyDelivery::Raw { key, nonce },
            MAC_KEY,
            policy,
            functions,
        )
        .unwrap();
    let clients: Vec<Pid> = (0..n_clients)
        .map(|i| {
            let client = k
                .spawn_process(
                    &format!("async-client{i}"),
                    Credential::user(1000, 100).with_smod_credential("libc", ALICE_KEY),
                    vec![0x90; 4096],
                    4,
                    4,
                )
                .unwrap();
            let (_session, handle) = k.sys_smod_start_session(client, m_id).unwrap();
            k.sys_smod_session_info(handle).unwrap();
            k.sys_smod_handle_info(client).unwrap();
            client
        })
        .collect();
    (k, m_id, clients, incr_id)
}
