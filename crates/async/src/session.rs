//! [`AsyncSession`] and [`CallFuture`]: `session.call(proc_id,
//! args).await` as a plain `std::future::Future`.
//!
//! A session object is cheap to clone and share — *that* is the
//! multiplexing point: any number of logical clients (tasks) can issue
//! calls on one attached session concurrently, each distinguished by a
//! per-session `user_data` cookie allocated at submission. The future
//! drives the whole life cycle from its `poll`:
//!
//! 1. **Unsubmitted** — allocate the cookie, park the waker in the
//!    session's [`SlotTable`], push into the submission ring. A `Full`
//!    bounce parks the task on the table's backpressure list instead of
//!    spinning (the paper's fixed-cost argument in async clothing: a
//!    stalled producer must cost a suspended task, not a burning core).
//! 2. **Submitted** — wait for the router to deliver the response into
//!    the table entry and wake us.
//! 3. **Done** — the entry is removed; the outcome is the same
//!    [`DispatchOutcome`] every other dispatch flavor produces.
//!
//! Dropping the future at any point removes its table entry: an
//! already-submitted request still executes (the kernel has it), but its
//! completion is discarded by the router — cancellation without leaks.

use crate::route::{SlotTable, TableMap};
use secmod_kernel::dispatch::{DispatchError, DispatchOutcome};
use secmod_kernel::plane::PlaneHandle;
use secmod_kernel::proc::Pid;
use secmod_obs::DispatchMetrics;
use secmod_ring::{
    ArgRef, RingSet, RingSlotId, SessionRings, SmodCallReq, SmodCallResp, SubmitError,
};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::task::{Context, Poll};

/// Where a session's submissions go: through a live plane (drainer
/// threads do the sweeping) or straight into a raw ring set (the sim
/// driver pumps sweeps itself).
pub(crate) enum Target {
    /// Attached to a [`secmod_kernel::plane::DispatchPlane`].
    Plane(PlaneHandle),
    /// Registered directly in a ring set the driver owns.
    Raw {
        set: Arc<RingSet>,
        slot: RingSlotId,
        rings: Arc<SessionRings>,
    },
}

impl Target {
    fn submit(&self, proc_id: u32, user_data: u64, args: Vec<u8>) -> Result<(), SubmitError> {
        match self {
            // PlaneHandle::submit does the inline-vs-arena placement.
            Target::Plane(handle) => handle.submit(proc_id, user_data, args),
            Target::Raw { set, slot, rings } => set.submit(
                *slot,
                SmodCallReq {
                    session: rings.session,
                    proc_id,
                    user_data,
                    // Large payloads ride the set's arena when it has one
                    // (a bounced req frees its slot on drop, so retries
                    // re-place cleanly).
                    args: ArgRef::place_vec(args, rings.arena.as_ref()),
                },
            ),
        }
    }

    fn alloc_user_data(&self) -> u64 {
        match self {
            Target::Plane(handle) => handle.alloc_user_data(),
            Target::Raw { rings, .. } => rings.alloc_user_data(),
        }
    }

    pub(crate) fn slot(&self) -> RingSlotId {
        match self {
            Target::Plane(handle) => handle.slot(),
            Target::Raw { slot, .. } => *slot,
        }
    }

    fn owner(&self) -> u32 {
        match self {
            Target::Plane(handle) => handle.owner(),
            Target::Raw { rings, .. } => rings.owner,
        }
    }
}

/// Shared guts of an attached async session. Lives as long as the last
/// session clone *or in-flight future* referencing it.
pub(crate) struct SessionCore {
    pub(crate) target: Target,
    pub(crate) table: Arc<SlotTable>,
    /// The owning frontend's slot→table registry, so teardown is
    /// self-service: dropping the last reference unhooks the table.
    pub(crate) tables: Arc<TableMap>,
    /// The kernel's dispatch-metrics registry (backpressure re-submits
    /// are counted here); `None` keeps hand-built test fixtures cheap.
    pub(crate) metrics: Option<Arc<DispatchMetrics>>,
}

impl Drop for SessionCore {
    fn drop(&mut self) {
        self.tables.lock().remove(&self.target.slot().0);
        if let Target::Raw { set, slot, .. } = &self.target {
            set.deregister(*slot);
        }
        // Plane targets deregister via PlaneHandle's own Drop.
    }
}

/// A client's asynchronous attachment: clone it into as many logical
/// clients as you like; every clone submits into the same session ring
/// pair and completions route back by cookie.
#[derive(Clone)]
pub struct AsyncSession {
    pub(crate) core: Arc<SessionCore>,
}

impl std::fmt::Debug for AsyncSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncSession")
            .field("slot", &self.core.target.slot())
            .field("in_flight", &self.core.table.in_flight())
            .finish()
    }
}

impl AsyncSession {
    /// Issue one call; `.await` the returned future for its outcome.
    pub fn call(&self, proc_id: u32, args: impl Into<Vec<u8>>) -> CallFuture {
        CallFuture {
            inner: self.call_inner(proc_id, args.into()),
        }
    }

    /// Issue one call, resolving to `(return bytes, simulated cost in
    /// nanoseconds)` — the same `cost_ns` every synchronous flavor
    /// surfaces through [`secmod_ring::SmodCallResp`], which the plain
    /// [`AsyncSession::call`] discards.
    pub fn call_costed(&self, proc_id: u32, args: impl Into<Vec<u8>>) -> CostedCallFuture {
        CostedCallFuture {
            inner: self.call_inner(proc_id, args.into()),
        }
    }

    fn call_inner(&self, proc_id: u32, args: Vec<u8>) -> CallInner {
        CallInner {
            core: Arc::clone(&self.core),
            state: CallState::Unsubmitted {
                proc_id,
                args,
                user_data: None,
            },
        }
    }

    /// Issue a burst of calls with one doorbell: on a plane-backed
    /// session every accepted entry is pushed eagerly through a
    /// [`secmod_kernel::plane::SubmitBatch`], so the drainers see one
    /// readiness flag and at most one unpark for the whole burst instead
    /// of one per call. Entries that bounce off a full submission ring
    /// come back as ordinary unsubmitted futures — their first poll
    /// retries through the standard backpressure path (counted in
    /// `async_resubmits`), so awaiting the returned futures always
    /// resolves every call.
    ///
    /// Raw (driver-pumped) sessions have no parked drainer to coalesce
    /// wakeups for; they take the per-call path unchanged.
    pub fn call_batch<I>(&self, calls: I) -> Vec<CallFuture>
    where
        I: IntoIterator<Item = (u32, Vec<u8>)>,
    {
        let Target::Plane(handle) = &self.core.target else {
            return calls
                .into_iter()
                .map(|(proc_id, args)| self.call(proc_id, args))
                .collect();
        };
        let mut futures = Vec::new();
        let mut batch = handle.batch();
        for (proc_id, args) in calls {
            let ud = self.core.target.alloc_user_data();
            // Register the cookie before submitting so a completion
            // racing this loop has somewhere to land; the waker is
            // parked by the first poll.
            self.core.table.pending.lock().entry(ud).or_default();
            let state = match batch.push(proc_id, ud, args.clone()) {
                Ok(()) => CallState::Submitted { user_data: ud },
                // Bounced (the guard flushed the prefix) or the plane is
                // stopping: hand the poll path an unsubmitted future with
                // the cookie pinned — it retries or resolves `Detached`.
                Err(err) => {
                    if matches!(err, SubmitError::Full(_)) {
                        if let Some(metrics) = &self.core.metrics {
                            metrics.async_resubmits.incr();
                        }
                    }
                    CallState::Unsubmitted {
                        proc_id,
                        args,
                        user_data: Some(ud),
                    }
                }
            };
            futures.push(CallFuture {
                inner: CallInner {
                    core: Arc::clone(&self.core),
                    state,
                },
            });
        }
        batch.flush();
        futures
    }

    /// The client pid this session dispatches as.
    pub fn client(&self) -> Pid {
        Pid(self.core.target.owner())
    }

    /// Calls currently awaiting completion on this session.
    pub fn in_flight(&self) -> usize {
        self.core.table.in_flight()
    }
}

enum CallState {
    Unsubmitted {
        proc_id: u32,
        args: Vec<u8>,
        /// Set once the cookie (and its table entry) exists — i.e. after
        /// the first poll, even if the submit itself keeps bouncing.
        user_data: Option<u64>,
    },
    Submitted {
        user_data: u64,
    },
    Done,
}

/// The shared call state machine: both public futures drive this to a
/// raw [`SmodCallResp`] and differ only in how they project the result.
struct CallInner {
    core: Arc<SessionCore>,
    state: CallState,
}

impl CallInner {
    fn poll_resp(&mut self, cx: &mut Context<'_>) -> Poll<Result<SmodCallResp, DispatchError>> {
        loop {
            match &mut self.state {
                CallState::Unsubmitted {
                    proc_id,
                    args,
                    user_data,
                } => {
                    let table = &self.core.table;
                    if table.detached.load(Ordering::Acquire) {
                        if let Some(ud) = user_data {
                            table.pending.lock().remove(ud);
                        }
                        self.state = CallState::Done;
                        return Poll::Ready(Err(DispatchError::Detached));
                    }
                    let ud = *user_data.get_or_insert_with(|| self.core.target.alloc_user_data());
                    // Park the waker *before* submitting: a completion
                    // racing this poll finds somewhere to deliver.
                    table.pending.lock().entry(ud).or_default().waker = Some(cx.waker().clone());
                    match self.core.target.submit(*proc_id, ud, args.clone()) {
                        Ok(()) => {
                            self.state = CallState::Submitted { user_data: ud };
                            // Fall through: the response may already be
                            // routed by the time we re-check.
                        }
                        Err(SubmitError::Full(_)) => {
                            // Backpressure: suspend until the router sees
                            // a completion on this session (which implies
                            // submission-ring space reappeared). Each
                            // bounce is one deferred re-submit.
                            if let Some(metrics) = &self.core.metrics {
                                metrics.async_resubmits.incr();
                            }
                            table.submit_waiters.lock().push(cx.waker().clone());
                            return Poll::Pending;
                        }
                        Err(SubmitError::Detached(_)) => {
                            table.pending.lock().remove(&ud);
                            self.state = CallState::Done;
                            return Poll::Ready(Err(DispatchError::Detached));
                        }
                    }
                }
                CallState::Submitted { user_data } => {
                    let ud = *user_data;
                    let table = &self.core.table;
                    let mut pending = table.pending.lock();
                    let Some(entry) = pending.get_mut(&ud) else {
                        // Entry vanished without us removing it — only
                        // teardown does that.
                        drop(pending);
                        self.state = CallState::Done;
                        return Poll::Ready(Err(DispatchError::Detached));
                    };
                    if let Some(resp) = entry.resp.take() {
                        pending.remove(&ud);
                        drop(pending);
                        self.state = CallState::Done;
                        return Poll::Ready(Ok(resp));
                    }
                    if table.detached.load(Ordering::Acquire) {
                        // Shut down with the response never routed: the
                        // call is lost to teardown.
                        pending.remove(&ud);
                        drop(pending);
                        self.state = CallState::Done;
                        return Poll::Ready(Err(DispatchError::Detached));
                    }
                    entry.waker = Some(cx.waker().clone());
                    return Poll::Pending;
                }
                CallState::Done => panic!("call future polled after completion"),
            }
        }
    }
}

impl Drop for CallInner {
    fn drop(&mut self) {
        let user_data = match &self.state {
            CallState::Unsubmitted { user_data, .. } => *user_data,
            CallState::Submitted { user_data } => Some(*user_data),
            CallState::Done => None,
        };
        if let Some(ud) = user_data {
            // Cancelled mid-await: unregister the cookie so the router
            // discards the completion instead of leaking the entry.
            self.core.table.pending.lock().remove(&ud);
        }
    }
}

/// One in-flight `call`; resolves to the unified [`DispatchOutcome`].
///
/// Cancellation-safe: dropping it mid-await unregisters the cookie, and
/// the router discards the orphaned completion when it arrives.
pub struct CallFuture {
    inner: CallInner,
}

impl Future for CallFuture {
    type Output = DispatchOutcome;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<DispatchOutcome> {
        // No self-references: plain field access is fine.
        match self.get_mut().inner.poll_resp(cx) {
            Poll::Ready(Ok(resp)) => Poll::Ready(DispatchError::from_resp(resp)),
            Poll::Ready(Err(e)) => Poll::Ready(Err(e)),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// One in-flight [`AsyncSession::call_costed`]; resolves to the return
/// bytes *and* the call's simulated `cost_ns`. Cancellation-safe exactly
/// like [`CallFuture`].
pub struct CostedCallFuture {
    inner: CallInner,
}

impl Future for CostedCallFuture {
    type Output = Result<(Vec<u8>, u64), DispatchError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match self.get_mut().inner.poll_resp(cx) {
            Poll::Ready(Ok(resp)) => {
                let cost_ns = resp.cost_ns;
                Poll::Ready(DispatchError::from_resp(resp).map(|ret| (ret, cost_ns)))
            }
            Poll::Ready(Err(e)) => Poll::Ready(Err(e)),
            Poll::Pending => Poll::Pending,
        }
    }
}
