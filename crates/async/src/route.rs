//! Completion routing: `user_data` → waker tables, fed by the
//! [`RingSet`] completion bitmap.
//!
//! Each attached session (= one ring-set slot) owns a [`SlotTable`]: a
//! map from in-flight `user_data` cookies to the pending call's state
//! (parked waker, then the routed response), plus a list of wakers
//! parked on submission backpressure. A router pass
//! ([`route_completions`]) claims the completion bitmap with one
//! `swap(0)` per word, pops each flagged session's completion ring, and
//! routes every response to its waker — the "waker storm": one sweep's
//! worth of completions wakes every logical client it answered, however
//! many OS threads those clients are multiplexed over.
//!
//! Cancellation falls out of the table shape: a [`crate::CallFuture`]
//! that is dropped mid-await removes its own entry, so its completion
//! arrives, finds no entry, and is discarded — no waker leak, no slot
//! leak, nothing for anyone to clean up later.

use parking_lot::Mutex;
use secmod_obs::{DispatchMetrics, Flavor};
use secmod_ring::{RingSet, SmodCallResp};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::Waker;

/// One in-flight call's routing state.
#[derive(Debug, Default)]
pub(crate) struct Pending {
    /// Where to deliver the wake (refreshed on every poll).
    pub waker: Option<Waker>,
    /// The routed response, once the router has seen it.
    pub resp: Option<SmodCallResp>,
}

/// Per-session routing table (keyed by `user_data`) plus
/// backpressure-waiter parking.
#[derive(Debug, Default)]
pub struct SlotTable {
    pub(crate) pending: Mutex<HashMap<u64, Pending>>,
    /// Wakers of callers whose submit bounced with `Full`, woken after
    /// the next routed completion (completions imply the drainer popped
    /// submissions, i.e. submission-ring space reappeared).
    pub(crate) submit_waiters: Mutex<Vec<Waker>>,
    /// Flipped at shutdown: pending polls stop waiting and resolve to
    /// `Detached`.
    pub(crate) detached: AtomicBool,
}

impl SlotTable {
    /// How many calls are currently in flight on this session.
    pub fn in_flight(&self) -> usize {
        self.pending.lock().len()
    }

    /// Mark the table detached and wake everything still parked on it.
    pub(crate) fn detach(&self) {
        self.detached.store(true, Ordering::Release);
        let wakers: Vec<Waker> = {
            let mut pending = self.pending.lock();
            pending
                .values_mut()
                .filter_map(|p| p.waker.take())
                .collect()
        };
        for waker in wakers {
            waker.wake();
        }
        for waker in self.submit_waiters.lock().drain(..) {
            waker.wake();
        }
    }
}

/// The router's shared view: slot index → table.
pub(crate) type TableMap = Mutex<HashMap<usize, Arc<SlotTable>>>;

/// One router pass: claim the completion bitmap, pop every flagged
/// session's completions, deliver each to its waker (or discard it if
/// the awaiting future was cancelled), then release that session's
/// backpressure waiters. Returns how many completions were routed.
/// Each routed completion's simulated cost lands in `metrics`'
/// async-flavor histogram — the latency observed *through the futures
/// frontend*, as opposed to the sweep-flavor records the drainer made
/// while producing it.
pub(crate) fn route_completions(
    set: &RingSet,
    tables: &TableMap,
    metrics: Option<&DispatchMetrics>,
) -> usize {
    let mut routed = 0;
    set.sweep_completed(|slot, rings| {
        let table = tables.lock().get(&slot.0).cloned();
        let Some(table) = table else {
            // A session that was attached outside the async frontend (or
            // already fully torn down): leave its completions for
            // whoever owns the rings, and don't re-mark on its behalf.
            return false;
        };
        let mut wakers: Vec<Waker> = Vec::new();
        {
            let mut pending = table.pending.lock();
            while let Some(resp) = rings.cq.pop() {
                routed += 1;
                if let Some(metrics) = metrics {
                    if resp.cost_ns > 0 {
                        metrics.record_latency(Flavor::Async, resp.cost_ns);
                    }
                }
                if let Some(entry) = pending.get_mut(&resp.user_data) {
                    entry.resp = Some(resp);
                    if let Some(waker) = entry.waker.take() {
                        wakers.push(waker);
                    }
                }
                // else: cancelled mid-await — the response is discarded.
            }
        }
        // Wake outside the pending lock: a woken future's poll re-locks
        // the table immediately.
        for waker in wakers {
            waker.wake();
        }
        let waiters: Vec<Waker> = table.submit_waiters.lock().drain(..).collect();
        for waker in waiters {
            waker.wake();
        }
        false
    });
    routed
}

#[cfg(test)]
mod tests {
    use super::*;
    use secmod_ring::RingPairConfig;
    use std::sync::atomic::AtomicUsize;
    use std::task::Wake;

    struct CountWake(AtomicUsize);
    impl Wake for CountWake {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::AcqRel);
        }
    }

    fn resp(user_data: u64) -> SmodCallResp {
        SmodCallResp {
            user_data,
            ret: secmod_ring::ArgRef::empty(),
            errno: 0,
            cost_ns: 0,
        }
    }

    #[test]
    fn routes_to_the_right_entry_and_discards_cancelled() {
        let set = RingSet::with_capacity(1);
        let slot = set.register(1, 1, RingPairConfig::default()).unwrap();
        let rings = set.get(slot).unwrap();
        let table = Arc::new(SlotTable::default());
        let tables: TableMap = Mutex::new([(slot.0, Arc::clone(&table))].into_iter().collect());

        let counter = Arc::new(CountWake(AtomicUsize::new(0)));
        table.pending.lock().insert(
            7,
            Pending {
                waker: Some(Waker::from(Arc::clone(&counter))),
                resp: None,
            },
        );
        // user_data 9 has no entry: a cancelled call.
        rings.cq.push(resp(7)).unwrap();
        rings.cq.push(resp(9)).unwrap();
        set.mark_completed(slot);

        let metrics = DispatchMetrics::new();
        let routed = route_completions(&set, &tables, Some(&metrics));
        assert_eq!(routed, 2);
        assert_eq!(counter.0.load(Ordering::Acquire), 1);
        let pending = table.pending.lock();
        assert!(pending.get(&7).unwrap().resp.is_some());
        assert!(
            !pending.contains_key(&9),
            "cancelled cookie must not reappear"
        );
        drop(pending);
        // The submission path consumed nothing here, but the rings must
        // be fully reaped.
        assert!(rings.cq.pop().is_none());
    }

    #[test]
    fn detach_wakes_everything() {
        let table = SlotTable::default();
        let pending_wake = Arc::new(CountWake(AtomicUsize::new(0)));
        let waiter_wake = Arc::new(CountWake(AtomicUsize::new(0)));
        table.pending.lock().insert(
            1,
            Pending {
                waker: Some(Waker::from(Arc::clone(&pending_wake))),
                resp: None,
            },
        );
        table
            .submit_waiters
            .lock()
            .push(Waker::from(Arc::clone(&waiter_wake)));
        table.detach();
        assert_eq!(pending_wake.0.load(Ordering::Acquire), 1);
        assert_eq!(waiter_wake.0.load(Ordering::Acquire), 1);
        assert!(table.detached.load(Ordering::Acquire));
    }
}
