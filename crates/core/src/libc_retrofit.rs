//! Retrofitting libc into a SecModule (§4, §4.3).
//!
//! The paper's central implementation exercise is a "SecModule conversion of
//! libC": even `malloc()` can live inside the protected module because the
//! handle has full access to the client's data/heap/stack through the shared
//! pages, so the allocator's bookkeeping and the allocated blocks both live
//! in client-visible memory while the allocator *code* stays protected.
//!
//! [`SmodLibc`] packages exactly that on the simulated backend: a bump/free
//! allocator whose state lives at the base of the client's heap, plus
//! `strlen`, `memcpy` and `getpid` (which reports the *client's* pid, per
//! §4.3).

use crate::secure_module::{SecureModule, SecureModuleBuilder};
use crate::sim::SimWorld;
use crate::{Result, SmodError};
use secmod_kernel::{Credential, Errno, Pid};
use secmod_vm::Vaddr;

/// Offset (from the heap base) of the allocator's bump pointer.
const BUMP_OFFSET: u64 = 0;
/// Offset of the allocation counter.
const COUNT_OFFSET: u64 = 8;
/// First usable byte of the allocator arena.
const ARENA_OFFSET: u64 = 64;

/// Build the SecModule version of libc.
///
/// `credential_key` is the key material clients must present to use it.
pub fn libc_module(credential_key: &[u8]) -> SecureModule {
    SecureModuleBuilder::new("libc", 36)
        .data_object("malloc_pagepool", &[0u8; 64])
        .function_sized("malloc", 96, |ctx, args| {
            let size = u64::from_le_bytes(args[..8].try_into().map_err(|_| Errno::EINVAL)?);
            let heap_base = ctx.handle_vm.layout.data_base;
            let bump_addr = Vaddr(heap_base + BUMP_OFFSET);
            let mut bump = ctx.read_u64(bump_addr)?;
            if bump == 0 {
                bump = heap_base + ARENA_OFFSET;
            }
            let aligned = (size + 15) & !15;
            let block = bump;
            let new_bump = bump + aligned.max(16);
            ctx.write_u64(bump_addr, new_bump)?;
            let count_addr = Vaddr(heap_base + COUNT_OFFSET);
            let count = ctx.read_u64(count_addr)?;
            ctx.write_u64(count_addr, count + 1)?;
            Ok(block.to_le_bytes().to_vec())
        })
        .function_sized("free", 64, |ctx, args| {
            // The prototype allocator never reuses blocks; free only updates
            // the live-allocation counter, exactly enough to demonstrate that
            // allocator state lives in shared memory.
            let _addr = u64::from_le_bytes(args[..8].try_into().map_err(|_| Errno::EINVAL)?);
            let heap_base = ctx.handle_vm.layout.data_base;
            let count_addr = Vaddr(heap_base + COUNT_OFFSET);
            let count = ctx.read_u64(count_addr)?;
            ctx.write_u64(count_addr, count.saturating_sub(1))?;
            Ok(Vec::new())
        })
        .function_sized("getpid", 16, |ctx, _args| {
            ctx.charge_ns(108);
            Ok((ctx.client_pid.0 as u64).to_le_bytes().to_vec())
        })
        .function_sized("strlen", 48, |ctx, args| {
            let addr = u64::from_le_bytes(args[..8].try_into().map_err(|_| Errno::EINVAL)?);
            let mut len = 0u64;
            loop {
                let byte = ctx.read(Vaddr(addr + len), 1)?;
                if byte[0] == 0 {
                    break;
                }
                len += 1;
                if len > 1 << 20 {
                    return Err(Errno::EFAULT);
                }
            }
            Ok(len.to_le_bytes().to_vec())
        })
        .function_sized("memcpy", 80, |ctx, args| {
            let dst = u64::from_le_bytes(args[..8].try_into().map_err(|_| Errno::EINVAL)?);
            let src = u64::from_le_bytes(args[8..16].try_into().map_err(|_| Errno::EINVAL)?);
            let len = u64::from_le_bytes(args[16..24].try_into().map_err(|_| Errno::EINVAL)?);
            let data = ctx.read(Vaddr(src), len as usize)?;
            ctx.write(Vaddr(dst), &data)?;
            Ok(dst.to_le_bytes().to_vec())
        })
        .function_sized("testincr", 24, |_ctx, args| {
            let v = u64::from_le_bytes(args[..8].try_into().map_err(|_| Errno::EINVAL)?);
            Ok((v + 1).to_le_bytes().to_vec())
        })
        .allow_credential(credential_key)
        .build()
        .expect("libc module builds")
}

/// A client-side wrapper giving the familiar libc API over a SecModule
/// session.
pub struct SmodLibc<'w> {
    world: &'w mut SimWorld,
    client: Pid,
}

impl<'w> SmodLibc<'w> {
    /// Install the libc module (if not yet installed), spawn a client with
    /// the credential and connect it.
    pub fn setup(
        world: &'w mut SimWorld,
        client_name: &str,
        credential_key: &[u8],
    ) -> Result<SmodLibc<'w>> {
        if world.module_id("libc").is_none() {
            let module = libc_module(credential_key);
            world.install(&module)?;
        }
        let client = world.spawn_client(
            client_name,
            Credential::user(1000, 100).with_smod_credential("libc", credential_key),
        )?;
        world.connect(client, "libc", 0)?;
        Ok(SmodLibc { world, client })
    }

    /// Wrap an already-connected client.
    pub fn attach(world: &'w mut SimWorld, client: Pid) -> SmodLibc<'w> {
        SmodLibc { world, client }
    }

    /// The client pid.
    pub fn client(&self) -> Pid {
        self.client
    }

    fn call_u64(&mut self, symbol: &str, args: &[u8]) -> Result<u64> {
        let reply = self.world.call(self.client, symbol, args)?;
        reply
            .try_into()
            .map(u64::from_le_bytes)
            .map_err(|_| SmodError::BadArguments("expected a u64 reply".to_string()))
    }

    /// `malloc(size)`: returns the address of a block in the client's heap.
    pub fn malloc(&mut self, size: u64) -> Result<Vaddr> {
        Ok(Vaddr(self.call_u64("malloc", &size.to_le_bytes())?))
    }

    /// `free(ptr)`.
    pub fn free(&mut self, ptr: Vaddr) -> Result<()> {
        self.world.call(self.client, "free", &ptr.0.to_le_bytes())?;
        Ok(())
    }

    /// `getpid()` over SecModule — must equal the client's pid.
    pub fn getpid(&mut self) -> Result<Pid> {
        Ok(Pid(self.call_u64("getpid", &[])? as u32))
    }

    /// `strlen(ptr)`.
    pub fn strlen(&mut self, ptr: Vaddr) -> Result<u64> {
        self.call_u64("strlen", &ptr.0.to_le_bytes())
    }

    /// `memcpy(dst, src, len)`.
    pub fn memcpy(&mut self, dst: Vaddr, src: Vaddr, len: u64) -> Result<Vaddr> {
        let mut args = dst.0.to_le_bytes().to_vec();
        args.extend_from_slice(&src.0.to_le_bytes());
        args.extend_from_slice(&len.to_le_bytes());
        Ok(Vaddr(self.call_u64("memcpy", &args)?))
    }

    /// `testincr(x)` — the benchmark function.
    pub fn testincr(&mut self, value: u64) -> Result<u64> {
        self.call_u64("testincr", &value.to_le_bytes())
    }

    /// Store bytes directly in client memory (what ordinary, unprotected
    /// client code would do with a pointer returned by `malloc`).
    pub fn store(&mut self, addr: Vaddr, data: &[u8]) -> Result<()> {
        self.world.poke(self.client, addr, data)
    }

    /// Load bytes directly from client memory.
    pub fn load(&mut self, addr: Vaddr, len: usize) -> Result<Vec<u8>> {
        self.world.peek(self.client, addr, len)
    }

    /// Number of live allocations, read straight out of the shared allocator
    /// state in the client heap.
    pub fn live_allocations(&mut self) -> Result<u64> {
        let base = self.world.heap_base();
        let bytes = self
            .world
            .peek(self.client, Vaddr(base.0 + COUNT_OFFSET), 8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: &[u8] = b"libc-user-key";

    #[test]
    fn malloc_returns_usable_client_memory() {
        let mut world = SimWorld::new();
        let mut libc = SmodLibc::setup(&mut world, "app", KEY).unwrap();
        let a = libc.malloc(100).unwrap();
        let b = libc.malloc(100).unwrap();
        assert_ne!(a, b);
        assert!(b.0 >= a.0 + 100);
        // The client can use the memory directly — it is its own heap.
        libc.store(a, b"written by the client").unwrap();
        assert_eq!(libc.load(a, 21).unwrap(), b"written by the client");
        assert_eq!(libc.live_allocations().unwrap(), 2);
        libc.free(a).unwrap();
        assert_eq!(libc.live_allocations().unwrap(), 1);
    }

    #[test]
    fn strlen_and_memcpy_operate_on_client_data() {
        let mut world = SimWorld::new();
        let mut libc = SmodLibc::setup(&mut world, "app", KEY).unwrap();
        let src = libc.malloc(64).unwrap();
        let dst = libc.malloc(64).unwrap();
        libc.store(src, b"secmodule\0").unwrap();
        assert_eq!(libc.strlen(src).unwrap(), 9);
        libc.memcpy(dst, src, 10).unwrap();
        assert_eq!(libc.load(dst, 10).unwrap(), b"secmodule\0");
        assert_eq!(libc.strlen(dst).unwrap(), 9);
    }

    #[test]
    fn getpid_reports_the_client() {
        let mut world = SimWorld::new();
        let mut libc = SmodLibc::setup(&mut world, "app", KEY).unwrap();
        let client = libc.client();
        assert_eq!(libc.getpid().unwrap(), client);
    }

    #[test]
    fn testincr_matches_the_paper_workload() {
        let mut world = SimWorld::new();
        let mut libc = SmodLibc::setup(&mut world, "app", KEY).unwrap();
        assert_eq!(libc.testincr(41).unwrap(), 42);
    }

    #[test]
    fn wrong_credential_cannot_set_up_libc() {
        let mut world = SimWorld::new();
        // Install with one key…
        let module = libc_module(KEY);
        world.install(&module).unwrap();
        // …and try to connect with another.
        let client = world
            .spawn_client(
                "intruder",
                Credential::user(4000, 4000).with_smod_credential("libc", b"wrong-key"),
            )
            .unwrap();
        assert!(world.connect(client, "libc", 0).is_err());
    }
}
