//! The Figure 3 stack discipline, modelled explicitly.
//!
//! The paper walks through four snapshots of the shared stack during an
//! `smod_call`:
//!
//! 1. inside the client's assembly stub (`SMOD_client_malloc`): the real
//!    arguments are on the stack, and the stub pushes the
//!    `(moduleID, funcID)` pair plus duplicates of the return address and
//!    frame pointer so the kernel has a self-contained view;
//! 2. inside `sys_smod_call()`: the kernel sees the duplicated words;
//! 3. inside `smod_stub_receive()` (running on the handle's *secret* stack):
//!    the handle has popped everything above the first real argument and
//!    relays to the actual library routine, which sees a perfectly ordinary
//!    stack;
//! 4. on return, `smod_stub_receive()` restores the exact words the client
//!    stub had pushed so the client returns to the original call site.
//!
//! The model operates on a plain word vector (the shared stack grows toward
//! lower indices in a real machine; a `Vec` push/pop is equivalent for the
//! discipline being checked).

use crate::{Result, SmodError};

/// A word on the simulated shared stack.
pub type Word = u64;

/// The shared stack with the client's frame on it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SharedStack {
    words: Vec<Word>,
}

/// The extra words the client stub pushes for the kernel (Figure 3 step 1→2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StubFrame {
    /// Duplicated client frame pointer.
    pub client_fp: Word,
    /// Duplicated return address.
    pub return_address: Word,
    /// The module being called.
    pub module_id: Word,
    /// The function within the module.
    pub func_id: Word,
}

impl SharedStack {
    /// An empty stack.
    pub fn new() -> SharedStack {
        SharedStack::default()
    }

    /// Number of words on the stack.
    pub fn depth(&self) -> usize {
        self.words.len()
    }

    /// Step (1a): the client pushes the real arguments for `f_i` exactly as
    /// it would for an ordinary call.
    pub fn push_args(&mut self, args: &[Word]) {
        self.words.extend_from_slice(args);
    }

    /// Step (1b): the client-side assembly stub pushes the identification
    /// words the kernel needs.  Returns the stack depth *before* the stub
    /// frame, which the handle side uses to find the first real argument.
    pub fn push_stub_frame(&mut self, frame: StubFrame) -> usize {
        let base = self.words.len();
        self.words.push(frame.client_fp);
        self.words.push(frame.return_address);
        self.words.push(frame.func_id);
        self.words.push(frame.module_id);
        base
    }

    /// Step (2): the kernel's view — the top four words must be the stub
    /// frame.
    pub fn kernel_view(&self) -> Result<StubFrame> {
        if self.words.len() < 4 {
            return Err(SmodError::BadArguments(
                "stack too shallow for an smod_call frame".to_string(),
            ));
        }
        let n = self.words.len();
        Ok(StubFrame {
            module_id: self.words[n - 1],
            func_id: self.words[n - 2],
            return_address: self.words[n - 3],
            client_fp: self.words[n - 4],
        })
    }

    /// Step (3): `smod_stub_receive()` pops every word above the first real
    /// argument, leaving the callee with a perfectly normal argument stack.
    /// Returns the popped stub frame so it can be restored later.
    pub fn handle_pop_to_args(&mut self, stub_base: usize) -> Result<StubFrame> {
        let frame = self.kernel_view()?;
        if stub_base + 4 != self.words.len() {
            return Err(SmodError::BadArguments(format!(
                "stub frame expected at depth {stub_base}, stack is {} deep",
                self.words.len()
            )));
        }
        self.words.truncate(stub_base);
        Ok(frame)
    }

    /// The callee's view of its arguments (everything from `arg_base` up).
    pub fn callee_args(&self, arg_base: usize, count: usize) -> Result<Vec<Word>> {
        if arg_base + count > self.words.len() {
            return Err(SmodError::BadArguments(
                "argument range exceeds stack".to_string(),
            ));
        }
        Ok(self.words[arg_base..arg_base + count].to_vec())
    }

    /// Step (4): before returning, `smod_stub_receive()` replaces "the exact
    /// same arguments that the client stub routine had seen".
    pub fn restore_stub_frame(&mut self, frame: StubFrame) -> usize {
        self.push_stub_frame(frame)
    }

    /// After the client stub returns, it pops its own frame and the
    /// arguments, leaving the stack as it was before the call.
    pub fn client_unwind(&mut self, stub_base: usize, arg_count: usize) -> Result<()> {
        if self.words.len() < stub_base.saturating_sub(0) + 4 {
            return Err(SmodError::BadArguments("nothing to unwind".to_string()));
        }
        self.words.truncate(stub_base.saturating_sub(arg_count));
        Ok(())
    }

    /// Raw view of the words (for assertions in tests).
    pub fn words(&self) -> &[Word] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> StubFrame {
        StubFrame {
            client_fp: 0xBFFF_F000,
            return_address: 0x0000_1234,
            module_id: 7,
            func_id: 3,
        }
    }

    #[test]
    fn figure3_four_step_walkthrough() {
        let mut stack = SharedStack::new();
        // Pre-existing caller frame.
        stack.push_args(&[0xAAAA, 0xBBBB]);
        let arg_base = stack.depth();

        // Step 1: real args + stub frame.
        stack.push_args(&[41]);
        let stub_base = stack.push_stub_frame(frame());
        assert_eq!(stub_base, arg_base + 1);

        // Step 2: kernel sees the identification words.
        let kview = stack.kernel_view().unwrap();
        assert_eq!(kview, frame());

        // Step 3: handle pops down to the real arguments.
        let saved = stack.handle_pop_to_args(stub_base).unwrap();
        assert_eq!(saved, frame());
        assert_eq!(stack.callee_args(arg_base, 1).unwrap(), vec![41]);
        assert_eq!(stack.depth(), arg_base + 1);

        // Step 4: handle restores the exact words before returning.
        stack.restore_stub_frame(saved);
        assert_eq!(stack.kernel_view().unwrap(), frame());

        // Client unwinds its stub frame and arguments.
        stack.client_unwind(stub_base, 1).unwrap();
        assert_eq!(stack.words(), &[0xAAAA, 0xBBBB]);
    }

    #[test]
    fn kernel_view_requires_a_frame() {
        let stack = SharedStack::new();
        assert!(stack.kernel_view().is_err());
    }

    #[test]
    fn handle_pop_detects_wrong_base() {
        let mut stack = SharedStack::new();
        stack.push_args(&[1, 2, 3]);
        let base = stack.push_stub_frame(frame());
        assert!(stack.handle_pop_to_args(base + 1).is_err());
        assert!(stack.clone().handle_pop_to_args(base).is_ok());
    }

    #[test]
    fn callee_args_bounds_checked() {
        let mut stack = SharedStack::new();
        stack.push_args(&[1, 2]);
        assert!(stack.callee_args(0, 2).is_ok());
        assert!(stack.callee_args(1, 2).is_err());
    }
}
