//! Argument marshalling "in the traditional stack passing mechanism" (§3).
//!
//! Arguments are laid out the way a C caller would push them: a sequence of
//! 32/64-bit words and byte blocks, little-endian (the paper's i386 test
//! machine).  Because client and handle share the stack pages, only the
//! *word sequence* crosses the kernel; pointers stay valid on both sides.

use crate::{Result, SmodError};

/// Builds a marshalled argument block.
#[derive(Clone, Debug, Default)]
pub struct ArgWriter {
    buf: Vec<u8>,
}

impl ArgWriter {
    /// Create an empty writer.
    pub fn new() -> ArgWriter {
        ArgWriter::default()
    }

    /// Push a 64-bit unsigned value.
    pub fn push_u64(mut self, v: u64) -> ArgWriter {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Push a 64-bit signed value.
    pub fn push_i64(self, v: i64) -> ArgWriter {
        self.push_u64(v as u64)
    }

    /// Push a 32-bit value (widened to a stack word).
    pub fn push_u32(self, v: u32) -> ArgWriter {
        self.push_u64(v as u64)
    }

    /// Push a pointer-sized address.
    pub fn push_addr(self, addr: u64) -> ArgWriter {
        self.push_u64(addr)
    }

    /// Push a length-prefixed byte block (for by-value buffers).
    pub fn push_bytes(mut self, data: &[u8]) -> ArgWriter {
        self.buf
            .extend_from_slice(&(data.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(data);
        self
    }

    /// Finish and return the marshalled bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current size in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the block empty?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Reads a marshalled argument block.
#[derive(Debug)]
pub struct ArgReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ArgReader<'a> {
    /// Create a reader over marshalled bytes.
    pub fn new(buf: &'a [u8]) -> ArgReader<'a> {
        ArgReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(SmodError::BadArguments(format!(
                "needed {n} bytes at offset {}, only {} available",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read a 64-bit unsigned value.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a 64-bit signed value.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(self.u64()? as i64)
    }

    /// Read a 32-bit value.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(self.u64()? as u32)
    }

    /// Read an address.
    pub fn addr(&mut self) -> Result<u64> {
        self.u64()
    }

    /// Read a length-prefixed byte block.
    pub fn bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.u64()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_arguments() {
        let block = ArgWriter::new()
            .push_u64(42)
            .push_i64(-7)
            .push_u32(0xDEAD)
            .push_addr(0x1000_0000)
            .push_bytes(b"hello")
            .finish();
        let mut r = ArgReader::new(&block);
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.i64().unwrap(), -7);
        assert_eq!(r.u32().unwrap(), 0xDEAD);
        assert_eq!(r.addr().unwrap(), 0x1000_0000);
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_blocks_error() {
        let block = ArgWriter::new().push_u64(1).finish();
        let mut r = ArgReader::new(&block[..4]);
        assert!(r.u64().is_err());
        let block = ArgWriter::new().push_bytes(&[1, 2, 3]).finish();
        let mut r = ArgReader::new(&block[..9]);
        assert!(r.bytes().is_err());
    }

    #[test]
    fn empty_writer() {
        let w = ArgWriter::new();
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert!(w.finish().is_empty());
    }

    proptest::proptest! {
        #[test]
        fn prop_u64_sequence_roundtrip(values in proptest::collection::vec(proptest::num::u64::ANY, 0..32)) {
            let mut w = ArgWriter::new();
            for v in &values {
                w = w.push_u64(*v);
            }
            let block = w.finish();
            let mut r = ArgReader::new(&block);
            for v in &values {
                proptest::prop_assert_eq!(r.u64().unwrap(), *v);
            }
            proptest::prop_assert_eq!(r.remaining(), 0);
        }
    }
}
