//! Framework-level errors.

use secmod_kernel::Errno;

/// Errors surfaced by the SecModule framework.
#[derive(Debug)]
pub enum SmodError {
    /// A kernel syscall failed.
    Kernel(Errno),
    /// The toolchain rejected the module definition.
    Module(secmod_module::ModuleError),
    /// A policy definition was malformed.
    Policy(secmod_policy::PolicyError),
    /// A cryptographic operation failed.
    Crypto(secmod_crypto::CryptoError),
    /// The named function does not exist in the module.
    UnknownFunction(String),
    /// The client has no established session for the module.
    NoSession,
    /// The native backend's handle thread is gone.
    HandleGone,
    /// Credential verification failed on the native backend.
    CredentialRejected,
    /// Marshalled arguments could not be decoded.
    BadArguments(String),
}

impl std::fmt::Display for SmodError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SmodError::Kernel(e) => write!(f, "kernel error: {e}"),
            SmodError::Module(e) => write!(f, "module error: {e}"),
            SmodError::Policy(e) => write!(f, "policy error: {e}"),
            SmodError::Crypto(e) => write!(f, "crypto error: {e}"),
            SmodError::UnknownFunction(name) => write!(f, "unknown function `{name}`"),
            SmodError::NoSession => write!(f, "no established SecModule session"),
            SmodError::HandleGone => write!(f, "the handle co-process has terminated"),
            SmodError::CredentialRejected => write!(f, "credential rejected"),
            SmodError::BadArguments(m) => write!(f, "bad arguments: {m}"),
        }
    }
}

impl std::error::Error for SmodError {}

impl From<Errno> for SmodError {
    fn from(e: Errno) -> Self {
        SmodError::Kernel(e)
    }
}

impl From<secmod_module::ModuleError> for SmodError {
    fn from(e: secmod_module::ModuleError) -> Self {
        SmodError::Module(e)
    }
}

impl From<secmod_policy::PolicyError> for SmodError {
    fn from(e: secmod_policy::PolicyError) -> Self {
        SmodError::Policy(e)
    }
}

impl From<secmod_crypto::CryptoError> for SmodError {
    fn from(e: secmod_crypto::CryptoError) -> Self {
        SmodError::Crypto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: SmodError = Errno::EACCES.into();
        assert!(e.to_string().contains("EACCES"));
        let e: SmodError = secmod_module::ModuleError::IntegrityFailure.into();
        assert!(e.to_string().contains("integrity"));
        let e: SmodError = secmod_crypto::CryptoError::BadPadding.into();
        assert!(e.to_string().contains("padding"));
        let e: SmodError = secmod_policy::PolicyError::UnknownRoot.into();
        assert!(e.to_string().contains("root"));
        assert!(SmodError::UnknownFunction("f".into())
            .to_string()
            .contains("`f`"));
        assert!(!SmodError::NoSession.to_string().is_empty());
        assert!(!SmodError::HandleGone.to_string().is_empty());
        assert!(!SmodError::CredentialRejected.to_string().is_empty());
        assert!(!SmodError::BadArguments("x".into()).to_string().is_empty());
    }
}
