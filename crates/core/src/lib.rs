//! # secmod-core
//!
//! The SecModule framework: session-managed, access-controlled libraries.
//!
//! This crate is the public face of the reproduction.  It glues the
//! substrates together:
//!
//! * [`secure_module`] — define a protected module: its functions (as Rust
//!   bodies standing in for the library text), its synthetic image (built
//!   with the `secmod-module` toolchain), its access policy, and the key
//!   that seals its text.
//! * [`marshal`] — argument marshalling in the "traditional stack passing
//!   mechanism" the paper describes.
//! * [`stack`] — an explicit model of the Figure 3 stack manipulations
//!   performed by the client stub, the kernel, and `smod_stub_receive()`.
//! * [`sim`] — the simulated backend: a [`secmod_kernel::Kernel`] with real
//!   processes, forced address-space sharing, kernel-mediated dispatch and
//!   a calibrated cost model.  Deterministic; used by most tests and the
//!   simulated Figure 8 harness.
//! * [`native`] — the native backend: the client and the handle are two
//!   real OS threads that genuinely share one address space (the property
//!   the paper's UVM patch creates between two processes), synchronised by
//!   a blocking rendezvous — or, in the ring-backed
//!   [`native::NativeRingSession`] variant, communicating only through a
//!   submission/completion ring pair — with a credential check on every
//!   call.  Used for real wall-clock measurements.
//! * [`libc_retrofit`] — the paper's flagship use-case: a `malloc`-style
//!   allocator, `strlen` and `memcpy` living *inside* a SecModule and
//!   operating directly on the client's heap through the shared pages.
//!
//! ## Quick start
//!
//! ```
//! use secmod_core::prelude::*;
//!
//! // Define a protected module with an "alice may call anything" policy.
//! let module = SecureModuleBuilder::new("libdemo", 1)
//!     .function("double", |_ctx, args| {
//!         let v = u64::from_le_bytes(args[..8].try_into().unwrap());
//!         Ok((v * 2).to_le_bytes().to_vec())
//!     })
//!     .allow_credential(b"alice-key")
//!     .build()
//!     .unwrap();
//!
//! // Boot a simulated world, register the module, start a client session.
//! let mut world = SimWorld::new();
//! let module_id = world.install(&module).unwrap();
//! let client = world.spawn_client("demo-app", Credential::user(1000, 100)
//!     .with_smod_credential("libdemo", b"alice-key")).unwrap();
//! let session = world.connect(client, "libdemo", 0).unwrap();
//!
//! // Call through the protected dispatch path.
//! let reply = world.call(client, "double", &21u64.to_le_bytes()).unwrap();
//! assert_eq!(u64::from_le_bytes(reply.try_into().unwrap()), 42);
//! assert_eq!(world.kernel.session_of(client).unwrap().id, session);
//! let _ = module_id;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod libc_retrofit;
pub mod marshal;
pub mod native;
pub mod secure_module;
pub mod sim;
pub mod stack;

pub use error::SmodError;
pub use native::{NativeModule, NativeRingSession, NativeSession};
pub use secure_module::{SecureModule, SecureModuleBuilder};
pub use sim::SimWorld;

/// Convenience re-exports for applications.
pub mod prelude {
    pub use crate::error::SmodError;
    pub use crate::libc_retrofit::SmodLibc;
    pub use crate::marshal::{ArgReader, ArgWriter};
    pub use crate::native::{NativeModule, NativeRingSession, NativeSession};
    pub use crate::secure_module::{SecureModule, SecureModuleBuilder};
    pub use crate::sim::SimWorld;
    pub use secmod_kernel::{Credential, Pid};
    pub use secmod_module::ModuleId;
}

/// Result alias for framework operations.
pub type Result<T> = std::result::Result<T, SmodError>;
