//! The native backend: real threads, real shared memory, real time.
//!
//! The paper's mechanism makes two *processes* share their data/heap/stack
//! while keeping the module text private to the handle.  Two threads of one
//! process already share an address space, so the native backend runs the
//! client on the calling thread and the handle on a dedicated thread, with
//! a blocking rendezvous (the stand-in for `sys_smod_call`'s trap + SYSV
//! message + context switch) and a credential check on every call.  The
//! protected function bodies live only in the handle thread's dispatch
//! table — the client never holds them — and operate on a genuinely shared
//! heap.
//!
//! This is the backend the wall-clock Figure 8 reproduction uses: absolute
//! numbers reflect modern hardware, but the ordering (native syscall ≪ SMOD
//! dispatch ≪ local RPC) and rough ratios match the paper.
//!
//! Two dispatch shapes are provided. [`NativeSession`] is the rendezvous
//! form: every call blocks the producer on a pair of bounded(0) channels
//! (the stand-in for trap + SYSV message + context switch).
//! [`NativeRingSession`] is the ring-backed form the dispatch plane
//! motivates: producer and drainer are separate OS threads communicating
//! **only through a submission/completion ring pair**, so the producer
//! queues calls without ever blocking on the handle and the per-call
//! rendezvous cost disappears from the producer's critical path.
//!
//! Which lock is held where: the shared heap sits behind one `RwLock`
//! (readers concurrent, writers exclusive — held only for the duration of
//! a `read`/`write` byte copy); the call rendezvous itself holds no lock
//! at all, it is a pair of bounded(0) channels, so a session serialises
//! its own calls but separate sessions never contend.

use crate::{Result, SmodError};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::RwLock;
use secmod_crypto::hmac::HmacSha256;
use secmod_ring::{ArenaRegion, ArgArena, ArgRef, Ring};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// The heap shared between the client and the handle thread.
#[derive(Debug, Default)]
pub struct SharedHeap {
    bytes: RwLock<Vec<u8>>,
}

impl SharedHeap {
    /// Create a heap of `size` zeroed bytes.
    pub fn new(size: usize) -> Arc<SharedHeap> {
        Arc::new(SharedHeap {
            bytes: RwLock::new(vec![0u8; size]),
        })
    }

    /// Heap size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.read().len()
    }

    /// Is the heap empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read `len` bytes at `offset`.
    pub fn read(&self, offset: usize, len: usize) -> Vec<u8> {
        let bytes = self.bytes.read();
        bytes[offset..offset + len].to_vec()
    }

    /// Write bytes at `offset`.
    pub fn write(&self, offset: usize, data: &[u8]) {
        let mut bytes = self.bytes.write();
        bytes[offset..offset + data.len()].copy_from_slice(data);
    }
}

/// The execution context handed to native function bodies.
pub struct NativeCtx {
    /// The heap shared with the client.
    pub heap: Arc<SharedHeap>,
    /// The (OS) process id of the client, as `getpid` must report it.
    pub client_pid: u32,
}

/// A native function body.
pub type NativeBody = Arc<dyn Fn(&NativeCtx, &[u8]) -> Vec<u8> + Send + Sync>;

/// A module definition for the native backend.
#[derive(Clone, Default)]
pub struct NativeModule {
    functions: HashMap<String, NativeBody>,
    credential_key: Vec<u8>,
}

impl std::fmt::Debug for NativeModule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NativeModule({} functions)", self.functions.len())
    }
}

impl NativeModule {
    /// Create an empty module protected by the given credential key.
    pub fn new(credential_key: &[u8]) -> NativeModule {
        NativeModule {
            functions: HashMap::new(),
            credential_key: credential_key.to_vec(),
        }
    }

    /// Register a function.
    pub fn function<F>(mut self, name: &str, body: F) -> NativeModule
    where
        F: Fn(&NativeCtx, &[u8]) -> Vec<u8> + Send + Sync + 'static,
    {
        self.functions.insert(name.to_string(), Arc::new(body));
        self
    }

    /// The standard benchmark module: `testincr` and `getpid`.
    pub fn benchmark_module(credential_key: &[u8]) -> NativeModule {
        NativeModule::new(credential_key)
            .function("testincr", |_ctx, args| {
                let v = u64::from_le_bytes(args[..8].try_into().unwrap_or([0; 8]));
                (v + 1).to_le_bytes().to_vec()
            })
            .function("getpid", |ctx, _args| {
                (ctx.client_pid as u64).to_le_bytes().to_vec()
            })
    }
}

enum HandleRequest {
    Call {
        token: [u8; 32],
        function: String,
        args: Vec<u8>,
    },
    Shutdown,
}

enum HandleReply {
    Ok(Vec<u8>),
    Denied,
    Unknown(String),
}

/// An established native session: a handle thread bound to exactly one
/// client, sharing a heap with it.
pub struct NativeSession {
    tx: Sender<HandleRequest>,
    rx: Receiver<HandleReply>,
    token: [u8; 32],
    heap: Arc<SharedHeap>,
    handle_thread: Option<JoinHandle<u64>>,
}

impl std::fmt::Debug for NativeSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NativeSession(heap={} bytes)", self.heap.len())
    }
}

impl NativeSession {
    /// Start a session: verify the client credential against the module's
    /// credential key, spawn the handle thread, and derive the per-session
    /// token the handle will demand on every call.
    pub fn start(
        module: &NativeModule,
        client_credential: &[u8],
        heap_size: usize,
    ) -> Result<NativeSession> {
        if !secmod_crypto::ct_eq(client_credential, &module.credential_key) {
            return Err(SmodError::CredentialRejected);
        }
        let client_pid = std::process::id();
        // The token binds the session to this client (pid) and credential.
        let mut mac = HmacSha256::new(&module.credential_key);
        mac.update(&client_pid.to_le_bytes());
        mac.update(b"secmodule-native-session");
        let token = mac.finalize();

        let heap = SharedHeap::new(heap_size);
        let functions = module.functions.clone();
        let expected_token = token;
        let ctx = NativeCtx {
            heap: heap.clone(),
            client_pid,
        };

        let (req_tx, req_rx) = bounded::<HandleRequest>(0);
        let (rep_tx, rep_rx) = bounded::<HandleReply>(0);
        let handle_thread = std::thread::Builder::new()
            .name("smod-handle".to_string())
            .spawn(move || {
                let mut calls: u64 = 0;
                while let Ok(req) = req_rx.recv() {
                    match req {
                        HandleRequest::Shutdown => break,
                        HandleRequest::Call {
                            token,
                            function,
                            args,
                        } => {
                            // Credential re-check on every call.
                            let reply = if !secmod_crypto::ct_eq(&token, &expected_token) {
                                HandleReply::Denied
                            } else {
                                match functions.get(&function) {
                                    None => HandleReply::Unknown(function),
                                    Some(body) => {
                                        calls += 1;
                                        HandleReply::Ok(body(&ctx, &args))
                                    }
                                }
                            };
                            if rep_tx.send(reply).is_err() {
                                break;
                            }
                        }
                    }
                }
                calls
            })
            .expect("spawn handle thread");

        Ok(NativeSession {
            tx: req_tx,
            rx: rep_rx,
            token,
            heap,
            handle_thread: Some(handle_thread),
        })
    }

    /// The heap shared with the handle.
    pub fn heap(&self) -> Arc<SharedHeap> {
        self.heap.clone()
    }

    /// Dispatch a call to the handle and wait for the reply.
    pub fn call(&self, function: &str, args: &[u8]) -> Result<Vec<u8>> {
        self.call_with_token(self.token, function, args)
    }

    /// Dispatch a call presenting an explicit token (used by tests to show
    /// that a forged token is rejected).
    pub fn call_with_token(&self, token: [u8; 32], function: &str, args: &[u8]) -> Result<Vec<u8>> {
        self.tx
            .send(HandleRequest::Call {
                token,
                function: function.to_string(),
                args: args.to_vec(),
            })
            .map_err(|_| SmodError::HandleGone)?;
        match self.rx.recv().map_err(|_| SmodError::HandleGone)? {
            HandleReply::Ok(result) => Ok(result),
            HandleReply::Denied => Err(SmodError::CredentialRejected),
            HandleReply::Unknown(name) => Err(SmodError::UnknownFunction(name)),
        }
    }

    /// End the session and return how many calls the handle served.
    pub fn shutdown(mut self) -> u64 {
        let _ = self.tx.send(HandleRequest::Shutdown);
        match self.handle_thread.take() {
            Some(h) => h.join().unwrap_or(0),
            None => 0,
        }
    }
}

impl Drop for NativeSession {
    fn drop(&mut self) {
        let _ = self.tx.send(HandleRequest::Shutdown);
        if let Some(h) = self.handle_thread.take() {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------
// The ring-backed native variant: producer and drainer on separate OS
// threads, communicating only through rings.
// ---------------------------------------------------------------------

/// One entry on the native submission ring. The per-call credential
/// token rides in every entry — the drainer re-checks it per call, the
/// ring-backed form of "credentials are re-verified on every smod_call".
struct NativeRingReq {
    token: [u8; 32],
    func: u32,
    user_data: u64,
    /// Inline for small payloads, an arena descriptor for large ones —
    /// the wall-clock analogue of the kernel's zero-copy argument path.
    args: ArgRef,
}

/// The drainer's per-entry verdict, carried back on the completion ring
/// (kept kernel-agnostic and clonable; [`NativeRingSession::reap`] maps
/// it onto [`SmodError`]).
enum NativeRingReply {
    Ok(Vec<u8>),
    Denied,
    Unknown(u32),
}

/// One reaped completion from the ring-backed native session.
pub struct NativeCompletion {
    /// The submission's cookie, echoed verbatim.
    pub user_data: u64,
    /// The function result.
    pub result: Result<Vec<u8>>,
}

/// The sentinel `func` id that asks the drainer to exit (sent through
/// the submission ring itself, so shutdown needs no side channel).
const NATIVE_RING_SHUTDOWN: u32 = u32::MAX;

/// Argument-arena capacity for a ring-backed native session. Sized so a
/// full 64-deep ring of 64 KiB payloads fits with room to spare.
const NATIVE_ARENA_BYTES: usize = 8 << 20;

/// The ring-backed variant of [`NativeSession`]: the producer (calling
/// thread) and a dedicated drainer thread communicate **only through a
/// submission/completion ring pair** — no channel rendezvous, no lock
/// hand-off. Where [`NativeSession::call`] blocks the producer on every
/// call (two bounded(0) channel hops, the stand-in for the per-call
/// trap + context switch), this variant lets the producer queue many
/// calls and reap completions when it pleases, the wall-clock analogue
/// of the simulated kernel's dispatch plane: fixed hand-off cost is
/// paid per *ring slot*, not per rendezvous.
///
/// Functions are addressed by dense id ([`NativeRingSession::function_id`])
/// so a submission carries no string; the per-session token rides in
/// every entry and is constant-time-compared by the drainer per call.
pub struct NativeRingSession {
    sq: Arc<Ring<NativeRingReq>>,
    /// The completion ring carries `(user_data, reply)` pairs so cookie
    /// and verdict stay atomic under concurrent reaping.
    cq: Arc<Ring<(u64, NativeRingReply)>>,
    /// Set by shutdown/Drop before the sentinel: lets the drainer
    /// abandon a completion it cannot publish (full `cq`, producer gone)
    /// instead of spinning forever against a ring nobody will reap.
    stop: Arc<std::sync::atomic::AtomicBool>,
    token: [u8; 32],
    heap: Arc<SharedHeap>,
    /// Argument arena shared with the drainer: submissions above
    /// [`secmod_ring::INLINE_ARG_MAX`] pass by descriptor, the drainer
    /// reads the bytes in place, and the slot frees when the request
    /// drops after the call.
    arena: ArenaRegion,
    names: Vec<String>,
    drainer: Option<JoinHandle<u64>>,
}

impl std::fmt::Debug for NativeRingSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "NativeRingSession({} functions, heap={} bytes)",
            self.names.len(),
            self.heap.len()
        )
    }
}

impl NativeRingSession {
    /// Start a ring-backed session: verify the client credential, build
    /// the ring pair (capacity rounded up to a power of two), and spawn
    /// the drainer thread that owns the function bodies.
    pub fn start(
        module: &NativeModule,
        client_credential: &[u8],
        heap_size: usize,
        ring_capacity: usize,
    ) -> Result<NativeRingSession> {
        if !secmod_crypto::ct_eq(client_credential, &module.credential_key) {
            return Err(SmodError::CredentialRejected);
        }
        let client_pid = std::process::id();
        let mut mac = HmacSha256::new(&module.credential_key);
        mac.update(&client_pid.to_le_bytes());
        mac.update(b"secmodule-native-ring-session");
        let token = mac.finalize();

        let heap = SharedHeap::new(heap_size);
        // Dense function ids: sorted names so ids are deterministic.
        let mut names: Vec<String> = module.functions.keys().cloned().collect();
        names.sort();
        let bodies: Vec<NativeBody> = names
            .iter()
            .map(|n| Arc::clone(&module.functions[n]))
            .collect();
        let ctx = NativeCtx {
            heap: heap.clone(),
            client_pid,
        };

        let sq: Arc<Ring<NativeRingReq>> = Arc::new(Ring::with_capacity(ring_capacity));
        let cq: Arc<Ring<(u64, NativeRingReply)>> = Arc::new(Ring::with_capacity(ring_capacity));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let arena = ArenaRegion::new(
            ArgArena::with_capacity(NATIVE_ARENA_BYTES),
            NATIVE_ARENA_BYTES,
        );

        let expected = token;
        let drainer_sq = Arc::clone(&sq);
        let drainer_cq = Arc::clone(&cq);
        let drainer_stop = Arc::clone(&stop);
        let drainer = std::thread::Builder::new()
            .name("smod-ring-drainer".to_string())
            .spawn(move || {
                use std::sync::atomic::Ordering;
                let mut calls = 0u64;
                loop {
                    let req = match drainer_sq.pop_spsc() {
                        Some(req) => req,
                        None => {
                            if drainer_stop.load(Ordering::Acquire) {
                                // Producer is gone and the queue is dry:
                                // exit even if the sentinel never fit.
                                break;
                            }
                            // Idle: park briefly; the producer unparks on
                            // submit, the timeout covers a lost race.
                            std::thread::park_timeout(std::time::Duration::from_micros(50));
                            continue;
                        }
                    };
                    if req.func == NATIVE_RING_SHUTDOWN {
                        break;
                    }
                    // Per-call credential re-check, exactly like the
                    // rendezvous backend.
                    let reply = if !secmod_crypto::ct_eq(&req.token, &expected) {
                        NativeRingReply::Denied
                    } else {
                        match bodies.get(req.func as usize) {
                            None => NativeRingReply::Unknown(req.func),
                            Some(body) => {
                                calls += 1;
                                NativeRingReply::Ok(body(&ctx, req.args.as_slice()))
                            }
                        }
                    };
                    let mut pending = (req.user_data, reply);
                    // cq is sized like sq, so space exists unless the
                    // producer stopped reaping; spin-yield until it does —
                    // but a departing producer (stop set) will never reap,
                    // so drop the completion rather than hang the drainer
                    // (and the join in the session's Drop) forever.
                    while let Err(back) = drainer_cq.push_spsc(pending) {
                        if drainer_stop.load(Ordering::Acquire) {
                            break;
                        }
                        pending = back;
                        std::thread::yield_now();
                    }
                }
                calls
            })
            .expect("spawn ring drainer thread");

        Ok(NativeRingSession {
            sq,
            cq,
            stop,
            token,
            heap,
            arena,
            names,
            drainer: Some(drainer),
        })
    }

    /// The heap shared with the drainer.
    pub fn heap(&self) -> Arc<SharedHeap> {
        self.heap.clone()
    }

    /// The dense id of `name`, for building submissions.
    pub fn function_id(&self, name: &str) -> Option<u32> {
        self.names.iter().position(|n| n == name).map(|i| i as u32)
    }

    /// Queue one call. Returns `false` when the submission ring is full
    /// (reap and retry). Never blocks: the producer's only interaction
    /// with the handle is this ring slot.
    pub fn submit(&self, func: u32, user_data: u64, args: &[u8]) -> bool {
        let ok = self
            .sq
            .push_spsc(NativeRingReq {
                token: self.token,
                func,
                user_data,
                args: ArgRef::place(args, Some(&self.arena)),
            })
            .is_ok();
        if ok {
            if let Some(handle) = &self.drainer {
                handle.thread().unpark();
            }
        }
        ok
    }

    /// Pop one completion, if any.
    pub fn reap(&self) -> Option<NativeCompletion> {
        let (user_data, reply) = self.cq.pop_spsc()?;
        let result = match reply {
            NativeRingReply::Ok(ret) => Ok(ret),
            NativeRingReply::Denied => Err(SmodError::CredentialRejected),
            NativeRingReply::Unknown(func) => Err(SmodError::UnknownFunction(format!("#{func}"))),
        };
        Some(NativeCompletion { user_data, result })
    }

    /// Convenience: submit every argument block for `function`, reap all
    /// completions, and return the results in submission order.
    pub fn call_batch(&self, function: &str, args_list: &[&[u8]]) -> Result<Vec<Result<Vec<u8>>>> {
        let func = self
            .function_id(function)
            .ok_or_else(|| SmodError::UnknownFunction(function.to_string()))?;
        let mut out: Vec<Option<Result<Vec<u8>>>> = (0..args_list.len()).map(|_| None).collect();
        let mut sent = 0usize;
        let mut received = 0usize;
        while received < args_list.len() {
            let mut progressed = false;
            if sent < args_list.len() && self.submit(func, sent as u64, args_list[sent]) {
                sent += 1;
                progressed = true;
            }
            while let Some(completion) = self.reap() {
                out[completion.user_data as usize] = Some(completion.result);
                received += 1;
                progressed = true;
            }
            if !progressed {
                if self.drainer.is_none() {
                    return Err(SmodError::HandleGone);
                }
                std::thread::yield_now();
            }
        }
        Ok(out.into_iter().map(|r| r.expect("all reaped")).collect())
    }

    /// End the session: send the shutdown sentinel through the
    /// submission ring (the only channel the pair shares) and return how
    /// many calls the drainer served.
    pub fn shutdown(mut self) -> u64 {
        self.send_shutdown();
        match self.drainer.take() {
            Some(h) => h.join().unwrap_or(0),
            None => 0,
        }
    }

    fn send_shutdown(&self) {
        // Raise the stop flag first: from here on the drainer discards
        // completions it cannot publish and exits on a dry queue, so the
        // sentinel push below always terminates — even against a full
        // completion ring nobody will ever reap again.
        self.stop.store(true, std::sync::atomic::Ordering::Release);
        let mut req = NativeRingReq {
            token: self.token,
            func: NATIVE_RING_SHUTDOWN,
            user_data: 0,
            args: ArgRef::empty(),
        };
        loop {
            match self.sq.push_spsc(req) {
                Ok(()) => break,
                Err(back) => {
                    req = back;
                    if let Some(handle) = &self.drainer {
                        handle.thread().unpark();
                    }
                    std::thread::yield_now();
                }
            }
        }
        if let Some(handle) = &self.drainer {
            handle.thread().unpark();
        }
    }
}

impl Drop for NativeRingSession {
    fn drop(&mut self) {
        if self.drainer.is_some() {
            self.send_shutdown();
            if let Some(h) = self.drainer.take() {
                let _ = h.join();
            }
        }
    }
}

/// The native `getpid()` baseline: a real system call on the host.
pub fn native_getpid() -> u32 {
    std::process::id()
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: &[u8] = b"native-credential";

    fn session() -> NativeSession {
        NativeSession::start(&NativeModule::benchmark_module(KEY), KEY, 4096).unwrap()
    }

    #[test]
    fn testincr_and_getpid() {
        let s = session();
        let r = s.call("testincr", &41u64.to_le_bytes()).unwrap();
        assert_eq!(u64::from_le_bytes(r.try_into().unwrap()), 42);
        let r = s.call("getpid", &[]).unwrap();
        assert_eq!(
            u64::from_le_bytes(r.try_into().unwrap()),
            std::process::id() as u64
        );
        assert_eq!(s.shutdown(), 2);
    }

    #[test]
    fn wrong_credential_cannot_start_a_session() {
        let module = NativeModule::benchmark_module(KEY);
        assert!(matches!(
            NativeSession::start(&module, b"wrong", 4096),
            Err(SmodError::CredentialRejected)
        ));
    }

    #[test]
    fn forged_token_is_rejected_per_call() {
        let s = session();
        assert!(matches!(
            s.call_with_token([0u8; 32], "testincr", &1u64.to_le_bytes()),
            Err(SmodError::CredentialRejected)
        ));
        // The genuine token still works afterwards.
        assert!(s.call("testincr", &1u64.to_le_bytes()).is_ok());
    }

    #[test]
    fn unknown_function() {
        let s = session();
        assert!(matches!(
            s.call("does_not_exist", &[]),
            Err(SmodError::UnknownFunction(_))
        ));
    }

    #[test]
    fn shared_heap_is_visible_to_both_sides() {
        let module = NativeModule::new(KEY).function("sum_heap", |ctx, args| {
            let len = u64::from_le_bytes(args[..8].try_into().unwrap()) as usize;
            let total: u64 = ctx.heap.read(0, len).iter().map(|&b| b as u64).sum();
            total.to_le_bytes().to_vec()
        });
        let s = NativeSession::start(&module, KEY, 1024).unwrap();
        s.heap().write(0, &[1, 2, 3, 4, 5]);
        let r = s.call("sum_heap", &5u64.to_le_bytes()).unwrap();
        assert_eq!(u64::from_le_bytes(r.try_into().unwrap()), 15);
        // The handle can also write back; the client observes it.
        let module2 = NativeModule::new(KEY).function("store", |ctx, args| {
            ctx.heap.write(100, args);
            Vec::new()
        });
        let s2 = NativeSession::start(&module2, KEY, 1024).unwrap();
        s2.call("store", b"from handle").unwrap();
        assert_eq!(s2.heap().read(100, 11), b"from handle");
    }

    #[test]
    fn many_calls_are_stable() {
        let s = session();
        for i in 0..1000u64 {
            let r = s.call("testincr", &i.to_le_bytes()).unwrap();
            assert_eq!(u64::from_le_bytes(r.try_into().unwrap()), i + 1);
        }
    }

    #[test]
    fn native_getpid_returns_this_process() {
        assert_eq!(native_getpid(), std::process::id());
    }

    // --- the ring-backed variant ------------------------------------

    fn ring_session() -> NativeRingSession {
        NativeRingSession::start(&NativeModule::benchmark_module(KEY), KEY, 4096, 64).unwrap()
    }

    #[test]
    fn ring_session_matches_the_rendezvous_backend() {
        let s = ring_session();
        let results = s
            .call_batch(
                "testincr",
                &(0..40u64)
                    .map(|i| i.to_le_bytes().to_vec())
                    .collect::<Vec<_>>()
                    .iter()
                    .map(|a| a.as_slice())
                    .collect::<Vec<_>>(),
            )
            .unwrap();
        for (i, r) in results.into_iter().enumerate() {
            let bytes = r.expect("incr succeeds");
            assert_eq!(
                u64::from_le_bytes(bytes.try_into().unwrap()),
                i as u64 + 1,
                "completion {i} carries another submission's result"
            );
        }
        assert_eq!(s.shutdown(), 40);
    }

    #[test]
    fn ring_session_submit_reap_is_nonblocking() {
        let s = ring_session();
        let incr = s.function_id("testincr").unwrap();
        // Queue more than the drainer has served, then reap them all:
        // the producer never blocks on the handle, only on ring space.
        let mut sent = 0u64;
        let mut seen = 0;
        while seen < 100 {
            if sent < 100 && s.submit(incr, sent, &sent.to_le_bytes()) {
                sent += 1;
            }
            while let Some(c) = s.reap() {
                assert_eq!(
                    u64::from_le_bytes(c.result.unwrap().try_into().unwrap()),
                    c.user_data + 1
                );
                seen += 1;
            }
        }
        assert_eq!(s.shutdown(), 100);
    }

    #[test]
    fn ring_session_rejects_bad_credential_and_unknown_function() {
        let module = NativeModule::benchmark_module(KEY);
        assert!(matches!(
            NativeRingSession::start(&module, b"wrong", 4096, 8),
            Err(SmodError::CredentialRejected)
        ));
        let s = ring_session();
        assert!(s.function_id("does_not_exist").is_none());
        // A forged function id past the table is answered, not dropped.
        assert!(s.submit(1000, 9, &[]));
        let completion = loop {
            match s.reap() {
                Some(c) => break c,
                None => std::thread::yield_now(),
            }
        };
        assert_eq!(completion.user_data, 9);
        assert!(matches!(
            completion.result,
            Err(SmodError::UnknownFunction(_))
        ));
        assert_eq!(s.shutdown(), 0);
    }

    #[test]
    fn dropping_a_session_with_unreaped_completions_does_not_hang() {
        // Regression: fill the completion ring (8 served, never reaped),
        // leave more work queued, then drop. The drainer is mid-spin on
        // the full cq; the stop flag must let it abandon the completion
        // and consume the shutdown sentinel instead of deadlocking the
        // dropping thread on join().
        let module = NativeModule::benchmark_module(KEY);
        let s = NativeRingSession::start(&module, KEY, 1024, 8).unwrap();
        let incr = s.function_id("testincr").unwrap();
        let mut sent = 0u64;
        // Oversubmit: 8 completions fill the cq, the rest stay queued or
        // leave the drainer blocked publishing.
        while sent < 16 {
            if s.submit(incr, sent, &sent.to_le_bytes()) {
                sent += 1;
            } else {
                std::thread::yield_now();
            }
        }
        drop(s); // must return, not hang
    }

    #[test]
    fn ring_session_passes_large_args_through_the_arena() {
        let module = NativeModule::new(KEY).function("sum", |_ctx, args| {
            let total: u64 = args.iter().map(|&b| b as u64).sum();
            total.to_le_bytes().to_vec()
        });
        let s = NativeRingSession::start(&module, KEY, 1024, 8).unwrap();
        // 64 KiB is far past INLINE_ARG_MAX: it must ride the arena, be
        // read in place by the drainer, and settle the region afterwards.
        let big = vec![1u8; 64 * 1024];
        let results = s.call_batch("sum", &[big.as_slice(), &[2u8, 3u8]]).unwrap();
        assert_eq!(
            u64::from_le_bytes(results[0].as_ref().unwrap().clone().try_into().unwrap()),
            64 * 1024
        );
        assert_eq!(
            u64::from_le_bytes(results[1].as_ref().unwrap().clone().try_into().unwrap()),
            5
        );
        assert_eq!(
            s.arena.in_flight(),
            0,
            "drained requests must free their arena slots"
        );
        s.shutdown();
    }

    #[test]
    fn ring_session_shares_the_heap_across_the_ring_boundary() {
        let module = NativeModule::new(KEY).function("sum_heap", |ctx, args| {
            let len = u64::from_le_bytes(args[..8].try_into().unwrap()) as usize;
            let total: u64 = ctx.heap.read(0, len).iter().map(|&b| b as u64).sum();
            total.to_le_bytes().to_vec()
        });
        let s = NativeRingSession::start(&module, KEY, 1024, 8).unwrap();
        s.heap().write(0, &[10, 20, 30]);
        let results = s.call_batch("sum_heap", &[&3u64.to_le_bytes()]).unwrap();
        assert_eq!(
            u64::from_le_bytes(results[0].as_ref().unwrap().clone().try_into().unwrap()),
            60
        );
    }
}
