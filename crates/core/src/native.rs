//! The native backend: real threads, real shared memory, real time.
//!
//! The paper's mechanism makes two *processes* share their data/heap/stack
//! while keeping the module text private to the handle.  Two threads of one
//! process already share an address space, so the native backend runs the
//! client on the calling thread and the handle on a dedicated thread, with
//! a blocking rendezvous (the stand-in for `sys_smod_call`'s trap + SYSV
//! message + context switch) and a credential check on every call.  The
//! protected function bodies live only in the handle thread's dispatch
//! table — the client never holds them — and operate on a genuinely shared
//! heap.
//!
//! This is the backend the wall-clock Figure 8 reproduction uses: absolute
//! numbers reflect modern hardware, but the ordering (native syscall ≪ SMOD
//! dispatch ≪ local RPC) and rough ratios match the paper.
//!
//! Which lock is held where: the shared heap sits behind one `RwLock`
//! (readers concurrent, writers exclusive — held only for the duration of
//! a `read`/`write` byte copy); the call rendezvous itself holds no lock
//! at all, it is a pair of bounded(0) channels, so a session serialises
//! its own calls but separate sessions never contend.

use crate::{Result, SmodError};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::RwLock;
use secmod_crypto::hmac::HmacSha256;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// The heap shared between the client and the handle thread.
#[derive(Debug, Default)]
pub struct SharedHeap {
    bytes: RwLock<Vec<u8>>,
}

impl SharedHeap {
    /// Create a heap of `size` zeroed bytes.
    pub fn new(size: usize) -> Arc<SharedHeap> {
        Arc::new(SharedHeap {
            bytes: RwLock::new(vec![0u8; size]),
        })
    }

    /// Heap size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.read().len()
    }

    /// Is the heap empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read `len` bytes at `offset`.
    pub fn read(&self, offset: usize, len: usize) -> Vec<u8> {
        let bytes = self.bytes.read();
        bytes[offset..offset + len].to_vec()
    }

    /// Write bytes at `offset`.
    pub fn write(&self, offset: usize, data: &[u8]) {
        let mut bytes = self.bytes.write();
        bytes[offset..offset + data.len()].copy_from_slice(data);
    }
}

/// The execution context handed to native function bodies.
pub struct NativeCtx {
    /// The heap shared with the client.
    pub heap: Arc<SharedHeap>,
    /// The (OS) process id of the client, as `getpid` must report it.
    pub client_pid: u32,
}

/// A native function body.
pub type NativeBody = Arc<dyn Fn(&NativeCtx, &[u8]) -> Vec<u8> + Send + Sync>;

/// A module definition for the native backend.
#[derive(Clone, Default)]
pub struct NativeModule {
    functions: HashMap<String, NativeBody>,
    credential_key: Vec<u8>,
}

impl std::fmt::Debug for NativeModule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NativeModule({} functions)", self.functions.len())
    }
}

impl NativeModule {
    /// Create an empty module protected by the given credential key.
    pub fn new(credential_key: &[u8]) -> NativeModule {
        NativeModule {
            functions: HashMap::new(),
            credential_key: credential_key.to_vec(),
        }
    }

    /// Register a function.
    pub fn function<F>(mut self, name: &str, body: F) -> NativeModule
    where
        F: Fn(&NativeCtx, &[u8]) -> Vec<u8> + Send + Sync + 'static,
    {
        self.functions.insert(name.to_string(), Arc::new(body));
        self
    }

    /// The standard benchmark module: `testincr` and `getpid`.
    pub fn benchmark_module(credential_key: &[u8]) -> NativeModule {
        NativeModule::new(credential_key)
            .function("testincr", |_ctx, args| {
                let v = u64::from_le_bytes(args[..8].try_into().unwrap_or([0; 8]));
                (v + 1).to_le_bytes().to_vec()
            })
            .function("getpid", |ctx, _args| {
                (ctx.client_pid as u64).to_le_bytes().to_vec()
            })
    }
}

enum HandleRequest {
    Call {
        token: [u8; 32],
        function: String,
        args: Vec<u8>,
    },
    Shutdown,
}

enum HandleReply {
    Ok(Vec<u8>),
    Denied,
    Unknown(String),
}

/// An established native session: a handle thread bound to exactly one
/// client, sharing a heap with it.
pub struct NativeSession {
    tx: Sender<HandleRequest>,
    rx: Receiver<HandleReply>,
    token: [u8; 32],
    heap: Arc<SharedHeap>,
    handle_thread: Option<JoinHandle<u64>>,
}

impl std::fmt::Debug for NativeSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NativeSession(heap={} bytes)", self.heap.len())
    }
}

impl NativeSession {
    /// Start a session: verify the client credential against the module's
    /// credential key, spawn the handle thread, and derive the per-session
    /// token the handle will demand on every call.
    pub fn start(
        module: &NativeModule,
        client_credential: &[u8],
        heap_size: usize,
    ) -> Result<NativeSession> {
        if !secmod_crypto::ct_eq(client_credential, &module.credential_key) {
            return Err(SmodError::CredentialRejected);
        }
        let client_pid = std::process::id();
        // The token binds the session to this client (pid) and credential.
        let mut mac = HmacSha256::new(&module.credential_key);
        mac.update(&client_pid.to_le_bytes());
        mac.update(b"secmodule-native-session");
        let token = mac.finalize();

        let heap = SharedHeap::new(heap_size);
        let functions = module.functions.clone();
        let expected_token = token;
        let ctx = NativeCtx {
            heap: heap.clone(),
            client_pid,
        };

        let (req_tx, req_rx) = bounded::<HandleRequest>(0);
        let (rep_tx, rep_rx) = bounded::<HandleReply>(0);
        let handle_thread = std::thread::Builder::new()
            .name("smod-handle".to_string())
            .spawn(move || {
                let mut calls: u64 = 0;
                while let Ok(req) = req_rx.recv() {
                    match req {
                        HandleRequest::Shutdown => break,
                        HandleRequest::Call {
                            token,
                            function,
                            args,
                        } => {
                            // Credential re-check on every call.
                            let reply = if !secmod_crypto::ct_eq(&token, &expected_token) {
                                HandleReply::Denied
                            } else {
                                match functions.get(&function) {
                                    None => HandleReply::Unknown(function),
                                    Some(body) => {
                                        calls += 1;
                                        HandleReply::Ok(body(&ctx, &args))
                                    }
                                }
                            };
                            if rep_tx.send(reply).is_err() {
                                break;
                            }
                        }
                    }
                }
                calls
            })
            .expect("spawn handle thread");

        Ok(NativeSession {
            tx: req_tx,
            rx: rep_rx,
            token,
            heap,
            handle_thread: Some(handle_thread),
        })
    }

    /// The heap shared with the handle.
    pub fn heap(&self) -> Arc<SharedHeap> {
        self.heap.clone()
    }

    /// Dispatch a call to the handle and wait for the reply.
    pub fn call(&self, function: &str, args: &[u8]) -> Result<Vec<u8>> {
        self.call_with_token(self.token, function, args)
    }

    /// Dispatch a call presenting an explicit token (used by tests to show
    /// that a forged token is rejected).
    pub fn call_with_token(&self, token: [u8; 32], function: &str, args: &[u8]) -> Result<Vec<u8>> {
        self.tx
            .send(HandleRequest::Call {
                token,
                function: function.to_string(),
                args: args.to_vec(),
            })
            .map_err(|_| SmodError::HandleGone)?;
        match self.rx.recv().map_err(|_| SmodError::HandleGone)? {
            HandleReply::Ok(result) => Ok(result),
            HandleReply::Denied => Err(SmodError::CredentialRejected),
            HandleReply::Unknown(name) => Err(SmodError::UnknownFunction(name)),
        }
    }

    /// End the session and return how many calls the handle served.
    pub fn shutdown(mut self) -> u64 {
        let _ = self.tx.send(HandleRequest::Shutdown);
        match self.handle_thread.take() {
            Some(h) => h.join().unwrap_or(0),
            None => 0,
        }
    }
}

impl Drop for NativeSession {
    fn drop(&mut self) {
        let _ = self.tx.send(HandleRequest::Shutdown);
        if let Some(h) = self.handle_thread.take() {
            let _ = h.join();
        }
    }
}

/// The native `getpid()` baseline: a real system call on the host.
pub fn native_getpid() -> u32 {
    std::process::id()
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: &[u8] = b"native-credential";

    fn session() -> NativeSession {
        NativeSession::start(&NativeModule::benchmark_module(KEY), KEY, 4096).unwrap()
    }

    #[test]
    fn testincr_and_getpid() {
        let s = session();
        let r = s.call("testincr", &41u64.to_le_bytes()).unwrap();
        assert_eq!(u64::from_le_bytes(r.try_into().unwrap()), 42);
        let r = s.call("getpid", &[]).unwrap();
        assert_eq!(
            u64::from_le_bytes(r.try_into().unwrap()),
            std::process::id() as u64
        );
        assert_eq!(s.shutdown(), 2);
    }

    #[test]
    fn wrong_credential_cannot_start_a_session() {
        let module = NativeModule::benchmark_module(KEY);
        assert!(matches!(
            NativeSession::start(&module, b"wrong", 4096),
            Err(SmodError::CredentialRejected)
        ));
    }

    #[test]
    fn forged_token_is_rejected_per_call() {
        let s = session();
        assert!(matches!(
            s.call_with_token([0u8; 32], "testincr", &1u64.to_le_bytes()),
            Err(SmodError::CredentialRejected)
        ));
        // The genuine token still works afterwards.
        assert!(s.call("testincr", &1u64.to_le_bytes()).is_ok());
    }

    #[test]
    fn unknown_function() {
        let s = session();
        assert!(matches!(
            s.call("does_not_exist", &[]),
            Err(SmodError::UnknownFunction(_))
        ));
    }

    #[test]
    fn shared_heap_is_visible_to_both_sides() {
        let module = NativeModule::new(KEY).function("sum_heap", |ctx, args| {
            let len = u64::from_le_bytes(args[..8].try_into().unwrap()) as usize;
            let total: u64 = ctx.heap.read(0, len).iter().map(|&b| b as u64).sum();
            total.to_le_bytes().to_vec()
        });
        let s = NativeSession::start(&module, KEY, 1024).unwrap();
        s.heap().write(0, &[1, 2, 3, 4, 5]);
        let r = s.call("sum_heap", &5u64.to_le_bytes()).unwrap();
        assert_eq!(u64::from_le_bytes(r.try_into().unwrap()), 15);
        // The handle can also write back; the client observes it.
        let module2 = NativeModule::new(KEY).function("store", |ctx, args| {
            ctx.heap.write(100, args);
            Vec::new()
        });
        let s2 = NativeSession::start(&module2, KEY, 1024).unwrap();
        s2.call("store", b"from handle").unwrap();
        assert_eq!(s2.heap().read(100, 11), b"from handle");
    }

    #[test]
    fn many_calls_are_stable() {
        let s = session();
        for i in 0..1000u64 {
            let r = s.call("testincr", &i.to_le_bytes()).unwrap();
            assert_eq!(u64::from_le_bytes(r.try_into().unwrap()), i + 1);
        }
    }

    #[test]
    fn native_getpid_returns_this_process() {
        assert_eq!(native_getpid(), std::process::id());
    }
}
