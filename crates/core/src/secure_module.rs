//! Defining a SecModule: functions, policy, key material and the synthetic
//! image built by the toolchain.

use crate::{Result, SmodError};
use secmod_crypto::rng::HashDrbg;
use secmod_kernel::smod::ModuleKeyDelivery;
use secmod_kernel::smodreg::{FunctionTable, HandleCtx};
use secmod_kernel::SysResult;
use secmod_module::builder::{FunctionSpec, ModuleBuilder};
use secmod_module::{SmodPackage, StubTable};
use secmod_policy::assertion::{Assertion, LicenseeExpr};
use secmod_policy::{PolicyEngine, Principal};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The body of a protected function, as registered by the module author.
pub type BodyFn = Arc<dyn Fn(&mut HandleCtx<'_>, &[u8]) -> SysResult<Vec<u8>> + Send + Sync>;

/// A fully built SecModule, ready to install into a [`crate::sim::SimWorld`]
/// (or to be converted for the native backend).
pub struct SecureModule {
    /// Module name.
    pub name: String,
    /// Module version.
    pub version: u32,
    /// The sealed registration package (text selectively encrypted).
    pub package: SmodPackage,
    /// The stub table (client side).
    pub stub_table: StubTable,
    /// Function bodies keyed by symbol name.
    pub bodies: BTreeMap<String, BodyFn>,
    /// The access policy.
    pub policy: PolicyEngine,
    /// Raw module key (held by the "toolchain"; handed to the kernel at
    /// registration and never to clients).
    pub module_key: Vec<u8>,
    /// CTR nonce used when sealing.
    pub nonce: [u8; 8],
    /// MAC key protecting the registration package.
    pub mac_key: Vec<u8>,
}

impl std::fmt::Debug for SecureModule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureModule")
            .field("name", &self.name)
            .field("version", &self.version)
            .field("functions", &self.bodies.len())
            .field("policy_complexity", &self.policy.total_complexity())
            .finish()
    }
}

impl SecureModule {
    /// Build the kernel-facing [`FunctionTable`] (func-id keyed) from the
    /// name-keyed bodies.
    pub fn function_table(&self) -> FunctionTable {
        let mut table = FunctionTable::new();
        for (name, body) in &self.bodies {
            if let Some(stub) = self.stub_table.by_name(name) {
                let body = body.clone();
                table.register(stub.func_id, move |ctx, args| body(ctx, args));
            }
        }
        table
    }

    /// The key-delivery descriptor handed to `sys_smod_add`.
    pub fn key_delivery(&self) -> ModuleKeyDelivery {
        ModuleKeyDelivery::Raw {
            key: self.module_key.clone(),
            nonce: self.nonce,
        }
    }

    /// The function id for a symbol, if it exists.
    pub fn func_id(&self, symbol: &str) -> Option<u32> {
        self.stub_table.by_name(symbol).map(|s| s.func_id)
    }
}

/// Builder for [`SecureModule`]s.
pub struct SecureModuleBuilder {
    name: String,
    version: u32,
    functions: Vec<(String, usize, BodyFn)>,
    policy: PolicyEngine,
    policy_assertions: usize,
    data_objects: Vec<(String, Vec<u8>)>,
    seed: Vec<u8>,
}

impl SecureModuleBuilder {
    /// Start defining a module.
    pub fn new(name: &str, version: u32) -> SecureModuleBuilder {
        SecureModuleBuilder {
            name: name.to_string(),
            version,
            functions: Vec::new(),
            policy: PolicyEngine::new(),
            policy_assertions: 0,
            data_objects: Vec::new(),
            seed: format!("secmod:{name}:{version}").into_bytes(),
        }
    }

    /// Add a protected function with a default synthetic body size.
    pub fn function<F>(self, name: &str, body: F) -> SecureModuleBuilder
    where
        F: Fn(&mut HandleCtx<'_>, &[u8]) -> SysResult<Vec<u8>> + Send + Sync + 'static,
    {
        self.function_sized(name, 64, body)
    }

    /// Add a protected function, specifying the synthetic text size (affects
    /// how many bytes the selective encryptor protects — useful for the
    /// encryption-overhead ablation).
    pub fn function_sized<F>(
        mut self,
        name: &str,
        text_bytes: usize,
        body: F,
    ) -> SecureModuleBuilder
    where
        F: Fn(&mut HandleCtx<'_>, &[u8]) -> SysResult<Vec<u8>> + Send + Sync + 'static,
    {
        self.functions
            .push((name.to_string(), text_bytes, Arc::new(body)));
        self
    }

    /// Add a data object to the module image.
    pub fn data_object(mut self, name: &str, bytes: &[u8]) -> SecureModuleBuilder {
        self.data_objects.push((name.to_string(), bytes.to_vec()));
        self
    }

    /// Allow holders of this credential key material to call *any* function
    /// of the module (the paper's measured "always allowed" policy, bound to
    /// a principal).
    pub fn allow_credential(self, credential_key: &[u8]) -> SecureModuleBuilder {
        self.allow_credential_if(credential_key, "")
    }

    /// Allow holders of this credential to call the module when the given
    /// condition (over `module`, `function`, `uid`, `app_domain`,
    /// `module_version`) holds.
    pub fn allow_credential_if(
        mut self,
        credential_key: &[u8],
        condition: &str,
    ) -> SecureModuleBuilder {
        let principal = Principal::from_key(
            &format!("licensee{}", self.policy_assertions),
            credential_key,
        );
        let assertion = Assertion::policy(LicenseeExpr::Single(principal), condition)
            .expect("condition must parse");
        self.policy
            .add_assertion(assertion)
            .expect("policy assertions are unsigned");
        self.policy_assertions += 1;
        self
    }

    /// Install a fully custom policy engine (replaces any `allow_credential`
    /// grants added so far).
    pub fn with_policy(mut self, policy: PolicyEngine) -> SecureModuleBuilder {
        self.policy = policy;
        self
    }

    /// Build the module: synthesise the image with the toolchain, seal it,
    /// and bundle the bodies and policy.
    pub fn build(self) -> Result<SecureModule> {
        if self.functions.is_empty() {
            return Err(SmodError::UnknownFunction(
                "a SecModule needs at least one function".to_string(),
            ));
        }
        let mut rng = HashDrbg::new(&self.seed);
        let module_key = rng.bytes(16);
        let mut nonce = [0u8; 8];
        nonce.copy_from_slice(&rng.bytes(8));
        let mac_key = rng.bytes(32);

        let mut builder = ModuleBuilder::new(&self.name, self.version);
        for (name, bytes) in &self.data_objects {
            builder.add_data_object(name, bytes);
        }
        for (name, size, _) in &self.functions {
            let mut spec = FunctionSpec::new(name, *size);
            if let Some((obj, _)) = self.data_objects.first() {
                spec = spec.referencing(obj);
            }
            builder.add_function(spec);
        }
        let image = builder.build(false)?;
        let stub_table = StubTable::generate(&image);

        let encryptor = secmod_crypto::SelectiveEncryptor::new(&module_key, nonce)?;
        let package = SmodPackage::seal(&image, &encryptor, &mac_key)?;

        let mut bodies = BTreeMap::new();
        for (name, _, body) in self.functions {
            bodies.insert(name, body);
        }

        Ok(SecureModule {
            name: self.name,
            version: self.version,
            package,
            stub_table,
            bodies,
            policy: self.policy,
            module_key,
            nonce,
            mac_key,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_module() -> SecureModule {
        SecureModuleBuilder::new("libdemo", 3)
            .data_object("state", &[0u8; 16])
            .function("incr", |_ctx, args| {
                let v = u64::from_le_bytes(args[..8].try_into().unwrap());
                Ok((v + 1).to_le_bytes().to_vec())
            })
            .function("noop", |_ctx, _args| Ok(Vec::new()))
            .allow_credential(b"alice")
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_consistent_module() {
        let m = demo_module();
        assert_eq!(m.name, "libdemo");
        assert_eq!(m.version, 3);
        assert_eq!(m.stub_table.len(), 2);
        assert_eq!(m.bodies.len(), 2);
        assert!(m.func_id("incr").is_some());
        assert!(m.func_id("nothere").is_none());
        assert!(m.package.encrypted);
        assert!(m.package.protected_text_bytes() > 0);
        assert_eq!(m.policy.len(), 1);
        let table = m.function_table();
        assert_eq!(table.len(), 2);
        assert!(matches!(m.key_delivery(), ModuleKeyDelivery::Raw { .. }));
        assert!(format!("{m:?}").contains("libdemo"));
    }

    #[test]
    fn empty_module_is_rejected() {
        assert!(SecureModuleBuilder::new("empty", 1)
            .allow_credential(b"x")
            .build()
            .is_err());
    }

    #[test]
    fn builds_are_deterministic_per_name_version() {
        let a = demo_module();
        let b = demo_module();
        assert_eq!(a.module_key, b.module_key);
        assert_eq!(a.package.image.text.data, b.package.image.text.data);
        let c = SecureModuleBuilder::new("libdemo", 4)
            .function("incr", |_c, a| Ok(a.to_vec()))
            .build()
            .unwrap();
        assert_ne!(a.module_key, c.module_key);
    }

    #[test]
    fn conditional_policy_is_wired_in() {
        let m = SecureModuleBuilder::new("libcond", 1)
            .function("f", |_c, _a| Ok(vec![]))
            .allow_credential_if(b"alice", "function != \"forbidden\" && uid >= 1000")
            .build()
            .unwrap();
        assert!(m.policy.total_complexity() >= 3);
    }
}
