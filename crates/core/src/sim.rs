//! The simulated backend: a complete SecModule deployment on top of the
//! `secmod-kernel` simulator.
//!
//! `SimWorld` plays the role of the machine: it boots a kernel, registers
//! modules (the toolchain + `sys_smod_add` path), spawns client processes,
//! runs the crt0-style session handshake on their behalf, and dispatches
//! calls through `sys_smod_call`.  Everything is deterministic, and the
//! kernel's simulated clock gives reproducible Figure 8-style timings.
//!
//! Concurrency: the underlying kernel is `&self` end to end, so once the
//! world is set up (modules installed, clients connected — the `&mut self`
//! methods), any number of threads may drive [`SimWorld::call`] /
//! [`SimWorld::native_getpid`] / [`SimWorld::peek`] / [`SimWorld::poke`]
//! concurrently through a shared `&SimWorld`. Which lock is held where: a
//! dispatch takes the kernel's process-map and session-map read locks just
//! long enough to clone handles, the per-call policy check is a lookup in
//! the module's sharded decision cache (engine read lock only on a miss),
//! and the body runs under the client/handle pair's two process mutexes —
//! so calls on different sessions proceed in parallel.

use crate::secure_module::SecureModule;
use crate::{Result, SmodError};
use secmod_async::SimDriver;
use secmod_kernel::dispatch::{
    DispatchCall, DispatchCaps, DispatchError, DispatchOutcome, Dispatcher,
};
use secmod_kernel::smod::{SessionId, SmodCallArgs};
use secmod_kernel::{CostModel, Credential, Kernel, Pid};
use secmod_module::ModuleId;
use secmod_ring::{RingPairConfig, SmodCallReq};
use secmod_vm::Vaddr;
use std::collections::HashMap;

/// A simulated machine running the SecModule framework.
pub struct SimWorld {
    /// The underlying kernel (public so tests and benches can inspect the
    /// clock, the tracer, processes and sessions directly).
    pub kernel: Kernel,
    registrar: Pid,
    /// Installed modules by name.
    modules: HashMap<String, ModuleId>,
    /// Stub lookup per module id (symbol → func id).
    stubs: HashMap<ModuleId, HashMap<String, u32>>,
    /// Which module each client is connected to.
    client_modules: HashMap<Pid, ModuleId>,
}

impl std::fmt::Debug for SimWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimWorld")
            .field("modules", &self.modules.len())
            .field("kernel", &self.kernel)
            .finish()
    }
}

impl Default for SimWorld {
    fn default() -> Self {
        Self::new()
    }
}

impl SimWorld {
    /// Boot a world with the default (paper-calibrated) cost model.
    pub fn new() -> SimWorld {
        Self::with_cost_model(CostModel::default())
    }

    /// Boot a world with a custom cost model.
    pub fn with_cost_model(cost: CostModel) -> SimWorld {
        let kernel = Kernel::new(cost);
        let registrar = kernel
            .spawn_process("smod-registrar", Credential::root(), vec![0x90; 4096], 2, 2)
            .expect("registrar process");
        SimWorld {
            kernel,
            registrar,
            modules: HashMap::new(),
            stubs: HashMap::new(),
            client_modules: HashMap::new(),
        }
    }

    /// Register a [`SecureModule`] with the kernel (`sys_smod_add`).
    pub fn install(&mut self, module: &SecureModule) -> Result<ModuleId> {
        let id = self.kernel.sys_smod_add(
            self.registrar,
            module.package.clone(),
            module.key_delivery(),
            &module.mac_key,
            module.policy.clone(),
            module.function_table(),
        )?;
        self.modules.insert(module.name.clone(), id);
        let map = module
            .stub_table
            .stubs
            .iter()
            .map(|s| (s.symbol.clone(), s.func_id))
            .collect();
        self.stubs.insert(id, map);
        Ok(id)
    }

    /// Remove a module (`sys_smod_remove`, performed by the registrar).
    pub fn uninstall(&mut self, name: &str) -> Result<()> {
        let id = *self
            .modules
            .get(name)
            .ok_or_else(|| SmodError::UnknownFunction(name.to_string()))?;
        self.kernel.sys_smod_remove(self.registrar, id)?;
        self.modules.remove(name);
        self.stubs.remove(&id);
        Ok(())
    }

    /// The module id registered under `name`, if any.
    pub fn module_id(&self, name: &str) -> Option<ModuleId> {
        self.modules.get(name).copied()
    }

    /// Spawn a client process with the given credentials.
    pub fn spawn_client(&mut self, name: &str, cred: Credential) -> Result<Pid> {
        Ok(self
            .kernel
            .spawn_process(name, cred, vec![0x90; 4096], 8, 4)?)
    }

    /// The crt0 sequence of Figure 1 steps (1)–(4): find the module, start a
    /// session (which creates the handle), let the handle report in
    /// (`smod_session_info`, forcing the address-space share), and conclude
    /// with `smod_handle_info`.
    pub fn connect(&mut self, client: Pid, module_name: &str, version: u32) -> Result<SessionId> {
        let m_id = self.kernel.sys_smod_find(client, module_name, version)?;
        let (session, handle) = self.kernel.sys_smod_start_session(client, m_id)?;
        self.kernel.sys_smod_session_info(handle)?;
        self.kernel.sys_smod_handle_info(client)?;
        self.client_modules.insert(client, m_id);
        Ok(session)
    }

    /// Dispatch a call through `sys_smod_call` by symbol name. Takes
    /// `&self`: safe to drive from many threads at once.
    pub fn call(&self, client: Pid, symbol: &str, args: &[u8]) -> Result<Vec<u8>> {
        let m_id = *self
            .client_modules
            .get(&client)
            .ok_or(SmodError::NoSession)?;
        let func_id = *self
            .stubs
            .get(&m_id)
            .and_then(|m| m.get(symbol))
            .ok_or_else(|| SmodError::UnknownFunction(symbol.to_string()))?;
        Ok(self.kernel.sys_smod_call(
            client,
            SmodCallArgs {
                m_id,
                func_id,
                frame_pointer: 0xBFFF_0000,
                return_address: 0x0000_1000,
                args: args.to_vec(),
            },
        )?)
    }

    /// Batched dispatch through `sys_smod_call_batch`: invoke `symbol`
    /// once per entry of `args_list`, resolving the session and
    /// credentials once for the whole batch instead of per call. Returns
    /// one `(errno, result bytes)` per entry in submission order —
    /// per-entry failures (e.g. a policy denial) complete their entry
    /// without failing the batch. Takes `&self` like [`SimWorld::call`].
    pub fn call_batch(
        &self,
        client: Pid,
        symbol: &str,
        args_list: &[&[u8]],
    ) -> Result<Vec<std::result::Result<Vec<u8>, secmod_kernel::Errno>>> {
        let m_id = *self
            .client_modules
            .get(&client)
            .ok_or(SmodError::NoSession)?;
        let func_id = *self
            .stubs
            .get(&m_id)
            .and_then(|m| m.get(symbol))
            .ok_or_else(|| SmodError::UnknownFunction(symbol.to_string()))?;
        let session = self
            .kernel
            .session_of(client)
            .ok_or(SmodError::NoSession)?
            .id
            .0;
        let (sq, cq) = RingPairConfig {
            submission: args_list.len().max(1),
            completion: args_list.len().max(1),
        }
        .build();
        for (i, args) in args_list.iter().enumerate() {
            sq.push_spsc(SmodCallReq {
                session,
                proc_id: func_id,
                user_data: i as u64,
                args: (*args).into(),
            })
            .expect("submission ring sized to the batch");
        }
        self.kernel
            .sys_smod_call_batch(client, &sq, &cq, args_list.len().max(1))?;
        let mut out = Vec::with_capacity(args_list.len());
        while let Some(resp) = cq.pop_spsc() {
            out.push(if resp.is_ok() {
                Ok(resp.into_ret())
            } else {
                Err(secmod_kernel::Errno::from_code(resp.errno)
                    .unwrap_or(secmod_kernel::Errno::EINVAL))
            });
        }
        Ok(out)
    }

    /// Multi-session sweep dispatch through `sys_smod_sweep`: one batch
    /// of calls **per client**, all drained in a single
    /// syscall-equivalent that resolves each session once. Each element
    /// of `batches` is `(client, symbol, argument blocks)`; the return
    /// value mirrors the input shape, one `(errno | result)` per entry
    /// per client, in submission order. The sweep is performed by the
    /// world's registrar process (the stand-in for a dedicated drainer).
    ///
    /// This is [`SimWorld::call_batch`] taken one amortisation level
    /// further: where `call_batch` pays the fixed trap per client,
    /// `call_sweep` pays it once for all of them. Takes `&self`.
    #[allow(clippy::type_complexity)]
    pub fn call_sweep(
        &self,
        batches: &[(Pid, &str, &[&[u8]])],
    ) -> Result<Vec<Vec<std::result::Result<Vec<u8>, secmod_kernel::Errno>>>> {
        use secmod_ring::RingSet;
        let set = RingSet::with_capacity(batches.len().max(1));
        let mut slots = Vec::with_capacity(batches.len());
        let mut budget = 1usize;
        for (client, symbol, args_list) in batches {
            let m_id = *self
                .client_modules
                .get(client)
                .ok_or(SmodError::NoSession)?;
            let func_id = *self
                .stubs
                .get(&m_id)
                .and_then(|m| m.get(*symbol))
                .ok_or_else(|| SmodError::UnknownFunction(symbol.to_string()))?;
            let session = self
                .kernel
                .session_of(*client)
                .ok_or(SmodError::NoSession)?;
            let capacity = args_list.len().max(1);
            budget = budget.max(capacity);
            let slot = set
                .register(
                    session.id.0,
                    client.0,
                    RingPairConfig {
                        submission: capacity,
                        completion: capacity,
                    },
                )
                .expect("ring set sized to the batch list");
            for (i, args) in args_list.iter().enumerate() {
                set.submit(
                    slot,
                    SmodCallReq {
                        session: session.id.0,
                        proc_id: func_id,
                        user_data: i as u64,
                        args: (*args).into(),
                    },
                )
                .expect("submission ring sized to the batch");
            }
            slots.push(slot);
        }
        self.kernel.sys_smod_sweep(self.registrar, &set, budget)?;
        let mut out = Vec::with_capacity(batches.len());
        for (slot, (_, _, args_list)) in slots.iter().zip(batches) {
            let rings = set.get(*slot).expect("slot registered above");
            let mut results: Vec<std::result::Result<Vec<u8>, secmod_kernel::Errno>> =
                vec![Err(secmod_kernel::Errno::EINVAL); args_list.len()];
            while let Some(resp) = rings.cq.pop_spsc() {
                let idx = resp.user_data as usize;
                results[idx] = if resp.is_ok() {
                    Ok(resp.into_ret())
                } else {
                    Err(secmod_kernel::Errno::from_code(resp.errno)
                        .unwrap_or(secmod_kernel::Errno::EINVAL))
                };
            }
            out.push(results);
        }
        Ok(out)
    }

    /// Native (non-SecModule) `getpid()` for the baseline measurement.
    pub fn native_getpid(&self, client: Pid) -> Result<Pid> {
        Ok(self.kernel.sys_getpid(client)?)
    }

    /// Write into a client's memory (test/workload convenience).
    pub fn poke(&self, client: Pid, addr: Vaddr, data: &[u8]) -> Result<()> {
        Ok(self.kernel.write_user_memory(client, addr, data)?)
    }

    /// Read from a client's memory.
    pub fn peek(&self, client: Pid, addr: Vaddr, len: usize) -> Result<Vec<u8>> {
        Ok(self.kernel.read_user_memory(client, addr, len)?)
    }

    /// The base of the client heap (a convenient place for workloads to put
    /// shared data).
    pub fn heap_base(&self) -> Vaddr {
        Vaddr(self.kernel.layout.data_base)
    }

    /// Elapsed simulated nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.kernel.clock.now_ns()
    }

    /// Measure the simulated time of `f` in nanoseconds.
    pub fn measure<T>(&self, f: impl FnOnce(&SimWorld) -> T) -> (T, u64) {
        let start = self.now_ns();
        let value = f(self);
        (value, self.now_ns() - start)
    }

    /// `fork()` a connected client the SecModule way: the child gets its own
    /// handle and session (§4.3).
    pub fn fork_client(&mut self, client: Pid) -> Result<Pid> {
        let (child, _session, _handle) = self.kernel.sys_smod_fork(client)?;
        let m_id = *self
            .client_modules
            .get(&client)
            .ok_or(SmodError::NoSession)?;
        self.client_modules.insert(child, m_id);
        Ok(child)
    }

    /// Disconnect a client (kills its handle, removes the session).
    pub fn disconnect(&mut self, client: Pid) -> Result<()> {
        self.kernel.smod_detach(client, "client disconnect")?;
        self.client_modules.remove(&client);
        Ok(())
    }

    /// Resolve a connected client's `symbol` to the func id the
    /// [`Dispatcher`] vocabulary and the async frontend speak.
    pub fn func_id(&self, client: Pid, symbol: &str) -> Result<u32> {
        let m_id = *self
            .client_modules
            .get(&client)
            .ok_or(SmodError::NoSession)?;
        self.stubs
            .get(&m_id)
            .and_then(|m| m.get(symbol))
            .copied()
            .ok_or_else(|| SmodError::UnknownFunction(symbol.to_string()))
    }

    /// An async driver over this world's kernel, on the simulated clock:
    /// attach connected clients with [`SimDriver::attach`] and drive
    /// `session.call(proc_id, args).await` futures deterministically with
    /// [`SimDriver::run`]. `slots` bounds concurrently attached sessions;
    /// `session_budget` is the per-session drain budget of each simulated
    /// sweep.
    pub fn async_driver(&self, slots: usize, session_budget: usize) -> Result<SimDriver<'_>> {
        Ok(SimDriver::new(
            &self.kernel,
            slots,
            RingPairConfig::default(),
            session_budget,
        )?)
    }
}

impl Dispatcher for SimWorld {
    /// One simulated trap per call, same as [`SimWorld::call`] but in the
    /// unified vocabulary (func ids instead of symbols — resolve with
    /// [`SimWorld::func_id`]).
    fn dispatch_one(&self, client: Pid, proc_id: u32, args: &[u8]) -> DispatchOutcome {
        self.kernel.dispatch_one(client, proc_id, args)
    }

    /// One simulated trap per batch, via the kernel's throwaway-ring
    /// batch path.
    fn dispatch_batch(
        &self,
        client: Pid,
        calls: &[DispatchCall],
    ) -> std::result::Result<Vec<DispatchOutcome>, DispatchError> {
        self.kernel.dispatch_batch(client, calls)
    }

    fn capabilities(&self) -> DispatchCaps {
        DispatchCaps {
            flavor: "sim",
            batched: true,
            trap_free: false,
            asynchronous: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::secure_module::SecureModuleBuilder;

    const KEY: &[u8] = b"alice-key";

    fn demo_module() -> SecureModule {
        SecureModuleBuilder::new("libdemo", 1)
            .function("incr", |_ctx, args| {
                let v = u64::from_le_bytes(args[..8].try_into().unwrap());
                Ok((v + 1).to_le_bytes().to_vec())
            })
            .function("peek_heap", |ctx, args| {
                let addr = u64::from_le_bytes(args[..8].try_into().unwrap());
                let len = u64::from_le_bytes(args[8..16].try_into().unwrap()) as usize;
                ctx.read(Vaddr(addr), len)
            })
            .allow_credential(KEY)
            .build()
            .unwrap()
    }

    fn connected_world() -> (SimWorld, Pid) {
        let mut world = SimWorld::new();
        world.install(&demo_module()).unwrap();
        let client = world
            .spawn_client(
                "app",
                Credential::user(1000, 100).with_smod_credential("libdemo", KEY),
            )
            .unwrap();
        world.connect(client, "libdemo", 0).unwrap();
        (world, client)
    }

    #[test]
    fn install_connect_call() {
        let (world, client) = connected_world();
        assert!(world.module_id("libdemo").is_some());
        let reply = world.call(client, "incr", &41u64.to_le_bytes()).unwrap();
        assert_eq!(u64::from_le_bytes(reply.try_into().unwrap()), 42);
    }

    #[test]
    fn async_driver_agrees_with_sequential_calls() {
        let (world, client) = connected_world();
        let incr = world.func_id(client, "incr").unwrap();
        let driver = world.async_driver(4, 8).unwrap();
        let session = driver.attach(client).unwrap();
        let futures: Vec<_> = (0..10u64)
            .map(|i| {
                let session = session.clone();
                async move { session.call(incr, i.to_le_bytes()).await }
            })
            .collect();
        let outcomes = driver.run(futures);
        for (i, outcome) in outcomes.into_iter().enumerate() {
            let expected = world
                .call(client, "incr", &(i as u64).to_le_bytes())
                .unwrap();
            assert_eq!(outcome.unwrap(), expected);
        }
    }

    #[test]
    fn sim_world_speaks_the_dispatcher_vocabulary() {
        let (world, client) = connected_world();
        let incr = world.func_id(client, "incr").unwrap();
        assert_eq!(world.capabilities().flavor, "sim");
        assert_eq!(
            world
                .dispatch_one(client, incr, &41u64.to_le_bytes())
                .unwrap(),
            42u64.to_le_bytes().to_vec()
        );
        let calls: Vec<DispatchCall> = (0..4u64)
            .map(|i| DispatchCall::new(incr, i.to_le_bytes().to_vec()))
            .collect();
        for (i, outcome) in world
            .dispatch_batch(client, &calls)
            .unwrap()
            .into_iter()
            .enumerate()
        {
            assert_eq!(outcome.unwrap(), (i as u64 + 1).to_le_bytes().to_vec());
        }
        assert!(matches!(
            world.func_id(client, "nonexistent"),
            Err(SmodError::UnknownFunction(_))
        ));
    }

    #[test]
    fn handle_reads_client_heap_through_shared_pages() {
        let (world, client) = connected_world();
        let addr = world.heap_base();
        world.poke(client, addr, b"shared secret").unwrap();
        let mut args = addr.0.to_le_bytes().to_vec();
        args.extend_from_slice(&13u64.to_le_bytes());
        let reply = world.call(client, "peek_heap", &args).unwrap();
        assert_eq!(reply, b"shared secret");
    }

    #[test]
    fn unknown_symbol_and_missing_session_errors() {
        let (mut world, client) = connected_world();
        assert!(matches!(
            world.call(client, "nonexistent", &[]),
            Err(SmodError::UnknownFunction(_))
        ));
        let loner = world.spawn_client("loner", Credential::user(1, 1)).unwrap();
        assert!(matches!(
            world.call(loner, "incr", &[]),
            Err(SmodError::NoSession)
        ));
    }

    #[test]
    fn credential_gate_applies() {
        let mut world = SimWorld::new();
        world.install(&demo_module()).unwrap();
        let intruder = world
            .spawn_client("intruder", Credential::user(2000, 2000))
            .unwrap();
        assert!(world.connect(intruder, "libdemo", 0).is_err());
    }

    #[test]
    fn fork_and_disconnect() {
        let (mut world, client) = connected_world();
        let child = world.fork_client(client).unwrap();
        let r = world.call(child, "incr", &9u64.to_le_bytes()).unwrap();
        assert_eq!(u64::from_le_bytes(r.try_into().unwrap()), 10);
        world.disconnect(client).unwrap();
        assert!(world.call(client, "incr", &0u64.to_le_bytes()).is_err());
        // The child's session is independent and still works.
        let r = world.call(child, "incr", &1u64.to_le_bytes()).unwrap();
        assert_eq!(u64::from_le_bytes(r.try_into().unwrap()), 2);
    }

    #[test]
    fn uninstall_requires_no_sessions() {
        let (mut world, client) = connected_world();
        assert!(world.uninstall("libdemo").is_err());
        world.disconnect(client).unwrap();
        world.uninstall("libdemo").unwrap();
        assert!(world.module_id("libdemo").is_none());
    }

    #[test]
    fn call_batch_matches_sequential_calls_at_lower_cost() {
        let (world, client) = connected_world();
        let args: Vec<Vec<u8>> = (0..32u64).map(|i| i.to_le_bytes().to_vec()).collect();
        let arg_refs: Vec<&[u8]> = args.iter().map(|a| a.as_slice()).collect();

        let (_, sequential_ns) = world.measure(|w| {
            for a in &arg_refs {
                w.call(client, "incr", a).unwrap();
            }
        });
        let (batched, batched_ns) =
            world.measure(|w| w.call_batch(client, "incr", &arg_refs).unwrap());
        assert_eq!(batched.len(), 32);
        for (i, result) in batched.into_iter().enumerate() {
            let bytes = result.expect("batched incr succeeds");
            assert_eq!(u64::from_le_bytes(bytes.try_into().unwrap()), i as u64 + 1);
        }
        assert!(
            batched_ns < sequential_ns,
            "batched {batched_ns} ns not cheaper than sequential {sequential_ns} ns"
        );
        // Unknown symbols and missing sessions fail the whole batch, like
        // `call`.
        assert!(world.call_batch(client, "nope", &arg_refs).is_err());
    }

    #[test]
    fn call_sweep_matches_per_client_batches_at_lower_cost() {
        // Three connected clients, one batch each: the sweep answers
        // exactly what per-client batched drains answer, in order, and
        // costs less on the simulated clock (one trap instead of three).
        let mut world = SimWorld::new();
        world.install(&demo_module()).unwrap();
        let clients: Vec<Pid> = (0..3)
            .map(|i| {
                let c = world
                    .spawn_client(
                        &format!("app{i}"),
                        Credential::user(1000, 100).with_smod_credential("libdemo", KEY),
                    )
                    .unwrap();
                world.connect(c, "libdemo", 0).unwrap();
                c
            })
            .collect();
        let args: Vec<Vec<u8>> = (0..16u64).map(|i| i.to_le_bytes().to_vec()).collect();
        let arg_refs: Vec<&[u8]> = args.iter().map(|a| a.as_slice()).collect();

        let (_, batched_ns) = world.measure(|w| {
            for &c in &clients {
                w.call_batch(c, "incr", &arg_refs).unwrap();
            }
        });
        let batches: Vec<(Pid, &str, &[&[u8]])> = clients
            .iter()
            .map(|&c| (c, "incr", arg_refs.as_slice()))
            .collect();
        let (swept, sweep_ns) = world.measure(|w| w.call_sweep(&batches).unwrap());
        assert_eq!(swept.len(), 3);
        for per_client in swept {
            assert_eq!(per_client.len(), 16);
            for (i, result) in per_client.into_iter().enumerate() {
                let bytes = result.expect("swept incr succeeds");
                assert_eq!(u64::from_le_bytes(bytes.try_into().unwrap()), i as u64 + 1);
            }
        }
        assert!(
            sweep_ns < batched_ns,
            "sweep {sweep_ns} ns not cheaper than per-client batches {batched_ns} ns"
        );
        // Input validation mirrors call_batch.
        assert!(world
            .call_sweep(&[(clients[0], "nope", arg_refs.as_slice())])
            .is_err());
    }

    #[test]
    fn simulated_time_advances_per_call() {
        let (world, client) = connected_world();
        let (_, smod_ns) = world.measure(|w| w.call(client, "incr", &1u64.to_le_bytes()).unwrap());
        let (_, getpid_ns) = world.measure(|w| w.native_getpid(client).unwrap());
        assert!(smod_ns > getpid_ns);
        let ratio = smod_ns as f64 / getpid_ns as f64;
        assert!(ratio > 5.0, "smod/getpid ratio {ratio}");
    }
}
