//! Local shim standing in for the real `bytes` crate so the workspace
//! builds without network access to crates.io.
//!
//! Provides `BytesMut` plus the `Buf`/`BufMut` trait methods the XDR
//! codec uses: big-endian integer put/get, slice append, and front-of-
//! buffer consumption. Backed by a `Vec<u8>` with a read cursor instead of
//! the real crate's refcounted buffer — fine for the codec, which never
//! splits or shares buffers.

/// Read-side trait mirroring `bytes::Buf` (the used subset).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Consume and return the next byte.
    fn get_u8(&mut self) -> u8;
    /// Consume a big-endian u32.
    fn get_u32(&mut self) -> u32;
    /// Consume a big-endian i32.
    fn get_i32(&mut self) -> i32;
    /// Consume a big-endian u64.
    fn get_u64(&mut self) -> u64;
    /// Consume a big-endian i64.
    fn get_i64(&mut self) -> i64;
    /// Consume `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

/// Write-side trait mirroring `bytes::BufMut` (the used subset).
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32);
    /// Append a big-endian i32.
    fn put_i32(&mut self, v: i32);
    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64);
    /// Append a big-endian i64.
    fn put_i64(&mut self, v: i64);
    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// Growable byte buffer with a consuming read cursor.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    head: usize,
}

impl BytesMut {
    /// Create an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    /// Is everything consumed?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy the unconsumed bytes out.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.head..].to_vec()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(
            self.len() >= n,
            "BytesMut underflow: need {n}, have {}",
            self.len()
        );
        let start = self.head;
        self.head += n;
        &self.data[start..self.head]
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut {
            data: src.to_vec(),
            head: 0,
        }
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take(4).try_into().unwrap())
    }

    fn get_i32(&mut self) -> i32 {
        i32::from_be_bytes(self.take(4).try_into().unwrap())
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take(8).try_into().unwrap())
    }

    fn get_i64(&mut self) -> i64 {
        i64::from_be_bytes(self.take(8).try_into().unwrap())
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let n = dst.len();
        dst.copy_from_slice(self.take(n));
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_i32(&mut self, v: i32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_i64(&mut self, v: i64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_then_get_roundtrip() {
        let mut b = BytesMut::new();
        b.put_u32(0x0102_0304);
        b.put_u8(9);
        b.put_slice(&[1, 2]);
        assert_eq!(b.len(), 7);
        assert_eq!(b.get_u32(), 0x0102_0304);
        assert_eq!(b.get_u8(), 9);
        let mut two = [0u8; 2];
        b.copy_to_slice(&mut two);
        assert_eq!(two, [1, 2]);
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        BytesMut::from(&[1u8][..]).get_u32();
    }
}
