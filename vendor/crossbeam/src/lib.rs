//! Local shim standing in for the real `crossbeam` crate so the workspace
//! builds without network access to crates.io.
//!
//! Only `crossbeam::channel::{bounded, Sender, Receiver}` is used (the
//! native backend's rendezvous request/reply pair), so that is all the shim
//! provides, backed by `std::sync::mpsc::sync_channel`. Unlike crossbeam's
//! MPMC receiver, this one is single-consumer — sufficient for the
//! one-handle-thread-per-session design.

pub mod channel {
    //! Bounded channels with crossbeam's `channel` module interface.

    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone;
    /// carries the unsent message like crossbeam's.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending half of a bounded channel. Cloneable, as in crossbeam.
    #[derive(Clone)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Create a bounded channel; capacity 0 gives a rendezvous channel
    /// where each send blocks until a receiver is ready.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Block until the message is delivered or the channel disconnects.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive; `None` when the channel is empty or
        /// disconnected.
        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn rendezvous_roundtrip() {
            let (tx, rx) = bounded::<u32>(0);
            let t = std::thread::spawn(move || tx.send(7));
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(t.join().unwrap(), Ok(()));
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
