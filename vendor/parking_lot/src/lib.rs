//! Local shim standing in for the real `parking_lot` crate so the workspace
//! builds without network access to crates.io.
//!
//! Provides `Mutex` and `RwLock` with parking_lot's non-poisoning API
//! (`lock()`/`read()`/`write()` return guards directly, no `Result`),
//! implemented over `std::sync`. A poisoned std lock is recovered rather
//! than propagated, matching parking_lot's behaviour of ignoring panics in
//! other critical sections. Swap in upstream parking_lot if contended-path
//! performance ever becomes the bottleneck being measured.

use std::sync;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Access the protected value through an exclusive reference.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Access the protected value through an exclusive reference.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
