//! Derive-macro half of the local `serde` shim.
//!
//! The workspace builds offline, so instead of the real `serde_derive` this
//! crate provides `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros
//! that emit empty marker-trait impls. The workspace only uses the derives
//! as type annotations; nothing serializes at runtime yet. If a future PR
//! needs real serialization, replace `vendor/serde*` with the upstream
//! crates and delete this shim.

use proc_macro::{TokenStream, TokenTree};

/// Extract the type name following the `struct`/`enum`/`union` keyword.
///
/// Derive input has outer attributes stripped, so scanning top-level tokens
/// is sufficient for the non-generic types this workspace derives on.
fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde_derive shim: could not find type name in derive input");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .unwrap()
}
