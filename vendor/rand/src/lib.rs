//! Local shim standing in for the real `rand` crate so the workspace builds
//! without network access to crates.io.
//!
//! Two API subsets are implemented:
//!
//! * `rand::rngs::OsRng.fill_bytes` — entropy for
//!   `HashDrbg::from_entropy`, read from `/dev/urandom` with a
//!   SplitMix64-over-clock/pid fallback for stripped-down sandboxes.
//! * `rand::rngs::SmallRng` + `rand::SeedableRng::seed_from_u64` + the
//!   `rand::Rng` extension (`gen_range`/`gen_bool`) — the deterministic
//!   generator `secmod_gate`'s scenario engine seeds per worker thread.
//!
//! All other deterministic randomness in the tree comes from
//! `secmod_crypto::rng`, not from here. Swap in upstream rand (+rand_core)
//! for the full strategy/distribution surface.

use std::io::Read;

/// Minimal mirror of `rand_core::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Minimal mirror of `rand_core::SeedableRng`: only the `seed_from_u64`
/// constructor the workspace uses.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed; the same seed always yields
    /// the same stream.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Minimal mirror of the `rand::Rng` extension trait: uniform draws from a
/// half-open `u64` range and Bernoulli draws.
pub trait Rng: RngCore {
    /// Uniform draw from `[range.start, range.end)`; panics on an empty
    /// range like upstream.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = range.end - range.start;
        // Multiply-shift rejection-free mapping; bias is < 2^-64 * span,
        // irrelevant for workload generation.
        let wide = (self.next_u64() as u128).wrapping_mul(span as u128);
        range.start + (wide >> 64) as u64
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        let threshold = (p.clamp(0.0, 1.0) * u64::MAX as f64) as u64;
        self.next_u64() <= threshold
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    //! Entropy-backed generators, mirroring `rand::rngs`.

    use super::*;

    /// Operating-system entropy source (`/dev/urandom`).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct OsRng;

    fn fallback_fill(dest: &mut [u8]) {
        // SplitMix64 over a clock/pid seed: not cryptographic, but this
        // path only runs when /dev/urandom itself is missing.
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let mut state = now ^ ((std::process::id() as u64) << 32);
        for chunk in dest.chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    impl RngCore for OsRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let mut buf = [0u8; 8];
            self.fill_bytes(&mut buf);
            u64::from_le_bytes(buf)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            match std::fs::File::open("/dev/urandom").and_then(|mut f| f.read_exact(dest)) {
                Ok(()) => {}
                Err(_) => fallback_fill(dest),
            }
        }
    }

    /// A small, fast, deterministic generator (SplitMix64 core). Upstream's
    /// `SmallRng` is xoshiro-based; the statistical contract the workspace
    /// relies on — a reproducible, well-mixed stream per seed — is the same.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix so small consecutive seeds diverge immediately.
            SmallRng {
                state: seed ^ 0x5851_f42d_4c95_7f2d,
            }
        }
    }

    impl crate::RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::{Rng, SeedableRng};

        #[test]
        fn os_rng_fills() {
            let mut a = [0u8; 32];
            let mut b = [0u8; 32];
            OsRng.fill_bytes(&mut a);
            OsRng.fill_bytes(&mut b);
            assert_ne!(a, b, "two 256-bit draws should never collide");
        }

        #[test]
        fn small_rng_is_deterministic_per_seed() {
            let mut a = SmallRng::seed_from_u64(42);
            let mut b = SmallRng::seed_from_u64(42);
            let mut c = SmallRng::seed_from_u64(43);
            let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
            let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
            let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
            assert_eq!(xs, ys);
            assert_ne!(xs, zs);
        }

        #[test]
        fn gen_range_and_gen_bool_respect_bounds() {
            let mut rng = SmallRng::seed_from_u64(7);
            for _ in 0..1000 {
                let v = rng.gen_range(10..20);
                assert!((10..20).contains(&v));
            }
            assert!(rng.gen_bool(1.0));
            let heads = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
            assert!((300..700).contains(&heads), "suspicious coin: {heads}");
        }
    }
}
