//! Local shim standing in for the real `rand` crate so the workspace builds
//! without network access to crates.io.
//!
//! The workspace touches `rand` in exactly one place: seeding
//! `HashDrbg::from_entropy` via `rand::rngs::OsRng.fill_bytes`. This shim
//! reads `/dev/urandom` for that, falling back to a SplitMix64 stream
//! seeded from the clock and pid if the device is unavailable (e.g. in a
//! stripped-down sandbox). All deterministic randomness in the tree comes
//! from `secmod_crypto::rng`, not from here.

use std::io::Read;

/// Minimal mirror of `rand_core::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

pub mod rngs {
    //! Entropy-backed generators, mirroring `rand::rngs`.

    use super::*;

    /// Operating-system entropy source (`/dev/urandom`).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct OsRng;

    fn fallback_fill(dest: &mut [u8]) {
        // SplitMix64 over a clock/pid seed: not cryptographic, but this
        // path only runs when /dev/urandom itself is missing.
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let mut state = now ^ ((std::process::id() as u64) << 32);
        for chunk in dest.chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    impl RngCore for OsRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let mut buf = [0u8; 8];
            self.fill_bytes(&mut buf);
            u64::from_le_bytes(buf)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            match std::fs::File::open("/dev/urandom").and_then(|mut f| f.read_exact(dest)) {
                Ok(()) => {}
                Err(_) => fallback_fill(dest),
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn os_rng_fills() {
            let mut a = [0u8; 32];
            let mut b = [0u8; 32];
            OsRng.fill_bytes(&mut a);
            OsRng.fill_bytes(&mut b);
            assert_ne!(a, b, "two 256-bit draws should never collide");
        }
    }
}
