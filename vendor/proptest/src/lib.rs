//! Local shim standing in for the real `proptest` crate so the workspace's
//! property tests run without network access to crates.io.
//!
//! Implements the subset the workspace uses: the `proptest!` macro (with
//! optional `#![proptest_config(...)]`), integer range strategies,
//! `num::*::ANY`, `bool::ANY`, `collection::vec`, `array::uniform{4,8,16,32}`,
//! a small `[class]{m,n}`-style string-regex strategy, and the
//! `prop_assert*` macros. Sampling is deterministic per test name
//! (SplitMix64) and there is **no shrinking** — a failure prints the
//! asserted values but not a minimised case. Swap in upstream proptest for
//! real shrinking when the environment can fetch crates.

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name so each property test gets a stable but
    /// distinct stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u128) -> u128 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % n
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The produced value type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                (lo + rng.below((hi - lo + 1) as u128) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

pub mod num {
    //! Full-width integer strategies, mirroring `proptest::num`.

    macro_rules! num_mods {
        ($($m:ident),* $(,)?) => {$(
            pub mod $m {
                //! `ANY` strategy for the primitive of the same name.

                /// Strategy yielding any value of the type.
                #[derive(Clone, Copy, Debug)]
                pub struct Any;

                /// Any value, uniformly over the whole domain.
                pub const ANY: Any = Any;

                impl crate::Strategy for Any {
                    type Value = $m;
                    fn sample(&self, rng: &mut crate::TestRng) -> $m {
                        rng.next_u64() as $m
                    }
                }
            }
        )*};
    }

    num_mods!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod bool {
    //! Boolean strategy, mirroring `proptest::bool`.

    /// Strategy yielding either boolean.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Fair coin.
    pub const ANY: Any = Any;

    impl crate::Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut crate::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use super::{Strategy, TestRng};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with sizes drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Vectors of values from `elem`, sized within `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u128) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies, mirroring `proptest::array`.

    use super::{Strategy, TestRng};

    /// Strategy producing `[S::Value; N]` with each element from `S`.
    #[derive(Debug, Clone)]
    pub struct UniformArrayStrategy<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
        type Value = [S::Value; N];
        fn sample(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.0.sample(rng))
        }
    }

    macro_rules! uniform_fns {
        ($($name:ident => $n:literal),* $(,)?) => {$(
            /// Array of the given arity, each element drawn from `s`.
            pub fn $name<S: Strategy>(s: S) -> UniformArrayStrategy<S, $n> {
                UniformArrayStrategy(s)
            }
        )*};
    }

    uniform_fns!(uniform4 => 4, uniform8 => 8, uniform16 => 16, uniform32 => 32);
}

// String strategies from a tiny regex subset: sequences of literal chars or
// `[...]` classes, each optionally repeated `{m}`/`{m,n}`. Covers patterns
// like "[a-zA-Z0-9 ]{0,64}".
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = self.chars().peekable();
        while let Some(c) = chars.next() {
            let class: Vec<char> = match c {
                '[' => {
                    let mut body = Vec::new();
                    loop {
                        match chars.next() {
                            None => panic!("proptest shim: unterminated [ in regex {self:?}"),
                            Some(']') => break,
                            Some(lo) => {
                                if chars.peek() == Some(&'-') {
                                    chars.next();
                                    let hi = chars.next().unwrap_or_else(|| {
                                        panic!("proptest shim: dangling - in regex {self:?}")
                                    });
                                    body.extend(lo..=hi);
                                } else {
                                    body.push(lo);
                                }
                            }
                        }
                    }
                    body
                }
                c => vec![c],
            };
            let (lo, hi) = if chars.peek() == Some(&'{') {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad {m,n} in regex"),
                        n.trim().parse().expect("bad {m,n} in regex"),
                    ),
                    None => {
                        let n: usize = spec.trim().parse().expect("bad {m} in regex");
                        (n, n)
                    }
                }
            } else {
                (1usize, 1usize)
            };
            let count = lo + rng.below((hi - lo + 1) as u128) as usize;
            for _ in 0..count {
                out.push(class[rng.below(class.len() as u128) as usize]);
            }
        }
        out
    }
}

/// Per-test configuration, mirroring `proptest::prelude::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.
    pub use crate::{ProptestConfig, Strategy};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test running the body over `config.cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr) $($(#[$meta:meta])* fn $name:ident ($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// `assert!` under proptest's name (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under proptest's name (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under proptest's name (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (10u8..=20).sample(&mut rng);
            assert!((10..=20).contains(&v));
            let w = (-8i64..8).sample(&mut rng);
            assert!((-8..8).contains(&w));
            let x = (0u64..1u64 << 40).sample(&mut rng);
            assert!(x < 1 << 40);
        }
    }

    #[test]
    fn vec_sizes_respect_bounds() {
        let mut rng = TestRng::from_name("vecs");
        for _ in 0..200 {
            let v = collection::vec(0u8..=255, 3..7).sample(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
        let exact = collection::vec(0u8..=255, 16).sample(&mut rng);
        assert_eq!(exact.len(), 16);
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::from_name("regex");
        for _ in 0..200 {
            let s = "[a-zA-Z0-9 ]{0,64}".sample(&mut rng);
            assert!(s.len() <= 64);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == ' '));
        }
        assert_eq!("abc".sample(&mut rng), "abc");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn the_macro_itself_works(a in 0u32..100, b in 0u32..100) {
            prop_assert_eq!(a + b, b + a);
            prop_assert!(a < 100 && b < 100);
        }
    }
}
