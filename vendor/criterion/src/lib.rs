//! Local shim standing in for the real `criterion` crate so the workspace
//! builds (and benches run) without network access to crates.io.
//!
//! Implements the subset of criterion's API the `secmod_bench` suite uses —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `Throughput`,
//! `black_box`, `Bencher::iter` — over a simple warmup-then-measure timing
//! loop. No plots or baselines: each benchmark prints one
//! `group/name  time: <mean> ns/iter  p50: <..>  p99: <..>` line, where the
//! quantiles are taken over the per-batch mean ns/iter samples — a
//! wall-clock tail proxy (scheduler stalls, lock convoys) that the
//! `bench_trajectory.sh` p99 gate watches across PRs. Measurement budget
//! per benchmark is `SECMOD_BENCH_MS` milliseconds (default 60; CI smoke
//! sets it low). Replace with upstream criterion when the environment can
//! fetch crates.
//!
//! `cargo bench` invokes each bench binary with libtest-style arguments
//! (`--bench`, filters); the harness accepts a single optional substring
//! filter and ignores flags.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the std black-box, criterion's modern implementation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn measure_ms() -> u64 {
    std::env::var("SECMOD_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60)
}

/// Identifier for a parameterised benchmark, `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combine a function name and a displayable parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation; reported as MiB/s or Melem/s next to the time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handed to each benchmark closure.
#[derive(Default)]
pub struct Bencher {
    ns_per_iter: f64,
    p50_ns: f64,
    p99_ns: f64,
}

/// Quantile of an ascending-sorted sample set (nearest-rank, the same
/// convention `secmod_obs` uses): the smallest sample whose rank covers
/// `q` of the population.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl Bencher {
    /// Run `f` repeatedly: a short warmup, then timed batches until the
    /// measurement budget is spent. Each batch's mean ns/iter is one
    /// sample of the wall-clock latency distribution; `p50`/`p99` come
    /// from those samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warmup = Duration::from_millis(measure_ms().div_ceil(4));
        let budget = Duration::from_millis(measure_ms());

        // Warmup while estimating the per-iteration cost.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < warmup {
            black_box(f());
            warm_iters += 1;
        }
        let est_ns = (warmup.as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);

        // Measure in batches sized to ~1/32 of the budget each: small
        // enough for ~32 tail samples per run, large enough that the
        // timer calls between batches stay negligible.
        let batch = ((budget.as_nanos() as f64 / 32.0 / est_ns) as u64).max(1);
        let mut total_iters: u64 = 0;
        let mut total_ns: u128 = 0;
        let mut samples: Vec<f64> = Vec::with_capacity(64);
        let deadline = Instant::now() + budget;
        while Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t0.elapsed().as_nanos();
            total_ns += elapsed;
            total_iters += batch;
            samples.push(elapsed as f64 / batch as f64);
        }
        self.ns_per_iter = total_ns as f64 / total_iters.max(1) as f64;
        samples.sort_by(f64::total_cmp);
        self.p50_ns = quantile(&samples, 0.50);
        self.p99_ns = quantile(&samples, 0.99);
    }
}

fn report(group: &str, id: &str, b: &Bencher, throughput: Option<Throughput>) {
    let ns_per_iter = b.ns_per_iter;
    let rate = match throughput {
        Some(Throughput::Bytes(by)) => {
            let mib_s = by as f64 / (ns_per_iter / 1e9) / (1024.0 * 1024.0);
            format!("  thrpt: {mib_s:10.1} MiB/s")
        }
        Some(Throughput::Elements(n)) => {
            let melem_s = n as f64 / (ns_per_iter / 1e9) / 1e6;
            format!("  thrpt: {melem_s:10.2} Melem/s")
        }
        None => String::new(),
    };
    let name = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    // `time:` + `ns/iter` are the tokens bench_trajectory.sh keys on;
    // the quantile fields ride behind them under their own tokens.
    println!(
        "{name:<48} time: {ns_per_iter:12.1} ns/iter  p50: {:12.1}  p99: {:12.1}{rate}",
        b.p50_ns, b.p99_ns
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Criterion-compat no-op: the shim sizes batches by wall-clock budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark `f` under `id` within this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        if self.criterion.matches(&full) {
            let mut b = Bencher::default();
            f(&mut b);
            report(&self.name, &id.id, &b, self.throughput);
        }
        self
    }

    /// Benchmark `f` with a borrowed input value.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (criterion-compat; reporting already happened).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Build a driver configured from the command line (`cargo bench`
    /// passes libtest-style flags; the first non-flag argument is treated
    /// as a substring filter).
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }

    fn matches(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(f) => full_name.contains(f.as_str()),
            None => true,
        }
    }

    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    /// Benchmark a standalone function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if self.matches(id) {
            let mut b = Bencher::default();
            f(&mut b);
            report("", id, &b, None);
        }
        self
    }
}

/// Define a benchmark group function from a list of `fn(&mut Criterion)`
/// targets, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the given benchmark groups, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("SECMOD_BENCH_MS", "4");
        let mut b = Bencher::default();
        b.iter(|| black_box(1u64 + 1));
        assert!(b.ns_per_iter > 0.0);
        // The per-batch samples give an ordered quantile pair.
        assert!(b.p50_ns > 0.0 && b.p99_ns >= b.p50_ns);
    }

    #[test]
    fn quantile_is_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&sorted, 0.50), 3.0);
        assert_eq!(quantile(&sorted, 0.99), 5.0);
        assert_eq!(quantile(&sorted, 0.0), 1.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("encrypt", 4096);
        assert_eq!(id.id, "encrypt/4096");
    }
}
