//! Minimal CPU-affinity shim: pin the calling thread to one core.
//!
//! The dispatch plane's wall-clock sweep scaling lags its simulated
//! scaling chiefly because drainer threads migrate between cores,
//! dragging their ring and arena cache lines with them. Pinning each
//! drainer fixes the working set to one L1/L2. The real `libc` crate is
//! not available offline, so this shim declares the two raw syscall
//! wrappers itself — `std` already links the platform libc, so the
//! symbols resolve without any new dependency.
//!
//! Non-Linux platforms compile to a no-op that reports
//! [`Error::Unsupported`]; callers treat pinning as best-effort.

#![warn(missing_docs)]

/// Why a pinning call failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Error {
    /// The kernel refused the mask (raw errno as reported by libc).
    Os(i32),
    /// The platform has no `sched_setaffinity` (non-Linux build).
    Unsupported,
    /// The requested CPU index does not fit the mask this shim carries.
    CpuOutOfRange,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Os(errno) => write!(f, "sched_setaffinity failed (errno {errno})"),
            Error::Unsupported => write!(f, "CPU affinity unsupported on this platform"),
            Error::CpuOutOfRange => write!(f, "CPU index beyond the affinity mask"),
        }
    }
}

impl std::error::Error for Error {}

/// CPUs representable in the shim's fixed-size mask (1024, the kernel's
/// historical `CPU_SETSIZE`).
pub const MAX_CPUS: usize = 1024;

/// A CPU set in `cpu_set_t` layout: 1024 bits of `u64` words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(C)]
pub struct CpuSet {
    bits: [u64; MAX_CPUS / 64],
}

impl Default for CpuSet {
    fn default() -> Self {
        CpuSet::empty()
    }
}

impl CpuSet {
    /// The empty set.
    pub const fn empty() -> CpuSet {
        CpuSet {
            bits: [0; MAX_CPUS / 64],
        }
    }

    /// A set holding exactly `cpu`.
    pub fn single(cpu: usize) -> Result<CpuSet, Error> {
        let mut set = CpuSet::empty();
        set.add(cpu)?;
        Ok(set)
    }

    /// Add `cpu` to the set.
    pub fn add(&mut self, cpu: usize) -> Result<(), Error> {
        if cpu >= MAX_CPUS {
            return Err(Error::CpuOutOfRange);
        }
        self.bits[cpu / 64] |= 1u64 << (cpu % 64);
        Ok(())
    }

    /// Is `cpu` in the set?
    pub fn contains(&self, cpu: usize) -> bool {
        cpu < MAX_CPUS && self.bits[cpu / 64] & (1u64 << (cpu % 64)) != 0
    }

    /// Number of CPUs in the set.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{CpuSet, Error};

    // `std` already links libc; declaring the two prototypes here avoids
    // pulling in the (unavailable offline) `libc` crate. pid 0 means
    // "the calling thread" for both calls.
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const CpuSet) -> i32;
        fn sched_getaffinity(pid: i32, cpusetsize: usize, mask: *mut CpuSet) -> i32;
    }

    #[allow(unsafe_code)]
    pub fn set(mask: &CpuSet) -> Result<(), Error> {
        // SAFETY: the mask is a valid `repr(C)` cpu_set_t-shaped value of
        // exactly the size we pass; pid 0 targets the calling thread.
        let rc = unsafe { sched_setaffinity(0, std::mem::size_of::<CpuSet>(), mask) };
        if rc == 0 {
            Ok(())
        } else {
            Err(Error::Os(
                std::io::Error::last_os_error().raw_os_error().unwrap_or(-1),
            ))
        }
    }

    #[allow(unsafe_code)]
    pub fn get() -> Result<CpuSet, Error> {
        let mut mask = CpuSet::empty();
        // SAFETY: `mask` is valid writable memory of the size we pass.
        let rc = unsafe { sched_getaffinity(0, std::mem::size_of::<CpuSet>(), &mut mask) };
        if rc == 0 {
            Ok(mask)
        } else {
            Err(Error::Os(
                std::io::Error::last_os_error().raw_os_error().unwrap_or(-1),
            ))
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::{CpuSet, Error};

    pub fn set(_mask: &CpuSet) -> Result<(), Error> {
        Err(Error::Unsupported)
    }

    pub fn get() -> Result<CpuSet, Error> {
        Err(Error::Unsupported)
    }
}

/// Restrict the calling thread to the CPUs in `mask`.
pub fn set_thread_affinity(mask: &CpuSet) -> Result<(), Error> {
    sys::set(mask)
}

/// The calling thread's current affinity mask.
pub fn get_thread_affinity() -> Result<CpuSet, Error> {
    sys::get()
}

/// Pin the calling thread to a single core. Best-effort sugar over
/// [`set_thread_affinity`]; callers that treat pinning as an
/// optimisation (the dispatch plane) ignore the error.
pub fn pin_to_core(cpu: usize) -> Result<(), Error> {
    set_thread_affinity(&CpuSet::single(cpu)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_set_bit_arithmetic() {
        let mut set = CpuSet::empty();
        assert_eq!(set.count(), 0);
        set.add(0).unwrap();
        set.add(63).unwrap();
        set.add(64).unwrap();
        set.add(1023).unwrap();
        assert_eq!(set.count(), 4);
        assert!(set.contains(63) && set.contains(64) && set.contains(1023));
        assert!(!set.contains(1));
        assert_eq!(set.add(1024).unwrap_err(), Error::CpuOutOfRange);
        assert!(!set.contains(20000));
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn pin_round_trips_and_restores_the_original_mask() {
        let original = get_thread_affinity().expect("read affinity");
        assert!(original.count() >= 1);
        // Pin to the first CPU the thread may already run on.
        let cpu = (0..MAX_CPUS)
            .find(|c| original.contains(*c))
            .expect("at least one allowed CPU");
        pin_to_core(cpu).expect("pin");
        let pinned = get_thread_affinity().expect("read pinned");
        assert_eq!(pinned.count(), 1);
        assert!(pinned.contains(cpu));
        // Restore so the test does not constrain the rest of the harness.
        set_thread_affinity(&original).expect("restore");
        assert_eq!(get_thread_affinity().unwrap(), original);
    }

    #[test]
    #[cfg(not(target_os = "linux"))]
    fn non_linux_reports_unsupported() {
        assert_eq!(pin_to_core(0).unwrap_err(), Error::Unsupported);
        assert_eq!(get_thread_affinity().unwrap_err(), Error::Unsupported);
    }
}
