//! Local shim standing in for the real `serde` crate so the workspace
//! builds without network access to crates.io.
//!
//! The workspace currently uses serde only as `#[derive(Serialize,
//! Deserialize)]` annotations marking which types are intended to be
//! wire/disk-stable; no code path serializes yet. These marker traits (and
//! the derives re-exported from the sibling `serde_derive` shim) keep those
//! annotations compiling. Swap in upstream serde when real serialization
//! lands.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (lifetime elided — nothing
/// in the workspace names the `'de` parameter).
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};
