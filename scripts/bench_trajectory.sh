#!/usr/bin/env bash
# Capture one bench-trajectory point: run the bench-smoke set and extract
# every criterion `ns/iter` line into a JSON file, so per-PR performance
# history accumulates instead of evaporating (ROADMAP open item).
#
# Usage: scripts/bench_trajectory.sh [OUT_JSON] [LABEL] [--compare BASELINE_JSON] [--threshold PCT]
#   OUT_JSON    where to write the point (default: target/bench_trajectory.json,
#               untracked — pass BENCH_PR<N>.json explicitly when recording the
#               committed per-PR point, so casual runs never clobber a baseline)
#   LABEL       free-text tag for the point (default: $BENCH_LABEL or "local")
#   --compare   after capturing, compare the hot-path benches against the
#               given committed baseline point and FAIL (exit 1) when any of
#               them regressed more than the threshold. The hot set:
#               fig8_dispatch/* (incl. the shm rpc row; the socket rpc row
#               is excluded), arg_marshalling/*, gate/cached_hot,
#               ring_throughput/*, sweep_throughput/*, async_throughput/*.
#   --threshold regression threshold in percent (default: $BENCH_REGRESSION_PCT
#               or 25 — generous because the CI smoke budget is tiny and noisy)
#
# Honors SECMOD_BENCH_MS (per-benchmark measurement budget, default 2 —
# the CI smoke budget; raise it locally for less noisy points).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="target/bench_trajectory.json"
LABEL="${BENCH_LABEL:-local}"
BASELINE=""
THRESHOLD="${BENCH_REGRESSION_PCT:-25}"
BUDGET="${SECMOD_BENCH_MS:-2}"

positional=0
while [ $# -gt 0 ]; do
    case "$1" in
        --compare)
            BASELINE="$2"; shift 2 ;;
        --threshold)
            THRESHOLD="$2"; shift 2 ;;
        *)
            positional=$((positional + 1))
            case "$positional" in
                1) OUT="$1" ;;
                2) LABEL="$1" ;;
                *) echo "bench_trajectory: unexpected argument $1" >&2; exit 2 ;;
            esac
            shift ;;
    esac
done

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT
SECMOD_BENCH_MS="$BUDGET" cargo bench --workspace | tee "$RAW"

{
    printf '{\n'
    printf '  "label": "%s",\n' "$LABEL"
    printf '  "bench_ms": %s,\n' "$BUDGET"
    printf '  "benches": [\n'
    awk '/time:/ && /ns\/iter/ {
        t = ""
        for (i = 1; i <= NF; i++) if ($i == "time:") t = $(i + 1)
        if (t == "") next
        if (n++) printf ",\n"
        printf "    {\"name\": \"%s\", \"ns_per_iter\": %s}", $1, t
    } END { if (n) printf "\n" }' "$RAW"
    printf '  ]\n'
    printf '}\n'
} > "$OUT"

COUNT="$(grep -c ns_per_iter "$OUT" || true)"
echo "bench_trajectory: wrote $COUNT benches to $OUT (label=$LABEL, ${BUDGET}ms budget)"
test "$COUNT" -gt 0 || { echo "bench_trajectory: no ns/iter lines captured" >&2; exit 1; }

# ---- perf regression gate -------------------------------------------------
if [ -n "$BASELINE" ]; then
    test -f "$BASELINE" || { echo "bench_trajectory: baseline $BASELINE not found" >&2; exit 1; }
    echo "bench_trajectory: comparing hot-path benches against $BASELINE (threshold ${THRESHOLD}%)"
    # Extract "name ns" pairs from a trajectory JSON (one entry per line as
    # written above — this parser owns both sides of the format).
    extract() {
        sed -n 's/.*"name": "\([^"]*\)", "ns_per_iter": \([0-9.]*\).*/\1 \2/p' "$1"
    }
    # Re-measure one bench (substring filter) and print its ns/iter.
    remeasure() {
        SECMOD_BENCH_MS="$BUDGET" cargo bench --workspace -- "$1" 2>/dev/null \
            | awk -v n="$1" '$1 == n && /ns\/iter/ {
                  for (i = 1; i <= NF; i++) if ($i == "time:") print $(i + 1)
              }' | head -1
    }
    extract "$BASELINE" > "$RAW.base"
    extract "$OUT" > "$RAW.new"
    FAIL=0
    while read -r name base_ns; do
        case "$name" in
            # rpc_testincr round-trips a real Unix socket: it measures the
            # host's socket stack, not this tree, and is far too
            # load-sensitive to gate on.
            fig8_dispatch/rpc_testincr) continue ;;
            fig8_dispatch/*|arg_marshalling/*|gate/cached_hot|ring_throughput/*|sweep_throughput/*|async_throughput/*) ;;
            *) continue ;;
        esac
        new_ns="$(awk -v n="$name" '$1 == n { print $2 }' "$RAW.new")"
        if [ -z "$new_ns" ]; then
            echo "  MISSING  $name (present in baseline, absent in this run)"
            FAIL=1
            continue
        fi
        over() {
            awk -v b="$base_ns" -v c="$1" -v t="$THRESHOLD" \
                'BEGIN { exit ((c - b) / b * 100.0 > t) ? 0 : 1 }'
        }
        # CPU-steal noise on small benches is one-sided (only ever slower),
        # so a flagged bench is re-measured up to twice and the minimum
        # observation is what gets judged.
        retries=0
        while over "$new_ns" && [ "$retries" -lt 2 ]; do
            retries=$((retries + 1))
            echo "  retry    $name: ${new_ns} ns vs ${base_ns} ns baseline (attempt $retries)"
            again="$(remeasure "$name")"
            if [ -n "$again" ]; then
                new_ns="$(awk -v a="$new_ns" -v b="$again" 'BEGIN { print (b < a) ? b : a }')"
            fi
        done
        verdict="$(awk -v b="$base_ns" -v c="$new_ns" -v t="$THRESHOLD" 'BEGIN {
            pct = (c - b) / b * 100.0
            printf "%+.1f%% (%.1f -> %.1f ns)", pct, b, c
            exit (pct > t) ? 1 : 0
        }')" || { echo "  REGRESSED $name: $verdict"; FAIL=1; continue; }
        echo "  ok       $name: $verdict"
    done < "$RAW.base"
    rm -f "$RAW.base" "$RAW.new"
    if [ "$FAIL" -ne 0 ]; then
        echo "bench_trajectory: hot-path regression beyond ${THRESHOLD}% vs $BASELINE" >&2
        exit 1
    fi
    echo "bench_trajectory: no hot-path regression beyond ${THRESHOLD}%"
fi
