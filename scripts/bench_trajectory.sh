#!/usr/bin/env bash
# Capture one bench-trajectory point: run the bench-smoke set and extract
# every criterion `ns/iter` line (plus its wall-clock p50/p99 tail samples)
# into a JSON file, so per-PR performance history accumulates instead of
# evaporating (ROADMAP open item).
#
# Usage: scripts/bench_trajectory.sh [OUT_JSON] [LABEL] [--compare BASELINE_JSON]
#            [--threshold PCT] [--tail-threshold PCT]
#        scripts/bench_trajectory.sh --gate-only CURRENT_JSON BASELINE_JSON
#            [--threshold PCT] [--tail-threshold PCT]
#   OUT_JSON    where to write the point (default: target/bench_trajectory.json,
#               untracked — pass BENCH_PR<N>.json explicitly when recording the
#               committed per-PR point, so casual runs never clobber a baseline)
#   LABEL       free-text tag for the point (default: $BENCH_LABEL or "local")
#   --compare   after capturing, compare the hot-path benches against the
#               given committed baseline point and FAIL (exit 1) when any of
#               them regressed more than the threshold. The hot set:
#               fig8_dispatch/* (incl. the shm rpc row; the socket rpc row
#               is excluded), arg_marshalling/*, gate/cached_hot,
#               ring_throughput/*, sweep_throughput/*, async_throughput/*,
#               submit_path/*.
#               Benches present in the baseline but absent from this run are
#               warned and skipped (a bench renamed or retired must not brick
#               the gate) — but if NOTHING ends up compared the gate fails,
#               so a broken parser cannot pass vacuously.
#   --gate-only run only the comparison gates between two existing JSON
#               points — no benches are executed and no retries re-measure.
#               CI uses this to prove the tail gate actually fires on a
#               synthetically inflated p99.
#   --threshold mean-regression threshold in percent (default:
#               $BENCH_REGRESSION_PCT or 25 — generous because the CI smoke
#               budget is tiny and noisy)
#   --tail-threshold p99-regression threshold in percent (default:
#               $BENCH_TAIL_PCT or 60 — tails are far noisier than means,
#               so the gate only catches gross inflation, not jitter)
#
# Honors SECMOD_BENCH_MS (per-benchmark measurement budget, default 2 —
# the CI smoke budget; raise it locally for less noisy points).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="target/bench_trajectory.json"
LABEL="${BENCH_LABEL:-local}"
BASELINE=""
THRESHOLD="${BENCH_REGRESSION_PCT:-25}"
TAIL_THRESHOLD="${BENCH_TAIL_PCT:-60}"
GATE_ONLY=0

positional=0
while [ $# -gt 0 ]; do
    case "$1" in
        --compare)
            BASELINE="$2"; shift 2 ;;
        --threshold)
            THRESHOLD="$2"; shift 2 ;;
        --tail-threshold)
            TAIL_THRESHOLD="$2"; shift 2 ;;
        --gate-only)
            GATE_ONLY=1; shift ;;
        *)
            positional=$((positional + 1))
            case "$positional" in
                1) OUT="$1" ;;
                2) LABEL="$1" ;;
                *) echo "bench_trajectory: unexpected argument $1" >&2; exit 2 ;;
            esac
            shift ;;
    esac
done

RAW="$(mktemp)"
trap 'rm -f "$RAW" "$RAW.base" "$RAW.new" "$RAW.base_tail" "$RAW.new_tail"' EXIT

if [ "$GATE_ONLY" -eq 1 ]; then
    # --gate-only CURRENT BASELINE: positional 1 is the already-captured
    # point, positional 2 the baseline to judge it against.
    BASELINE="$LABEL"
    test -n "$BASELINE" || { echo "bench_trajectory: --gate-only needs CURRENT and BASELINE" >&2; exit 2; }
    test -f "$OUT" || { echo "bench_trajectory: current point $OUT not found" >&2; exit 1; }
else
    BUDGET="${SECMOD_BENCH_MS:-2}"
    SECMOD_BENCH_MS="$BUDGET" cargo bench --workspace | tee "$RAW"

    {
        printf '{\n'
        printf '  "label": "%s",\n' "$LABEL"
        printf '  "bench_ms": %s,\n' "$BUDGET"
        printf '  "benches": [\n'
        # One JSON object per bench line. The tail fields ride BEHIND
        # ns_per_iter so older tooling keyed on the name/ns prefix keeps
        # parsing points captured by this script.
        awk '/time:/ && /ns\/iter/ {
            t = ""; p50 = ""; p99 = ""
            for (i = 1; i <= NF; i++) {
                if ($i == "time:") t = $(i + 1)
                if ($i == "p50:") p50 = $(i + 1)
                if ($i == "p99:") p99 = $(i + 1)
            }
            if (t == "") next
            if (n++) printf ",\n"
            printf "    {\"name\": \"%s\", \"ns_per_iter\": %s", $1, t
            if (p50 != "" && p99 != "")
                printf ", \"p50_ns\": %s, \"p99_ns\": %s", p50, p99
            printf "}"
        } END { if (n) printf "\n" }' "$RAW"
        printf '  ]\n'
        printf '}\n'
    } > "$OUT"

    COUNT="$(grep -c ns_per_iter "$OUT" || true)"
    echo "bench_trajectory: wrote $COUNT benches to $OUT (label=$LABEL, ${BUDGET}ms budget)"
    test "$COUNT" -gt 0 || { echo "bench_trajectory: no ns/iter lines captured" >&2; exit 1; }
fi

# ---- perf regression gates ------------------------------------------------
# Two gates per hot-path bench: the mean (ns_per_iter, --threshold) and the
# wall-clock tail (p99_ns, --tail-threshold). The tail gate is skipped per
# bench when either side predates p99 capture.
if [ -n "$BASELINE" ]; then
    test -f "$BASELINE" || { echo "bench_trajectory: baseline $BASELINE not found" >&2; exit 1; }
    echo "bench_trajectory: comparing hot-path benches against $BASELINE (mean ${THRESHOLD}%, p99 ${TAIL_THRESHOLD}%)"
    # Extract "name ns" pairs from a trajectory JSON (one entry per line as
    # written above — this parser owns both sides of the format).
    extract() {
        sed -n 's/.*"name": "\([^"]*\)", "ns_per_iter": \([0-9.]*\).*/\1 \2/p' "$1"
    }
    extract_tail() {
        sed -n 's/.*"name": "\([^"]*\)".*"p99_ns": \([0-9.]*\).*/\1 \2/p' "$1"
    }
    # Re-measure one bench (substring filter) and print "<mean> <p99>"
    # (p99 may be empty under an older shim).
    remeasure() {
        SECMOD_BENCH_MS="${SECMOD_BENCH_MS:-2}" cargo bench --workspace -- "$1" 2>/dev/null \
            | awk -v n="$1" '$1 == n && /ns\/iter/ {
                  t = ""; p99 = ""
                  for (i = 1; i <= NF; i++) {
                      if ($i == "time:") t = $(i + 1)
                      if ($i == "p99:") p99 = $(i + 1)
                  }
                  print t, p99
              }' | head -1
    }
    extract "$BASELINE" > "$RAW.base"
    extract "$OUT" > "$RAW.new"
    extract_tail "$BASELINE" > "$RAW.base_tail"
    extract_tail "$OUT" > "$RAW.new_tail"
    FAIL=0
    COMPARED=0
    # Percent-over check: over BASE CURRENT LIMIT → exit 0 when current
    # exceeds base by more than LIMIT percent.
    over() {
        awk -v b="$1" -v c="$2" -v t="$3" \
            'BEGIN { exit ((c - b) / b * 100.0 > t) ? 0 : 1 }'
    }
    while read -r name base_ns; do
        case "$name" in
            # rpc_testincr round-trips a real Unix socket: it measures the
            # host's socket stack, not this tree, and is far too
            # load-sensitive to gate on.
            fig8_dispatch/rpc_testincr) continue ;;
            fig8_dispatch/*|arg_marshalling/*|gate/cached_hot|ring_throughput/*|sweep_throughput/*|async_throughput/*|submit_path/*) ;;
            *) continue ;;
        esac
        new_ns="$(awk -v n="$name" '$1 == n { print $2 }' "$RAW.new")"
        if [ -z "$new_ns" ]; then
            # A renamed/retired bench must not brick the gate forever; the
            # COMPARED guard below keeps this from passing vacuously.
            echo "  SKIPPED  $name (present in baseline, absent in this run)"
            continue
        fi
        COMPARED=$((COMPARED + 1))
        base_p99="$(awk -v n="$name" '$1 == n { print $2 }' "$RAW.base_tail")"
        new_p99="$(awk -v n="$name" '$1 == n { print $2 }' "$RAW.new_tail")"
        # CPU-steal noise on small benches is one-sided (only ever slower),
        # so a flagged bench is re-measured up to twice and the minimum
        # observation is what gets judged. --gate-only judges the files
        # as-is: re-measuring would let live hardware overrule the very
        # numbers the mode exists to test.
        retries=0
        while [ "$GATE_ONLY" -eq 0 ] && [ "$retries" -lt 2 ] \
            && { over "$base_ns" "$new_ns" "$THRESHOLD" \
                 || { [ -n "$base_p99" ] && [ -n "$new_p99" ] \
                      && over "$base_p99" "$new_p99" "$TAIL_THRESHOLD"; }; }; do
            retries=$((retries + 1))
            echo "  retry    $name: mean ${new_ns} ns vs ${base_ns} ns baseline (attempt $retries)"
            again="$(remeasure "$name")"
            again_ns="${again%% *}"
            again_p99="${again#* }"
            if [ -n "$again_ns" ]; then
                new_ns="$(awk -v a="$new_ns" -v b="$again_ns" 'BEGIN { print (b < a) ? b : a }')"
            fi
            if [ -n "$new_p99" ] && [ -n "$again_p99" ] && [ "$again_p99" != "$again_ns" ]; then
                new_p99="$(awk -v a="$new_p99" -v b="$again_p99" 'BEGIN { print (b < a) ? b : a }')"
            fi
        done
        verdict="$(awk -v b="$base_ns" -v c="$new_ns" -v t="$THRESHOLD" 'BEGIN {
            pct = (c - b) / b * 100.0
            printf "%+.1f%% (%.1f -> %.1f ns)", pct, b, c
            exit (pct > t) ? 1 : 0
        }')" || { echo "  REGRESSED $name: mean $verdict"; FAIL=1; continue; }
        if [ -n "$base_p99" ] && [ -n "$new_p99" ]; then
            tail_verdict="$(awk -v b="$base_p99" -v c="$new_p99" -v t="$TAIL_THRESHOLD" 'BEGIN {
                pct = (c - b) / b * 100.0
                printf "p99 %+.1f%% (%.1f -> %.1f ns)", pct, b, c
                exit (pct > t) ? 1 : 0
            }')" || { echo "  TAIL      $name: $tail_verdict beyond ${TAIL_THRESHOLD}%"; FAIL=1; continue; }
            echo "  ok       $name: mean $verdict, $tail_verdict"
        else
            echo "  ok       $name: mean $verdict (no p99 in baseline — tail gate skipped)"
        fi
    done < "$RAW.base"
    if [ "$COMPARED" -eq 0 ]; then
        echo "bench_trajectory: no hot-path benches compared — parser or hot-set drift" >&2
        exit 1
    fi
    if [ "$FAIL" -ne 0 ]; then
        echo "bench_trajectory: hot-path regression vs $BASELINE (mean ${THRESHOLD}%, p99 ${TAIL_THRESHOLD}%)" >&2
        exit 1
    fi
    echo "bench_trajectory: $COMPARED hot-path benches within bounds (mean ${THRESHOLD}%, p99 ${TAIL_THRESHOLD}%)"
fi
