#!/usr/bin/env bash
# Capture one bench-trajectory point: run the bench-smoke set and extract
# every criterion `ns/iter` line into a JSON file, so per-PR performance
# history accumulates instead of evaporating (ROADMAP open item).
#
# Usage: scripts/bench_trajectory.sh [OUT_JSON] [LABEL]
#   OUT_JSON  where to write the point   (default: target/bench_trajectory.json,
#             untracked — pass BENCH_PR<N>.json explicitly when recording the
#             committed per-PR point, so casual runs never clobber a baseline)
#   LABEL     free-text tag for the point (default: $BENCH_LABEL or "local")
#
# Honors SECMOD_BENCH_MS (per-benchmark measurement budget, default 2 —
# the CI smoke budget; raise it locally for less noisy points).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-target/bench_trajectory.json}"
LABEL="${2:-${BENCH_LABEL:-local}}"
BUDGET="${SECMOD_BENCH_MS:-2}"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT
SECMOD_BENCH_MS="$BUDGET" cargo bench --workspace | tee "$RAW"

{
    printf '{\n'
    printf '  "label": "%s",\n' "$LABEL"
    printf '  "bench_ms": %s,\n' "$BUDGET"
    printf '  "benches": [\n'
    awk '/time:/ && /ns\/iter/ {
        t = ""
        for (i = 1; i <= NF; i++) if ($i == "time:") t = $(i + 1)
        if (t == "") next
        if (n++) printf ",\n"
        printf "    {\"name\": \"%s\", \"ns_per_iter\": %s}", $1, t
    } END { if (n) printf "\n" }' "$RAW"
    printf '  ]\n'
    printf '}\n'
} > "$OUT"

COUNT="$(grep -c ns_per_iter "$OUT" || true)"
echo "bench_trajectory: wrote $COUNT benches to $OUT (label=$LABEL, ${BUDGET}ms budget)"
test "$COUNT" -gt 0 || { echo "bench_trajectory: no ns/iter lines captured" >&2; exit 1; }
