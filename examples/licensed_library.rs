//! Scenario 1 from the paper's introduction: a library that "represents a
//! significant investment of time, effort and capital" whose owner wants to
//! be paid (or at least credited) per use, and wants to limit outright
//! theft.
//!
//! The vendor signs a delegation to each paying customer; every call is
//! policy-checked and recorded in an audit log suitable for billing.
//!
//! Run with: `cargo run --example licensed_library`

use secmod_core::prelude::*;
use secmod_policy::assertion::{Assertion, LicenseeExpr};
use secmod_policy::audit::AuditLog;
use secmod_policy::{Environment, PolicyEngine, Principal};

const VENDOR_SIGNING_KEY: &[u8] = b"vendor-signing-key";
const CUSTOMER_A: &[u8] = b"customer-a-license";
const CUSTOMER_B: &[u8] = b"customer-b-license";

fn vendor_policy() -> PolicyEngine {
    let vendor = Principal::from_key("imaging-vendor", VENDOR_SIGNING_KEY);
    let mut policy = PolicyEngine::new();
    policy.register_key(&vendor, VENDOR_SIGNING_KEY);
    // The platform operator trusts the vendor for this module.
    policy
        .add_assertion(
            Assertion::policy(
                LicenseeExpr::Single(vendor.clone()),
                "module == \"libimaging\"",
            )
            .unwrap(),
        )
        .unwrap();
    // The vendor licenses customer A for everything…
    policy
        .add_assertion(
            Assertion::delegation(
                vendor.clone(),
                LicenseeExpr::Single(Principal::from_key("customer-a", CUSTOMER_A)),
                "",
            )
            .unwrap()
            .sign(VENDOR_SIGNING_KEY),
        )
        .unwrap();
    // …and customer B only for the preview-quality function.
    policy
        .add_assertion(
            Assertion::delegation(
                vendor,
                LicenseeExpr::Single(Principal::from_key("customer-b", CUSTOMER_B)),
                "function == \"render_preview\"",
            )
            .unwrap()
            .sign(VENDOR_SIGNING_KEY),
        )
        .unwrap();
    policy
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = SecureModuleBuilder::new("libimaging", 1)
        .function("render_preview", |_ctx, args| Ok(args.to_vec()))
        .function("render_production", |_ctx, args| {
            Ok(args.iter().rev().copied().collect())
        })
        .with_policy(vendor_policy())
        .build()?;

    let mut world = SimWorld::new();
    world.install(&module)?;

    let customer_a = world.spawn_client(
        "studio-a",
        Credential::user(1001, 100).with_smod_credential("libimaging", CUSTOMER_A),
    )?;
    let customer_b = world.spawn_client(
        "studio-b",
        Credential::user(1002, 100).with_smod_credential("libimaging", CUSTOMER_B),
    )?;
    world.connect(customer_a, "libimaging", 0)?;
    world.connect(customer_b, "libimaging", 0)?;

    // Billing-grade audit log, fed from policy decisions.
    let mut audit = AuditLog::new();
    let mut record = |who: &str, key: &[u8], function: &str, allowed: bool| {
        let env = Environment::for_smod_call(who, "libimaging", 1, function, 1001);
        let requester = Principal::from_key(who, key);
        audit.record(
            &[requester],
            &env,
            &if allowed {
                secmod_policy::Decision::Allow {
                    used_assertions: vec![],
                }
            } else {
                secmod_policy::Decision::Deny
            },
        );
    };

    // Customer A uses both functions.
    for frame in 0u64..5 {
        world.call(customer_a, "render_production", &frame.to_le_bytes())?;
        record("customer-a", CUSTOMER_A, "render_production", true);
    }
    world.call(customer_a, "render_preview", &[1, 2, 3])?;
    record("customer-a", CUSTOMER_A, "render_preview", true);

    // Customer B may preview but not render at production quality.
    world.call(customer_b, "render_preview", &[9, 9])?;
    record("customer-b", CUSTOMER_B, "render_preview", true);
    let denied = world
        .call(customer_b, "render_production", &[9, 9])
        .is_err();
    record("customer-b", CUSTOMER_B, "render_production", !denied);
    println!("customer B production render denied: {denied}");

    println!("\n-- monthly usage statement --");
    for ((module, function), count) in audit.usage_counts() {
        println!("{module:12} {function:20} {count:>6} calls");
    }
    println!("denied requests: {}", audit.denials());

    Ok(())
}
