//! Scenario 2 from the paper's introduction: "a piece of executable code
//! that represents a significant drain of computational resources" — the
//! host administrator wants to govern who may invoke it, and how much,
//! without handing out "carte-blanche root access".
//!
//! The policy restricts access to a uid range, and the module itself meters
//! simulated CPU consumption per client so the administrator can see who is
//! burning the budget.
//!
//! Run with: `cargo run --example resource_governor`

use secmod_core::prelude::*;
use std::collections::BTreeMap;

const BATCH_KEY: &[u8] = b"batch-team-credential";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The heavy function charges simulated time proportional to the problem
    // size it is asked to solve — the "drain of computational resources".
    let module = SecureModuleBuilder::new("libsolver", 1)
        .function("solve", |ctx, args| {
            let size = u64::from_le_bytes(args[..8].try_into().unwrap());
            // Pretend each unit of work costs 50 µs of CPU.
            ctx.charge_ns(size * 50_000);
            // A stand-in for the expensive result.
            Ok((size * size).to_le_bytes().to_vec())
        })
        .allow_credential_if(BATCH_KEY, "uid >= 1000 && uid < 1010")
        .build()?;

    let mut world = SimWorld::new();
    world.install(&module)?;

    // Three members of the batch team, one outsider.
    let mut clients = Vec::new();
    for uid in [1001u32, 1003, 1007] {
        let pid = world.spawn_client(
            &format!("batch-{uid}"),
            Credential::user(uid, 100).with_smod_credential("libsolver", BATCH_KEY),
        )?;
        world.connect(pid, "libsolver", 0)?;
        clients.push((uid, pid));
    }
    let outsider = world.spawn_client(
        "outsider",
        Credential::user(5000, 100).with_smod_credential("libsolver", BATCH_KEY),
    )?;
    println!(
        "outsider (uid 5000) admitted: {}",
        world.connect(outsider, "libsolver", 0).is_ok()
    );

    // Each batch user submits jobs of different sizes; the kernel clock
    // advances by the modelled cost of each call plus the charged work.
    let mut cpu_by_uid: BTreeMap<u32, u64> = BTreeMap::new();
    for (round, (uid, pid)) in std::iter::repeat_n(clients.clone(), 3)
        .flatten()
        .enumerate()
    {
        let job_size = (round as u64 % 5) + 1;
        let (_, spent_ns) =
            world.measure(|w| w.call(pid, "solve", &job_size.to_le_bytes()).unwrap());
        *cpu_by_uid.entry(uid).or_default() += spent_ns;
    }

    println!("\n-- resource governor report (simulated) --");
    for (uid, ns) in &cpu_by_uid {
        println!(
            "uid {uid}: {:.2} ms of governed library time",
            *ns as f64 / 1e6
        );
    }
    println!(
        "total simulated time: {:.2} ms across {} sessions",
        world.now_ns() as f64 / 1e6,
        world.kernel.sessions.len()
    );

    // The per-module counters the administrator would alert on.
    let m_id = world.module_id("libsolver").unwrap();
    let module_stats = world.kernel.registry.get(m_id).unwrap();
    println!(
        "libsolver: {} sessions started, {} calls dispatched",
        module_stats.sessions_started(),
        module_stats.calls_dispatched()
    );
    Ok(())
}
