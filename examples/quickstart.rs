//! Quickstart: define a protected module, register it with the (simulated)
//! kernel, establish a session and call through the access-controlled
//! dispatch path.
//!
//! Run with: `cargo run --example quickstart`

use secmod_core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const CREDENTIAL: &[u8] = b"quickstart-credential";

    // 1. The module author defines the protected library: its functions,
    //    its access policy, and (implicitly) the key that seals its text.
    let module = SecureModuleBuilder::new("libquick", 1)
        .function("double", |_ctx, args| {
            let v = u64::from_le_bytes(args[..8].try_into().unwrap());
            Ok((v * 2).to_le_bytes().to_vec())
        })
        .function("greet", |_ctx, args| {
            let name = String::from_utf8_lossy(args).to_string();
            Ok(format!("hello, {name}!").into_bytes())
        })
        .allow_credential(CREDENTIAL)
        .build()?;

    // 2. The machine boots and the registration tool hands the sealed module
    //    to the kernel (sys_smod_add).
    let mut world = SimWorld::new();
    let module_id = world.install(&module)?;
    println!("registered module libquick as {module_id}");

    // 3. A client process starts; its crt0 performs the Figure 1 handshake
    //    (find → start_session → session_info → handle_info).
    let client = world.spawn_client(
        "quickstart-app",
        Credential::user(1000, 100).with_smod_credential("libquick", CREDENTIAL),
    )?;
    let session = world.connect(client, "libquick", 0)?;
    println!("client {client} established {session}");

    // 4. Ordinary calls now relay through sys_smod_call to the handle.
    let doubled = world.call(client, "double", &21u64.to_le_bytes())?;
    println!(
        "double(21) = {}",
        u64::from_le_bytes(doubled.try_into().unwrap())
    );

    let greeting = world.call(client, "greet", b"secmodule")?;
    println!(
        "greet(\"secmodule\") = {}",
        String::from_utf8_lossy(&greeting)
    );

    // 5. A process without the credential is turned away at session start.
    let intruder = world.spawn_client("intruder", Credential::user(666, 666))?;
    match world.connect(intruder, "libquick", 0) {
        Err(e) => println!("intruder rejected as expected: {e}"),
        Ok(_) => println!("unexpected: intruder was admitted!"),
    }

    println!(
        "simulated time elapsed: {:.3} ms, context switches: {}",
        world.now_ns() as f64 / 1e6,
        world.kernel.context_switches()
    );
    Ok(())
}
