//! The paper's implementation centrepiece (§4): retrofitting an *existing*
//! library — libc — into a SecModule, so that even `malloc()` runs behind
//! the access-control boundary while "working identically to its man-page
//! specification".
//!
//! Run with: `cargo run --example retrofit_libc`

use secmod_core::libc_retrofit::SmodLibc;
use secmod_core::prelude::*;
use secmod_module::builder::ModuleBuilder;
use secmod_module::objdump;

const APP_KEY: &[u8] = b"retrofit-app-credential";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Step 1 of the paper's toolchain: list the function symbols of the
    // library (`objdump -t libc.a | grep ' F '`) to find stub candidates.
    let image = ModuleBuilder::libc_like();
    println!("-- objdump -t libc.a | grep ' F ' --");
    for line in objdump::grep_functions(&objdump::objdump_t(&image)) {
        println!("{line}");
    }
    println!(
        "stub candidates (exported functions): {:?}\n",
        objdump::stub_candidates(&image)
    );

    // Step 2: the converted libc is registered and a client links against
    // the stubs (SmodLibc::setup performs the custom-crt0 handshake).
    let mut world = SimWorld::new();
    let mut libc = SmodLibc::setup(&mut world, "text-editor", APP_KEY)?;

    // Step 3: the application uses the familiar API.  The allocator's state
    // and the allocated blocks live in the *client's* heap (shared pages);
    // only the allocator's code is protected.
    let buffer = libc.malloc(256)?;
    libc.store(buffer, b"The quick brown fox jumps over the lazy dog\0")?;
    println!("strlen(buffer) = {}", libc.strlen(buffer)?);

    let copy = libc.malloc(256)?;
    libc.memcpy(copy, buffer, 45)?;
    println!(
        "copied string: {:?}",
        String::from_utf8_lossy(&libc.load(copy, 44)?)
    );

    println!("getpid() via SecModule = {}", libc.getpid()?);
    println!("live allocations       = {}", libc.live_allocations()?);
    libc.free(buffer)?;
    println!("after free             = {}", libc.live_allocations()?);

    // Step 4: fork() — the child gets its own handle and session (§4.3).
    let parent = libc.client();
    let child = world.fork_client(parent)?;
    let mut child_libc = SmodLibc::attach(&mut world, child);
    let child_block = child_libc.malloc(64)?;
    child_libc.store(child_block, b"child data\0")?;
    println!(
        "child strlen(child_block) = {} (independent session for {child})",
        child_libc.strlen(child_block)?
    );

    println!(
        "\nsimulated time: {:.3} ms, sessions: {}, context switches: {}",
        world.now_ns() as f64 / 1e6,
        world.kernel.sessions.len(),
        world.kernel.context_switches()
    );
    Ok(())
}
