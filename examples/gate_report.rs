//! Walkthrough: the `secmod_gate` scenario report.
//!
//! Runs the fifteen workload scenarios — uniform, zipfian hot-key,
//! adversarial cache-thrash, session churn, multi-threaded kernel
//! dispatch (pinned sessions and the sessions-≫-threads pool), batched
//! ring dispatch, the dispatch plane (producers ≫ dedicated drainers),
//! the futures-based async frontend (logical clients ≫ threads), the
//! drainer-stall fault injection, the zero-copy arena mix, the
//! weighted-fair multi-tenant plane, the churn storm, the herd
//! establish, and the drainer-crash recovery drill — against the sharded
//! decision-cache gateway (for the kernel-backed scenarios: the gateway
//! *embedded in* the kernel's dispatch path) and prints ops/sec, cache
//! hit rate, the (seed-deterministic) allow/deny split, and the
//! simulated-cost latency quantiles for each.
//!
//! ```sh
//! cargo run --release --example gate_report
//! cargo run --release --example gate_report -- --threads 2 --ops 2000 --seed 7
//! cargo run --release --example gate_report -- --threads 4 --drainers 2 --only plane
//! cargo run --release --example gate_report -- --metrics
//! ```

use secmod::gate::{
    build_dispatch_kernel, run_metrics_demo, run_scenario, ScenarioConfig, ScenarioKind,
};
use secmod::Dispatcher;

fn parse_flag(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn parse_str_flag<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = parse_flag(&args, "--seed").unwrap_or(42);
    let threads = parse_flag(&args, "--threads").unwrap_or(4) as usize;
    // --drainers: dedicated drainer threads for the plane scenario
    // (0 = auto: max(1, threads/4), keeping producers >> drainers).
    let drainers = parse_flag(&args, "--drainers").unwrap_or(0) as usize;
    // --submit-batch N: plane producers coalesce N entries per doorbell
    // (0/1 = classic one-doorbell-per-entry submission).
    let submit_batch = parse_flag(&args, "--submit-batch").unwrap_or(1) as usize;
    // --only <name>: run a single scenario (CI smoke legs use this). An
    // unknown name is a hard error — a typo'd CI leg that silently ran
    // zero scenarios would still exit green.
    let only = parse_str_flag(&args, "--only");
    // --metrics: skip the scenario sweep and instead drive all five
    // dispatch flavors against ONE kernel, printing its DispatchMetrics
    // text report (the CI observability smoke runs this shape).
    if args.iter().any(|a| a == "--metrics") {
        println!("secmod dispatch metrics demo (seed {seed})");
        println!("all five dispatch flavors against one kernel; simulated-cost nanoseconds.\n");
        print!("{}", run_metrics_demo(seed));
        return;
    }
    if let Some(name) = only {
        if !ScenarioKind::ALL.iter().any(|k| k.name() == name) {
            let known: Vec<&str> = ScenarioKind::ALL.iter().map(|k| k.name()).collect();
            eprintln!(
                "gate_report: unknown scenario `{name}` (expected one of: {})",
                known.join(", ")
            );
            std::process::exit(2);
        }
    }
    // The examples smoke test runs every example with no args in the debug
    // profile; keep that default shape small so `cargo test` stays fast,
    // and let release builds default to a measurement-worthy size.
    let default_ops = if cfg!(debug_assertions) {
        2_000
    } else {
        50_000
    };
    let ops = parse_flag(&args, "--ops").unwrap_or(default_ops);

    println!("secmod_gate scenario report");
    println!(
        "seed {seed}, {threads} worker thread(s), {ops} ops/thread, 64 tenants x 8 modules x 8 ops"
    );
    println!(
        "decisions are seed-deterministic; the coherence property guarantees the cache cannot"
    );
    println!("change an answer, only the cost of computing it.\n");

    // Every kernel-backed flavor below speaks the same `Dispatcher`
    // vocabulary; a probe call shows the trait in the syscall flavor
    // (the scenario engine drives the others).
    let probe = build_dispatch_kernel(
        &ScenarioConfig::builder(ScenarioKind::KernelDispatch)
            .quick()
            .seed(seed)
            .build(),
    );
    let caps = probe.kernel.capabilities();
    let outcome =
        probe
            .kernel
            .dispatch_one(probe.clients[0], probe.func_ids[1], &7u64.to_le_bytes());
    println!(
        "dispatcher probe: flavor `{}` (batched={}, trap_free={}, asynchronous={}), \
         incr(7) -> {:?}\n",
        caps.flavor,
        caps.batched,
        caps.trap_free,
        caps.asynchronous,
        outcome.map(|ret| u64::from_le_bytes(ret.try_into().unwrap())),
    );

    for kind in ScenarioKind::ALL {
        if only.is_some_and(|name| name != kind.name()) {
            continue;
        }
        let cfg = ScenarioConfig::builder(kind)
            .seed(seed)
            .threads(threads)
            .ops_per_thread(ops)
            .drainers(drainers)
            .submit_batch(submit_batch)
            .build();
        let report = run_scenario(&cfg);
        println!("{report}");
    }

    println!("\nscenario key:");
    println!("  uniform  every tenant/module/operation equally likely (steady-state reuse)");
    println!("  zipfian  hot tenants dominate — the multi-tenant skew a decision cache exists for");
    println!("  thrash   adversarial unique-key stream: hit rate pinned at 0, pure overhead");
    println!("  churn    uniform traffic while kernel sessions detach mid-stream (epoch bumps)");
    println!("  kernel   N threads drive sys_smod_call on one shared kernel; every per-call");
    println!("           check is served by the module's embedded decision-cache gateway");
    println!("  pool     kernel dispatch with sessions >> threads (64 sessions round-robined),");
    println!("           honest session-table shard pressure instead of one pinned session");
    println!("  ring     producers fill per-session submission rings; drainer threads batch");
    println!("           through sys_smod_call_batch (fixed costs amortised per batch)");
    println!("  plane    producers >> drainers: producers attach to a DispatchPlane and never");
    println!("           trap; dedicated drainers sweep all ready sessions per sys_smod_sweep");
    println!("  async    logical clients >> threads: tasks await plane.call() futures; a");
    println!("           reactor thread routes sweep completions back to parked wakers");
    println!("  stall    the plane workload plus a fault-injection antagonist that claims");
    println!("           readiness bits and drain slots without draining: decisions are");
    println!("           untouched, only the latency tail stretches");
    println!("  arena    mixed 8 B / 64 KiB payloads: every 4th submission rides the shared");
    println!("           ArgArena as a zero-copy descriptor; settles to 0 bytes in flight");
    println!("  multitenant  a 1-slot victim tenant vs adversaries flooding 4 slots each on");
    println!("           one QoS plane; weighted-fair sweeps keep the victim >= 50% of its");
    println!("           fair drain share (asserted), per-tenant lanes account every entry");
    println!("  churnstorm   bursty attach/detach: handles live for one burst, sessions are");
    println!("           torn down and re-handshaken mid-stream; split must match `plane`");
    println!("  herd     all sessions detached up front, then every thread re-establishes");
    println!("           its flock through one barrier — the thundering-herd handshake");
    println!("  crash    a drainer dies mid-claim; the health monitor reclaims its bits and");
    println!("           respawns it, and every submitted entry completes exactly once");
    println!("\nlatency columns (p50/p99/p99.9) are simulated-cost nanoseconds from the");
    println!("kernel's per-flavor dispatch histograms; run with --metrics for the full table.");
}
