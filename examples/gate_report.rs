//! Walkthrough: the `secmod_gate` scenario report.
//!
//! Runs the seven workload scenarios — uniform, zipfian hot-key,
//! adversarial cache-thrash, session churn, multi-threaded kernel
//! dispatch (pinned sessions and the sessions-≫-threads pool), and
//! batched ring dispatch — against the sharded decision-cache gateway
//! (for the kernel-backed scenarios: the gateway *embedded in* the
//! kernel's dispatch path) and prints ops/sec, cache hit rate, and the
//! (seed-deterministic) allow/deny split for each.
//!
//! ```sh
//! cargo run --release --example gate_report
//! cargo run --release --example gate_report -- --threads 2 --ops 2000 --seed 7
//! ```

use secmod::gate::{run_scenario, ScenarioConfig, ScenarioKind};

fn parse_flag(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = parse_flag(&args, "--seed").unwrap_or(42);
    let threads = parse_flag(&args, "--threads").unwrap_or(4) as usize;
    // The examples smoke test runs every example with no args in the debug
    // profile; keep that default shape small so `cargo test` stays fast,
    // and let release builds default to a measurement-worthy size.
    let default_ops = if cfg!(debug_assertions) {
        2_000
    } else {
        50_000
    };
    let ops = parse_flag(&args, "--ops").unwrap_or(default_ops);

    println!("secmod_gate scenario report");
    println!(
        "seed {seed}, {threads} worker thread(s), {ops} ops/thread, 64 tenants x 8 modules x 8 ops"
    );
    println!(
        "decisions are seed-deterministic; the coherence property guarantees the cache cannot"
    );
    println!("change an answer, only the cost of computing it.\n");

    for kind in ScenarioKind::ALL {
        let cfg = ScenarioConfig {
            threads,
            ops_per_thread: ops,
            ..ScenarioConfig::full(kind, seed)
        };
        let report = run_scenario(&cfg);
        println!("{report}");
    }

    println!("\nscenario key:");
    println!("  uniform  every tenant/module/operation equally likely (steady-state reuse)");
    println!("  zipfian  hot tenants dominate — the multi-tenant skew a decision cache exists for");
    println!("  thrash   adversarial unique-key stream: hit rate pinned at 0, pure overhead");
    println!("  churn    uniform traffic while kernel sessions detach mid-stream (epoch bumps)");
    println!("  kernel   N threads drive sys_smod_call on one shared kernel; every per-call");
    println!("           check is served by the module's embedded decision-cache gateway");
    println!("  pool     kernel dispatch with sessions >> threads (64 sessions round-robined),");
    println!("           honest session-table shard pressure instead of one pinned session");
    println!("  ring     producers fill per-session submission rings; drainer threads batch");
    println!("           through sys_smod_call_batch (fixed costs amortised per batch)");
}
