//! Scenario 3 from the paper's introduction: "a critical component of a
//! security infrastructure, such that misuse … can cause significant
//! disruption" — here, a signing oracle.  Only certified callers may ask it
//! to sign, nobody may extract the key, and the signing key itself lives in
//! module data that the client never maps.
//!
//! Run with: `cargo run --example secure_keystore`

use secmod_core::prelude::*;
use secmod_crypto::hmac::HmacSha256;

const OPERATOR_KEY: &[u8] = b"certified-operator";
const SIGNING_KEY: &[u8] = b"organisation-signing-key-material";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The signing key is baked into the module (its data section / closure
    // state); it is never present in any client address space.
    let module = SecureModuleBuilder::new("libsign", 1)
        .data_object("signing_key_slot", &[0u8; 32])
        .function("sign", move |_ctx, args| {
            Ok(HmacSha256::mac(SIGNING_KEY, args).to_vec())
        })
        .function("verify", move |_ctx, args| {
            // args = 32-byte tag || message
            if args.len() < 32 {
                return Err(secmod_kernel::Errno::EINVAL);
            }
            let ok = HmacSha256::verify(SIGNING_KEY, &args[32..], &args[..32]);
            Ok(vec![ok as u8])
        })
        // Only certified operators, and only the sign/verify entry points —
        // there is no "export_key" function at all, and even if one were
        // added the policy names the functions explicitly.
        .allow_credential_if(
            OPERATOR_KEY,
            "function == \"sign\" || function == \"verify\"",
        )
        .build()?;

    let mut world = SimWorld::new();
    world.install(&module)?;

    let operator = world.spawn_client(
        "release-pipeline",
        Credential::user(1000, 100).with_smod_credential("libsign", OPERATOR_KEY),
    )?;
    world.connect(operator, "libsign", 0)?;

    let artifact = b"firmware-image-v1.2.3";
    let signature = world.call(operator, "sign", artifact)?;
    println!("signature: {}", secmod_crypto::sha256::to_hex(&signature));

    let mut verify_args = signature.clone();
    verify_args.extend_from_slice(artifact);
    let ok = world.call(operator, "verify", &verify_args)?;
    println!("verify(signature, artifact) = {}", ok[0] == 1);

    let mut tampered = signature.clone();
    tampered[0] ^= 0xFF;
    let mut verify_args = tampered;
    verify_args.extend_from_slice(artifact);
    let ok = world.call(operator, "verify", &verify_args)?;
    println!("verify(tampered, artifact) = {}", ok[0] == 1);

    // An uncertified process cannot even open a session, and the registered
    // module text sits encrypted in the kernel registry.
    let rogue = world.spawn_client("rogue", Credential::user(4000, 4000))?;
    println!(
        "rogue session admitted: {}",
        world.connect(rogue, "libsign", 0).is_ok()
    );
    let m_id = world.module_id("libsign").unwrap();
    let registered = world.kernel.registry.get(m_id).unwrap();
    println!(
        "module text encrypted at rest: {} ({} protected bytes)",
        registered.package.encrypted,
        registered.package.protected_text_bytes()
    );
    Ok(())
}
