//! Walkthrough: the `secmod_async` futures frontend.
//!
//! Demonstrates `plane.call(proc_id, args).await` end to end:
//!
//! ```text
//!   logical client (task)        reactor thread        drainer threads
//!   ─────────────────────        ──────────────        ───────────────
//!   poll: park waker,                                  sweep ready
//!     submit SmodCallReq ──ring──────────────────────▶ sessions,
//!                                                      post SmodCallResp,
//!                          ◀─completion bitmap────────  mark completed
//!   woken: poll again,     route: pop completions,
//!     take response ◀──────  wake parked wakers
//! ```
//!
//! A handful of OS threads (executor workers + drainers + one reactor)
//! multiplex the whole logical-client population: tasks suspend instead
//! of blocking, so scaling logical clients 10x–1000x past the thread
//! count costs coordination, not threads.
//!
//! ```sh
//! cargo run --release --example async_report
//! cargo run --release --example async_report -- --logical 1000 --drainers 2
//! cargo run --release --example async_report -- --threads 2 --ops 20000 --seed 7
//! ```

use secmod::gate::{run_scenario, ScenarioConfig, ScenarioKind};
use secmod::kernel::PlaneConfig;
use secmod::r#async::{block_on, join_all, AsyncPlane};
use secmod::Dispatcher;
use std::sync::Arc;

fn parse_flag(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = parse_flag(&args, "--seed").unwrap_or(42);
    let threads = parse_flag(&args, "--threads").unwrap_or(2) as usize;
    let drainers = parse_flag(&args, "--drainers").unwrap_or(1) as usize;
    // The examples smoke test runs every example argless in the debug
    // profile; keep that default small.
    let default_logical = if cfg!(debug_assertions) { 64 } else { 256 };
    let logical = parse_flag(&args, "--logical").unwrap_or(default_logical) as usize;
    let default_ops = if cfg!(debug_assertions) {
        2_000
    } else {
        50_000
    };
    // Total operations across ALL logical clients (the scenario engine
    // splits cfg.threads * cfg.ops_per_thread across them).
    let ops = parse_flag(&args, "--ops").unwrap_or(default_ops);

    println!("secmod_async futures frontend report");
    println!(
        "seed {seed}, {logical} logical clients over {threads} executor thread(s) + \
         {drainers} drainer(s) + 1 reactor"
    );
    println!("tasks await plane.call() futures; the reactor routes sweep completions");
    println!("back to parked wakers, so clients suspend instead of blocking.\n");

    // --- 1. a taste of the API: three awaited calls on one session ----
    let dispatch = secmod::gate::build_dispatch_kernel(
        &ScenarioConfig::builder(ScenarioKind::AsyncDispatch)
            .quick()
            .seed(seed)
            .build(),
    );
    let incr = dispatch.func_ids[1];
    let client = dispatch.clients[0];
    let kernel = Arc::new(dispatch.kernel);
    let plane = AsyncPlane::start(
        Arc::clone(&kernel),
        PlaneConfig::builder().drainers(drainers).build(),
    )
    .expect("start async plane");
    let caps = plane.capabilities();
    println!(
        "Dispatcher flavor `{}`: batched={}, trap_free={}, asynchronous={}",
        caps.flavor, caps.batched, caps.trap_free, caps.asynchronous
    );
    let session = plane.session(client).expect("attach session");
    let answers: Vec<u64> = block_on(join_all((0..3u64).map(|i| {
        let session = session.clone();
        Box::pin(async move {
            let ret = session.call(incr, i.to_le_bytes()).await.expect("incr");
            u64::from_le_bytes(ret.try_into().unwrap())
        })
    })));
    println!(
        "three awaited incr calls -> {answers:?} ({} completions routed by the reactor)",
        plane.routed()
    );
    // `call_costed` surfaces the simulated per-call cost next to the
    // return bytes — the same `cost_ns` the dispatch histograms record.
    let (ret, cost_ns) =
        block_on(session.call_costed(incr, 7u64.to_le_bytes())).expect("costed incr");
    println!(
        "call_costed(incr, 7) -> {} at {cost_ns} simulated ns",
        u64::from_le_bytes(ret.try_into().unwrap())
    );
    if let Some(metrics) = plane.metrics() {
        println!(
            "async flavor so far: {}\n",
            metrics.latency(secmod::obs::Flavor::Async).summary()
        );
    }
    drop(session);
    plane.shutdown();

    // --- 2. the async scenario at the requested population ------------
    let cfg = ScenarioConfig::builder(ScenarioKind::AsyncDispatch)
        .seed(seed)
        .threads(threads)
        .ops_per_thread(ops / threads.max(1) as u64)
        .drainers(drainers)
        .logical_clients(logical)
        .build();
    println!(
        "ScenarioKind::AsyncDispatch ({logical} logical clients, {threads} executor \
         thread(s), {} total ops):",
        cfg.total_ops()
    );
    let report = run_scenario(&cfg);
    println!("{report}");

    // --- 3. completions/sec as logical clients scale past threads -----
    // The acceptance shape of the frontend: multiplying logical clients
    // by 10x and 100x while OS threads stay fixed should cost
    // coordination, not collapse. (Definitive numbers come from
    // `cargo bench --bench async_throughput`; this is the quick view.)
    println!(
        "\nscaling logical clients at fixed OS threads ({threads} executor + {drainers} drainer):"
    );
    let scale_ops = ops.min(10_000);
    for factor in [1usize, 10, 100] {
        let population = threads.max(1) * factor;
        let cfg = ScenarioConfig::builder(ScenarioKind::AsyncDispatch)
            .seed(seed)
            .threads(threads)
            .ops_per_thread(scale_ops / threads.max(1) as u64)
            .drainers(drainers)
            .logical_clients(population)
            .build();
        let report = run_scenario(&cfg);
        let tail = report
            .latency
            .map(|l| format!("  p50 {} p99 {} p99.9 {} ns", l.p50, l.p99, l.p999))
            .unwrap_or_default();
        println!(
            "  {population:>5} logical clients: {:>12.0} completions/sec \
             ({} ops, {} allows / {} denies){tail}",
            report.ops_per_sec, report.total_ops, report.allows, report.denies
        );
    }
    println!("\nthe p50/p99/p99.9 columns are simulated-cost nanoseconds per completed call,");
    println!("recorded by the reactor's routing pass into the kernel's async-flavor histogram.");

    println!("\npaper mapping: the async frontend rides the same amortisation argument as the");
    println!("dispatch plane — producers never trap, sweeps amortise the fixed syscall cost");
    println!("across every ready session — and adds suspension on top: a parked waker costs");
    println!("no OS thread, so the client population can scale orders of magnitude past the");
    println!("thread count while per-call cost stays the plane's swept cost.");
}
