//! Walkthrough: the `secmod_ring` batched dispatch path.
//!
//! Demonstrates the submit → drain → complete cycle end to end:
//!
//! ```text
//!   client thread                       kernel (sys_smod_call_batch)
//!   ─────────────                       ────────────────────────────
//!   SmodCallReq ─push→ SubmissionRing ─pop→ resolve session ONCE
//!                                            ├─ policy check per entry
//!                                            │  (gateway cache / memo)
//!                                            ├─ function body per entry
//!   SmodCallResp ←pop─ CompletionRing ←push──┘
//! ```
//!
//! then sweeps batch sizes through the cost model (amortised fixed cost
//! per entry), runs the same batch against the simulated clock, and
//! finishes with the multi-threaded `ring` workload scenario.
//!
//! ```sh
//! cargo run --release --example ring_report
//! cargo run --release --example ring_report -- --threads 2 --ops 2000 --seed 7
//! ```

use secmod::gate::{run_scenario, ScenarioConfig, ScenarioKind};
use secmod::kernel::CostModel;
use secmod::prelude::*;
use secmod::ring::{Ring, SmodCallReq};

fn parse_flag(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = parse_flag(&args, "--seed").unwrap_or(42);
    let threads = parse_flag(&args, "--threads").unwrap_or(4) as usize;
    let default_ops = if cfg!(debug_assertions) {
        2_000
    } else {
        50_000
    };
    let ops = parse_flag(&args, "--ops").unwrap_or(default_ops);

    println!("secmod_ring batched dispatch report");
    println!("submit -> drain -> complete: SmodCallReq rings in, SmodCallResp rings out;");
    println!("the kernel resolves session/credential/gateway once per batch.\n");

    // --- 1. the cost model's amortisation argument ---------------------
    let cost = CostModel::default();
    println!("amortised fixed cost per entry (CostModel::batched_dispatch_ns):");
    println!(
        "  single sys_smod_call fixed overhead: {} ns",
        cost.smod_call_overhead(0)
    );
    for batch in [1usize, 8, 32, 128] {
        let total = cost.batched_dispatch_ns(batch);
        println!(
            "  batch {batch:>4}: {total:>6} ns fixed  ->  {:>5} ns/entry",
            total / batch as u64
        );
    }

    // --- 2. one real batch on the simulated clock ----------------------
    let module = SecureModuleBuilder::new("libring", 1)
        .function("incr", |_ctx, args| {
            let v = u64::from_le_bytes(args[..8].try_into().unwrap());
            Ok((v + 1).to_le_bytes().to_vec())
        })
        .allow_credential(b"ring-demo-key")
        .build()
        .expect("build demo module");
    let mut world = SimWorld::new();
    world.install(&module).expect("install");
    let client = world
        .spawn_client(
            "ring-app",
            Credential::user(1000, 100).with_smod_credential("libring", b"ring-demo-key"),
        )
        .expect("spawn client");
    world.connect(client, "libring", 0).expect("connect");

    const BATCH: usize = 32;
    let args_list: Vec<Vec<u8>> = (0..BATCH as u64)
        .map(|i| i.to_le_bytes().to_vec())
        .collect();
    let arg_refs: Vec<&[u8]> = args_list.iter().map(|a| a.as_slice()).collect();
    let (_, sequential_ns) = world.measure(|w| {
        for a in &arg_refs {
            w.call(client, "incr", a).expect("sequential call");
        }
    });
    let (results, batched_ns) = world.measure(|w| {
        w.call_batch(client, "incr", &arg_refs)
            .expect("batched call")
    });
    let ok = results.iter().filter(|r| r.is_ok()).count();
    println!("\none batch of {BATCH} incr calls through SimWorld (simulated clock):");
    println!("  sequential sys_smod_call x{BATCH}: {sequential_ns:>8} ns");
    println!("  sys_smod_call_batch (1 drain)  : {batched_ns:>8} ns  ({ok}/{BATCH} completed)");
    println!(
        "  amortisation: {:.1}x cheaper on the simulated clock",
        sequential_ns as f64 / batched_ns.max(1) as f64
    );

    // --- 3. the raw ring, for the curious ------------------------------
    let ring: Ring<SmodCallReq> = Ring::with_capacity(8);
    ring.push(SmodCallReq {
        session: 1,
        proc_id: 0,
        user_data: 7,
        args: vec![1, 2, 3],
    })
    .expect("push");
    let entry = ring.pop().expect("pop");
    println!(
        "\nring taste: capacity {} (power of two), FIFO cookie echo: user_data {}",
        ring.capacity(),
        entry.user_data
    );

    // --- 4. the multi-threaded ring scenario ---------------------------
    println!(
        "\nScenarioKind::RingDispatch ({threads} producers, {} drainer(s), {ops} ops/producer):",
        (threads / 2).max(1)
    );
    let report = run_scenario(&ScenarioConfig {
        threads,
        ops_per_thread: ops,
        ..ScenarioConfig::full(ScenarioKind::RingDispatch, seed)
    });
    println!("{report}");
    println!("\npaper mapping: the SecModule call is ~10x cheaper than local RPC because it");
    println!("avoids marshalling and the socket round trip; batching goes after what remains —");
    println!("the fixed syscall-entry and resolution cost per call — by amortising it across");
    println!("a ring of submissions, the way io_uring amortises syscall entry for I/O.");
}
