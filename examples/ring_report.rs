//! Walkthrough: the `secmod_ring` batched dispatch path.
//!
//! Demonstrates the submit → drain → complete cycle end to end:
//!
//! ```text
//!   client thread                       kernel (sys_smod_call_batch)
//!   ─────────────                       ────────────────────────────
//!   SmodCallReq ─push→ SubmissionRing ─pop→ resolve session ONCE
//!                                            ├─ policy check per entry
//!                                            │  (gateway cache / memo)
//!                                            ├─ function body per entry
//!   SmodCallResp ←pop─ CompletionRing ←push──┘
//! ```
//!
//! then sweeps batch sizes through the cost model (amortised fixed cost
//! per entry), runs the same batch against the simulated clock, shows
//! the **dispatch plane** (multi-session sweeps: per-session batches →
//! one `sys_smod_sweep`, then a drainer-count sweep through the real
//! `DispatchPlane`), demonstrates the **zero-copy argument path**
//! (64 KiB blocks by value vs by `ArgArena` descriptor), runs the
//! multi-threaded `ring`, `plane` and `arena` workload scenarios, and
//! finishes with the **QoS plane**: the weighted-fair `multitenant`
//! scenario plus a per-tenant lane report showing the victim's drain
//! share, a **major-frame jitter** analysis (per-tenant inter-service
//! gap distributions, DRR vs time-sliced frames, with the frame bound
//! asserted), and a pinned-vs-unpinned drainer wall-clock diagnostic
//! (non-gating).
//!
//! ```sh
//! cargo run --release --example ring_report
//! cargo run --release --example ring_report -- --threads 2 --ops 2000 --seed 7
//! ```

use secmod::gate::{run_scenario, ScenarioConfig, ScenarioKind};
use secmod::kernel::CostModel;
use secmod::prelude::*;
use secmod::ring::{Ring, SmodCallReq};
use secmod::{DispatchCall, Dispatcher};
use std::sync::Arc;

/// Submit `total` incr calls round-robin over `handles` and reap every
/// completion — the minimal producer loop shared by the QoS fairness
/// demo and the pinned-drainer diagnostic below.
fn drive(handles: &[secmod::kernel::PlaneHandle], incr_func: u32, total: u64) {
    let mut sent = 0u64;
    let mut received = 0u64;
    while received < total {
        if sent < total {
            let h = &handles[(sent % handles.len() as u64) as usize];
            if h.submit(incr_func, sent, sent.to_le_bytes().to_vec())
                .is_ok()
            {
                sent += 1;
            }
        }
        for h in handles {
            while h.reap().is_some() {
                received += 1;
            }
        }
    }
}

fn parse_flag(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = parse_flag(&args, "--seed").unwrap_or(42);
    let threads = parse_flag(&args, "--threads").unwrap_or(4) as usize;
    let default_ops = if cfg!(debug_assertions) {
        2_000
    } else {
        50_000
    };
    let ops = parse_flag(&args, "--ops").unwrap_or(default_ops);

    println!("secmod_ring batched dispatch report");
    println!("submit -> drain -> complete: SmodCallReq rings in, SmodCallResp rings out;");
    println!("the kernel resolves session/credential/gateway once per batch.\n");

    // --- 1. the cost model's amortisation argument ---------------------
    let cost = CostModel::default();
    println!("amortised fixed cost per entry (CostModel::batched_dispatch_ns):");
    println!(
        "  single sys_smod_call fixed overhead: {} ns",
        cost.smod_call_overhead(0)
    );
    for batch in [1usize, 8, 32, 128] {
        let total = cost.batched_dispatch_ns(batch);
        println!(
            "  batch {batch:>4}: {total:>6} ns fixed  ->  {:>5} ns/entry",
            total / batch as u64
        );
    }

    // --- 2. one real batch on the simulated clock ----------------------
    let module = SecureModuleBuilder::new("libring", 1)
        .function("incr", |_ctx, args| {
            let v = u64::from_le_bytes(args[..8].try_into().unwrap());
            Ok((v + 1).to_le_bytes().to_vec())
        })
        .allow_credential(b"ring-demo-key")
        .build()
        .expect("build demo module");
    let mut world = SimWorld::new();
    world.install(&module).expect("install");
    let client = world
        .spawn_client(
            "ring-app",
            Credential::user(1000, 100).with_smod_credential("libring", b"ring-demo-key"),
        )
        .expect("spawn client");
    world.connect(client, "libring", 0).expect("connect");

    const BATCH: usize = 32;
    let args_list: Vec<Vec<u8>> = (0..BATCH as u64)
        .map(|i| i.to_le_bytes().to_vec())
        .collect();
    let arg_refs: Vec<&[u8]> = args_list.iter().map(|a| a.as_slice()).collect();
    let (_, sequential_ns) = world.measure(|w| {
        for a in &arg_refs {
            w.call(client, "incr", a).expect("sequential call");
        }
    });
    let (results, batched_ns) = world.measure(|w| {
        w.call_batch(client, "incr", &arg_refs)
            .expect("batched call")
    });
    let ok = results.iter().filter(|r| r.is_ok()).count();
    println!("\none batch of {BATCH} incr calls through SimWorld (simulated clock):");
    println!("  sequential sys_smod_call x{BATCH}: {sequential_ns:>8} ns");
    println!("  sys_smod_call_batch (1 drain)  : {batched_ns:>8} ns  ({ok}/{BATCH} completed)");
    println!(
        "  amortisation: {:.1}x cheaper on the simulated clock",
        sequential_ns as f64 / batched_ns.max(1) as f64
    );

    // The same batch through the unified `Dispatcher` vocabulary — the
    // trait every flavor (syscall, sim, plane, async) implements, so a
    // harness written against it can be pointed at any of them.
    let incr_id = world.func_id(client, "incr").expect("resolve incr");
    let calls: Vec<DispatchCall> = (0..4u64)
        .map(|i| DispatchCall::new(incr_id, i.to_le_bytes()))
        .collect();
    let outcomes = world
        .dispatch_batch(client, &calls)
        .expect("dispatch batch");
    let caps = world.capabilities();
    println!(
        "  Dispatcher flavor `{}` (batched={}): dispatch_batch(incr, 0..4) -> {:?}",
        caps.flavor,
        caps.batched,
        outcomes
            .into_iter()
            .map(|o| o.map(|ret| u64::from_le_bytes(ret.try_into().unwrap())))
            .collect::<Vec<_>>()
    );

    // --- 3. the dispatch plane: multi-session sweeps -------------------
    // 3a. One sweep vs per-client batches on the simulated clock: eight
    // clients, one batch each — call_batch pays the fixed trap per
    // client, call_sweep pays it once for all of them and resolves each
    // session exactly once.
    const PLANE_CLIENTS: usize = 8;
    let mut sweep_world = SimWorld::new();
    sweep_world.install(&module).expect("install");
    let plane_clients: Vec<_> = (0..PLANE_CLIENTS)
        .map(|i| {
            let c = sweep_world
                .spawn_client(
                    &format!("plane-app{i}"),
                    Credential::user(1000, 100).with_smod_credential("libring", b"ring-demo-key"),
                )
                .expect("spawn client");
            sweep_world.connect(c, "libring", 0).expect("connect");
            c
        })
        .collect();
    let (_, per_client_ns) = sweep_world.measure(|w| {
        for &c in &plane_clients {
            w.call_batch(c, "incr", &arg_refs).expect("batched call");
        }
    });
    let batches: Vec<_> = plane_clients
        .iter()
        .map(|&c| (c, "incr", arg_refs.as_slice()))
        .collect();
    let (swept, sweep_ns) = sweep_world.measure(|w| w.call_sweep(&batches).expect("sweep"));
    let swept_ok: usize = swept
        .iter()
        .map(|per| per.iter().filter(|r| r.is_ok()).count())
        .sum();
    println!(
        "\ndispatch plane, level 1 — one sweep over {PLANE_CLIENTS} sessions x {BATCH} calls \
         (simulated clock):"
    );
    println!("  per-client sys_smod_call_batch x{PLANE_CLIENTS}: {per_client_ns:>8} ns");
    println!(
        "  one sys_smod_sweep             : {sweep_ns:>8} ns  ({swept_ok}/{} completed)",
        PLANE_CLIENTS * BATCH
    );
    println!(
        "  multi-session amortisation: {:.1}x cheaper — each session resolved once per sweep,",
        per_client_ns as f64 / sweep_ns.max(1) as f64
    );
    println!("  the trap and context-switch pair paid once for all sessions");

    // 3b. Dedicated drainer threads: the same total work pushed through a
    // real DispatchPlane at 1, 2 and 4 drainers. Producers never trap;
    // the simulated cost varies with how many sweeps the drainers needed
    // (more drainers -> smaller, more frequent sweeps -> more fixed-cost
    // traps), which is exactly the trade the plane exposes.
    println!("\ndispatch plane, level 2 — dedicated drainer threads (producers never trap):");
    for drainer_count in [1usize, 2, 4] {
        let dispatch = secmod::gate::build_dispatch_kernel_with_clients(
            &ScenarioConfig::builder(ScenarioKind::PlaneDispatch)
                .seed(seed)
                .threads(1)
                .build(),
            PLANE_CLIENTS,
        );
        let incr_func = dispatch.func_ids[1];
        let clients = dispatch.clients.clone();
        let kernel = Arc::new(dispatch.kernel);
        let t0 = kernel.clock.now_ns();
        let plane = secmod::kernel::DispatchPlane::start(
            Arc::clone(&kernel),
            secmod::kernel::PlaneConfig::builder()
                .drainers(drainer_count)
                .build(),
        )
        .expect("start plane");
        let per_producer = 256u64;
        std::thread::scope(|scope| {
            for &client in &clients {
                let handle = plane.attach(client).expect("attach");
                scope.spawn(move || {
                    let mut received = 0u64;
                    let mut sent = 0u64;
                    while received < per_producer {
                        if sent < per_producer
                            && handle
                                .submit(incr_func, sent, sent.to_le_bytes().to_vec())
                                .is_ok()
                        {
                            sent += 1;
                        }
                        while handle.reap().is_some() {
                            received += 1;
                        }
                    }
                });
            }
        });
        let stats = plane.shutdown();
        let simulated_ns = kernel.clock.now_ns() - t0;
        println!(
            "  {drainer_count} drainer(s): {:>6} entries in {:>4} sweeps ({:>5.1} entries/sweep), \
             {simulated_ns:>8} ns simulated",
            stats.completed,
            stats.productive_sweeps,
            stats.completed as f64 / stats.productive_sweeps.max(1) as f64,
        );
    }

    // --- 4. the zero-copy argument path --------------------------------
    // 64 KiB blocks end-to-end through one session's rings, twice: a
    // copy-backed set (every byte pays `copy_per_byte_ns` at drain) and
    // an arena-backed set (the block is placed once in the shared
    // `ArgArena`; the ring carries an `(offset, len, gen)` descriptor
    // and the drain charges one slot hand-off). The paper's shared-stack
    // argument, in cost-model form.
    use secmod::ring::{ArgArena, ArgRef, RingPairConfig, RingSet};
    const BIG: usize = 64 * 1024;
    const BIG_CALLS: usize = 32;
    let mut sim_ns = [0u64; 2];
    let mut high_water = 0u64;
    for (which, use_arena) in [(0usize, false), (1usize, true)] {
        let dispatch = secmod::gate::build_dispatch_kernel_with_clients(
            &ScenarioConfig::builder(ScenarioKind::PlaneDispatch)
                .seed(seed)
                .threads(1)
                .build(),
            1,
        );
        let set = if use_arena {
            let arena = ArgArena::with_metrics(8 << 20, Arc::clone(&dispatch.kernel.metrics.arena));
            RingSet::with_arena(1, arena, 8 << 20)
        } else {
            RingSet::with_capacity(1)
        };
        let client = dispatch.clients[0];
        let session = dispatch.kernel.session_of(client).unwrap().id.0;
        let slot = set
            .register(
                session,
                client.0,
                RingPairConfig {
                    submission: BIG_CALLS,
                    completion: BIG_CALLS,
                },
            )
            .expect("register");
        let rings = set.get(slot).expect("rings");
        let drainer = dispatch
            .kernel
            .spawn_process("report-drainer", Credential::root(), vec![0x90; 4096], 2, 2)
            .expect("drainer");
        let t0 = dispatch.kernel.clock.now_ns();
        for i in 0..BIG_CALLS as u64 {
            let mut block = vec![0u8; BIG];
            block[..8].copy_from_slice(&i.to_le_bytes());
            set.submit(
                slot,
                SmodCallReq {
                    session,
                    proc_id: dispatch.func_ids[1],
                    user_data: i,
                    args: ArgRef::place_vec(block, rings.arena.as_ref()),
                },
            )
            .expect("submit");
        }
        dispatch
            .kernel
            .sys_smod_sweep(drainer, &set, BIG_CALLS)
            .expect("sweep");
        while rings.cq.pop_spsc().is_some() {}
        sim_ns[which] = dispatch.kernel.clock.now_ns() - t0;
        if use_arena {
            let arena = &dispatch.kernel.metrics.arena;
            high_water = arena.bytes_in_flight.high_water();
            assert_eq!(
                arena.bytes_in_flight.get(),
                0,
                "arena leaked bytes after the 64 KiB sweep"
            );
        }
    }
    let ratio = sim_ns[0] as f64 / sim_ns[1].max(1) as f64;
    println!("\nzero-copy argument path — {BIG_CALLS} calls x 64 KiB args (simulated clock):");
    println!(
        "  copy-backed rings : {:>10} ns (per-byte marshal at drain)",
        sim_ns[0]
    );
    println!(
        "  arena-backed rings: {:>10} ns (descriptor hand-off)",
        sim_ns[1]
    );
    println!(
        "  copy / arena = {ratio:.1}x {} — arena high water {high_water} B, \
         0 B in flight after reap",
        if ratio >= 2.0 {
            "(>= 2x acceptance bar)"
        } else {
            "(BELOW the 2x acceptance bar!)"
        }
    );

    // --- 5. the raw ring, for the curious ------------------------------
    let ring: Ring<SmodCallReq> = Ring::with_capacity(8);
    ring.push(SmodCallReq {
        session: 1,
        proc_id: 0,
        user_data: 7,
        args: vec![1, 2, 3].into(),
    })
    .expect("push");
    let entry = ring.pop().expect("pop");
    println!(
        "\nring taste: capacity {} (power of two), FIFO cookie echo: user_data {}",
        ring.capacity(),
        entry.user_data
    );

    // --- 6. the multi-threaded ring + plane scenarios ------------------
    println!(
        "\nScenarioKind::RingDispatch ({threads} producers, {} drainer(s), {ops} ops/producer):",
        (threads / 2).max(1)
    );
    let report = run_scenario(
        &ScenarioConfig::builder(ScenarioKind::RingDispatch)
            .seed(seed)
            .threads(threads)
            .ops_per_thread(ops)
            .build(),
    );
    println!("{report}");
    let plane_cfg = ScenarioConfig::builder(ScenarioKind::PlaneDispatch)
        .seed(seed)
        .threads(threads)
        .ops_per_thread(ops)
        .build();
    println!(
        "\nScenarioKind::PlaneDispatch ({threads} producers, {} dedicated drainer(s), \
         {ops} ops/producer):",
        plane_cfg.effective_drainers()
    );
    let report = run_scenario(&plane_cfg);
    println!("{report}");
    let arena_cfg = ScenarioConfig::builder(ScenarioKind::ArenaMix)
        .seed(seed)
        .threads(threads)
        .ops_per_thread(ops)
        .build();
    println!(
        "\nScenarioKind::ArenaMix (same plane, every 4th submission a 64 KiB arena block,\n\
         the rest 8 B inline — the runner asserts 0 arena bytes in flight after shutdown):"
    );
    let report = run_scenario(&arena_cfg);
    println!("{report}");

    // --- 7. the QoS plane: weighted-fair sweeps, per-tenant lanes ------
    // First the full scenario (its runner *asserts* the starvation floor:
    // the victim must hold >= 25% of drain service at its own finish
    // line, half its 50% fair share), then a small inline plane so the
    // per-tenant lane ledger and the victim's share can be printed.
    use secmod::qos::{QosPolicy, TenantId, TenantSpec};
    let mt_cfg = ScenarioConfig::builder(ScenarioKind::MultiTenant)
        .seed(seed)
        .threads(threads)
        .ops_per_thread(ops)
        .build();
    println!(
        "\nScenarioKind::MultiTenant ({threads} producers: thread 0 is a 1-slot victim\n\
         tenant, every other thread floods 4 slots for the adversary tenant; equal\n\
         weights, so weighted-fair sweeps must keep serving the victim):"
    );
    let report = run_scenario(&mt_cfg);
    println!("{report}");

    let dispatch = secmod::gate::build_dispatch_kernel_with_clients(
        &ScenarioConfig::builder(ScenarioKind::MultiTenant)
            .seed(seed)
            .threads(1)
            .build(),
        2,
    );
    let incr_func = dispatch.func_ids[1];
    let victim_client = dispatch.clients[0];
    let flood_client = dispatch.clients[1];
    let kernel = Arc::new(dispatch.kernel);
    let plane = secmod::kernel::DispatchPlane::start(
        Arc::clone(&kernel),
        secmod::kernel::PlaneConfig::builder()
            .drainers(1)
            .slots(5)
            .qos(
                QosPolicy::weighted_fair([TenantSpec::new(0, 1), TenantSpec::new(1, 1)])
                    .with_quantum(16),
            )
            .build(),
    )
    .expect("start qos plane");
    let sched = plane.scheduler().expect("qos plane has a scheduler");
    let victim = plane
        .attach_tenant(victim_client, TenantId(0))
        .expect("attach victim");
    let flood: Vec<_> = (0..4)
        .map(|_| {
            plane
                .attach_tenant(flood_client, TenantId(1))
                .expect("attach adversary")
        })
        .collect();
    const FAIR_OPS: u64 = 512;
    use std::sync::atomic::{AtomicU64, Ordering};
    let at_victim_finish = [AtomicU64::new(0), AtomicU64::new(0)];
    std::thread::scope(|scope| {
        let sched = &sched;
        let at_victim_finish = &at_victim_finish;
        scope.spawn(move || {
            drive(&[victim], incr_func, FAIR_OPS);
            for (i, cell) in at_victim_finish.iter().enumerate() {
                cell.store(
                    sched.metrics().lane(i as u32).drained.get(),
                    Ordering::SeqCst,
                );
            }
        });
        scope.spawn(move || drive(&flood, incr_func, FAIR_OPS));
    });
    let stats = plane.shutdown();
    let v = at_victim_finish[0].load(Ordering::SeqCst);
    let a = at_victim_finish[1].load(Ordering::SeqCst);
    let share = v as f64 / (v + a).max(1) as f64;
    println!(
        "inline QoS plane: a 1-slot victim vs an adversary holding 4 slots but offering\n\
         the same traffic ({FAIR_OPS} calls each), 1 drainer, equal weights, quantum 16\n\
         — {} entries drained in {} sweeps; 4x the slots must not buy drain share:",
        stats.drained, stats.sweeps
    );
    println!(
        "  victim share of drain service at its finish line: {:.0}% \
         (fair share 50%, floor 25%)",
        share * 100.0
    );
    print!("{}", sched.metrics().text_report());

    // --- 7b. major-frame jitter: inter-service gaps vs DRR -------------
    // The two QoS modes trade the same quantity in opposite directions:
    // DRR minimises *jitter* (every backlogged tenant is served nearly
    // every sweep, so inter-service gaps sit at one sweep period) while
    // the major frame maximises *isolation* (a tenant drains only inside
    // its own time slice, so its gap stretches to the foreign slices —
    // but never past one frame). Both tenants stay backlogged and the
    // scheduler is driven directly with a synthetic clock, so the gap
    // distributions are exact, not scheduling noise. The frame bound is
    // asserted: a partitioned tenant's p99 inter-service gap must not
    // exceed the frame length (tenants x slice_ns).
    use secmod::qos::SweepScheduler;
    const SWEEP_PERIOD_NS: u64 = 250; // one scheduling round per period
    const SLICE_NS: u64 = 4_000; // 16 sweeps per tenant slice
    const JITTER_TENANTS: u64 = 2;
    const FRAME_NS: u64 = JITTER_TENANTS * SLICE_NS;
    const JITTER_ROUNDS: u64 = 4_096; // 1 ms simulated, 128 frames
    let percentile = |sorted: &[u64], q: f64| -> u64 {
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx]
    };
    println!(
        "\nmajor-frame jitter — per-tenant inter-service gap over {JITTER_ROUNDS} sweeps\n\
         (sweep period {SWEEP_PERIOD_NS} ns, slice {SLICE_NS} ns, frame {FRAME_NS} ns; tenant 0\n\
         offers 1 slot, tenant 1 floods 4; both always backlogged):"
    );
    for (label, policy) in [
        (
            "weighted_fair",
            QosPolicy::weighted_fair([TenantSpec::new(0, 1), TenantSpec::new(1, 1)])
                .with_quantum(16),
        ),
        (
            "major_frame",
            QosPolicy::major_frame([TenantSpec::new(0, 1), TenantSpec::new(1, 1)], SLICE_NS),
        ),
    ] {
        let jitter_sched = SweepScheduler::new(policy);
        let candidates: Vec<(usize, u32)> = [(0usize, 0u32), (1, 1), (2, 1), (3, 1), (4, 1)].into();
        let mut last_served = [None::<u64>; 2];
        let mut gaps: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
        for round in 0..JITTER_ROUNDS {
            let now = round * SWEEP_PERIOD_NS;
            let plan = jitter_sched.plan(&candidates, now, 16);
            for tenant in 0..JITTER_TENANTS as u32 {
                if plan.chosen.iter().any(|c| c.tenant == tenant) {
                    if let Some(prev) = last_served[tenant as usize] {
                        gaps[tenant as usize].push(now - prev);
                    }
                    last_served[tenant as usize] = Some(now);
                }
            }
            for c in &plan.chosen {
                jitter_sched.charge(c.tenant, c.budget as u64);
            }
        }
        println!("  {label}:");
        for (tenant, gap) in gaps.iter_mut().enumerate() {
            gap.sort_unstable();
            assert!(
                !gap.is_empty(),
                "tenant {tenant} was never re-served under {label}"
            );
            let (p50, p99, max) = (
                percentile(gap, 0.50),
                percentile(gap, 0.99),
                *gap.last().expect("non-empty"),
            );
            let bound = if label == "major_frame" {
                assert!(
                    p99 <= FRAME_NS,
                    "tenant {tenant} p99 gap {p99} ns exceeds the {FRAME_NS} ns frame"
                );
                format!(" (p99 <= {FRAME_NS} ns frame: asserted)")
            } else {
                String::new()
            };
            println!(
                "    tenant {tenant}: gap p50 {p50:>5} ns  p99 {p99:>5} ns  max {max:>5} ns{bound}"
            );
        }
    }
    println!(
        "  DRR serves every backlogged tenant nearly every sweep (gap ~= sweep period);\n\
         the major frame buys hard temporal isolation by stretching the gap to the\n\
         foreign slices, bounded by one frame — predictable latency, higher jitter."
    );

    // --- 8. pinned vs unpinned drainers: wall-clock diagnostic ---------
    // The same plane workload twice, drainers unpinned then pinned to
    // cores. Wall-clock, not the simulated clock — and NON-GATING:
    // affinity is best-effort (containers and cpusets may refuse the
    // mask, and a 2-core runner can make pinning a pessimisation), so
    // this prints the two timings and never asserts a direction.
    use std::time::Instant;
    println!("\npinned vs unpinned drainers — wall-clock sweep diagnostic (non-gating):");
    for pinned in [false, true] {
        let dispatch = secmod::gate::build_dispatch_kernel_with_clients(
            &ScenarioConfig::builder(ScenarioKind::PlaneDispatch)
                .seed(seed)
                .threads(1)
                .build(),
            PLANE_CLIENTS,
        );
        let incr_func = dispatch.func_ids[1];
        let clients = dispatch.clients.clone();
        let kernel = Arc::new(dispatch.kernel);
        let plane = secmod::kernel::DispatchPlane::start(
            Arc::clone(&kernel),
            secmod::kernel::PlaneConfig::builder()
                .drainers(2)
                .pin_drainers(pinned)
                .build(),
        )
        .expect("start plane");
        let per_producer = 2_048u64;
        let wall0 = Instant::now();
        std::thread::scope(|scope| {
            for &client in &clients {
                let handle = plane.attach(client).expect("attach");
                scope.spawn(move || drive(&[handle], incr_func, per_producer));
            }
        });
        let stats = plane.shutdown();
        let wall = wall0.elapsed();
        println!(
            "  pin_drainers({pinned:>5}): {:>6} entries in {:>10.3?} wall \
             ({:>9.0} entries/sec, {} sweeps)",
            stats.completed,
            wall,
            stats.completed as f64 / wall.as_secs_f64().max(1e-9),
            stats.sweeps
        );
    }

    println!("\nthe p50/p99/p99.9 columns are simulated-cost nanoseconds per drained entry,");
    println!("from the kernel's per-flavor dispatch histograms (secmod_obs): the ring row");
    println!("records at sys_smod_call_batch drain time, the plane row at producer reap time.");
    println!("\npaper mapping: the SecModule call is ~10x cheaper than local RPC because it");
    println!("avoids marshalling and the socket round trip; batching goes after what remains —");
    println!("the fixed syscall-entry and resolution cost per call — by amortising it across");
    println!("a ring of submissions, the way io_uring amortises syscall entry for I/O. The");
    println!("dispatch plane takes the same argument across sessions: one sweep resolves every");
    println!("ready session once, so the trap amortises across *all* clients' rings and the");
    println!("producers themselves never enter the kernel at all.");
}
